//! Integration: §7 gain/overhead accounting against real workload traces.

use scouts::cloudsim::Team;
use scouts::incident::{Workload, WorkloadConfig};
use scouts::scoutmaster::{GainAccountant, PerfectScoutSim};

fn world() -> Workload {
    let mut config = WorkloadConfig {
        seed: 77,
        ..WorkloadConfig::default()
    };
    config.faults.faults_per_day = 2.0;
    Workload::generate(config)
}

#[test]
fn oracle_answers_reach_best_possible_gain() {
    let w = world();
    let mut acc = GainAccountant::new(Team::PhyNet, w.iter());
    // A perfect gate-keeper answers with ground truth.
    let answers: Vec<Option<bool>> = w
        .incidents
        .iter()
        .map(|i| Some(i.owner == Team::PhyNet))
        .collect();
    let r = acc.report(w.iter(), answers.into_iter());
    assert_eq!(r.error_out, 0, "oracle makes no mistakes");
    assert!(r.overhead_in.is_empty());
    // Oracle gain must equal best possible.
    assert_eq!(r.gain_in.len(), r.best_gain_in.len());
    for (g, b) in r.gain_in.iter().zip(&r.best_gain_in) {
        assert!((g - b).abs() < 1e-12);
    }
    assert_eq!(r.gain_out.len(), r.best_gain_out.len());
}

#[test]
fn always_yes_maximizes_overhead_never_gains_out() {
    let w = world();
    let mut acc = GainAccountant::new(Team::PhyNet, w.iter());
    let answers = std::iter::repeat_n(Some(true), w.len());
    let r = acc.report(w.iter(), answers);
    assert!(
        r.gain_out.is_empty(),
        "saying yes to everything never routes away"
    );
    assert_eq!(r.error_out, 0);
    assert!(
        r.overhead_in.len() > w.len() / 3,
        "most incidents are not PhyNet's: {} overheads",
        r.overhead_in.len()
    );
}

#[test]
fn always_no_maximizes_error_out() {
    let w = world();
    let mut acc = GainAccountant::new(Team::PhyNet, w.iter());
    let answers = std::iter::repeat_n(Some(false), w.len());
    let r = acc.report(w.iter(), answers);
    assert!(r.gain_in.is_empty());
    assert!((r.error_out_fraction() - 1.0).abs() < 1e-12);
    assert!(r.overhead_in.is_empty());
}

#[test]
fn overhead_distribution_matches_fig6_definition() {
    let w = world();
    let acc = GainAccountant::new(Team::PhyNet, w.iter());
    let dist = acc.overhead_distribution();
    assert!(!dist.is_empty());
    for win in dist.windows(2) {
        assert!(win[0] <= win[1], "sorted");
    }
    for &v in dist {
        assert!((0.0..=1.0).contains(&v));
    }
    // Sanity: the distribution is exactly the set of PhyNet-visiting,
    // non-PhyNet-owned incidents' time-in-PhyNet fractions.
    let expected = w
        .iter()
        .filter(|(i, t)| i.owner != Team::PhyNet && t.visited(Team::PhyNet))
        .count();
    assert_eq!(dist.len(), expected);
}

#[test]
fn perfect_scout_sim_is_monotone_in_deployment() {
    let w = world();
    let mut means = Vec::new();
    for n in [1usize, 3, 6] {
        let r = PerfectScoutSim::pooled_reductions(w.iter(), n);
        assert!(!r.is_empty());
        for &v in &r {
            assert!((0.0..=1.0).contains(&v));
        }
        means.push(r.iter().sum::<f64>() / r.len() as f64);
    }
    assert!(
        means[0] < means[1] && means[1] < means[2],
        "means {means:?}"
    );
    let best = PerfectScoutSim::best_possible(w.iter());
    let best_mean = best.iter().sum::<f64>() / best.len() as f64;
    assert!(best_mean >= means[2]);
}

#[test]
fn reduction_never_exceeds_what_the_trace_allows() {
    let w = world();
    let all = PerfectScoutSim::candidate_teams();
    for (inc, tr) in w.iter() {
        let r = PerfectScoutSim::reduction_perfect(inc, tr, &all);
        if !tr.misrouted() || tr.all_hands {
            assert_eq!(r, 0.0);
        } else {
            // The resolver's own time can never be saved.
            let last = tr.hops.last().unwrap().total().as_minutes() as f64;
            let total = tr.total_time().as_minutes() as f64;
            assert!(r <= 1.0 - last / total + 1e-9);
        }
    }
}
