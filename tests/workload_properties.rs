//! Property-based integration tests: invariants that must hold for *any*
//! workload seed, not just the calibrated default.

use proptest::prelude::*;
use scouts::cloudsim::Team;
use scouts::incident::{Workload, WorkloadConfig};
use scouts::monitoring::{Dataset, MonitoringConfig, MonitoringSystem};
use scouts::scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};

fn tiny_workload(seed: u64) -> Workload {
    let mut config = WorkloadConfig {
        seed,
        ..WorkloadConfig::default()
    };
    config.faults.faults_per_day = 0.3;
    Workload::generate(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Traces are well-formed for every seed: at least one hop, resolver
    /// consistency, time accounting.
    #[test]
    fn traces_are_well_formed(seed in 0u64..10_000) {
        let w = tiny_workload(seed);
        prop_assert!(w.len() >= w.faults.len());
        for (inc, tr) in w.iter() {
            prop_assert!(!tr.hops.is_empty());
            prop_assert!(tr.hops.len() <= 11);
            let total = tr.total_time().as_minutes();
            prop_assert!(total > 0);
            if !tr.all_hands && !inc.owner.is_external() && tr.hops.len() < 11 {
                prop_assert_eq!(tr.resolver(), inc.owner);
            }
            if !tr.all_hands {
                if let Some(before) = tr.time_before(tr.resolver()) {
                    prop_assert!(before.as_minutes() <= total);
                }
            }
        }
    }

    /// Monitoring is deterministic and consistent with coverage for any
    /// seed and any dataset.
    #[test]
    fn monitoring_respects_contracts(seed in 0u64..10_000) {
        let w = tiny_workload(seed);
        let mon = MonitoringSystem::new(
            &w.topology,
            &w.faults,
            MonitoringConfig { seed, disabled: vec![] },
        );
        let t = scouts::cloudsim::SimTime::from_hours(100);
        let window = (t.saturating_sub(scouts::cloudsim::SimDuration::hours(2)), t);
        for c in w.topology.components().take(60) {
            for d in [Dataset::PingStats, Dataset::SnmpSyslog, Dataset::CpuUsage] {
                let s1 = mon.series(d, c.id, window);
                let s2 = mon.series(d, c.id, window);
                prop_assert_eq!(s1.clone(), s2, "deterministic");
                if let Some(s) = s1 {
                    // 2h of 5-min samples over the inclusive window
                    // [t-2h, t]: both endpoints sampled, so 25.
                    prop_assert_eq!(s.len(), 25);
                    prop_assert!(s.iter().all(|v| v.is_finite()));
                }
                let e = mon.events(d, c.id, window);
                for ev in &e {
                    prop_assert!(ev.time >= window.0 && ev.time <= window.1);
                }
            }
        }
    }

    /// The Scout pipeline never panics and always returns a sane
    /// prediction, for any seed.
    #[test]
    fn scout_predictions_are_total(seed in 0u64..10_000) {
        let w = tiny_workload(seed);
        let mon = MonitoringSystem::new(
            &w.topology,
            &w.faults,
            MonitoringConfig::default(),
        );
        let exs: Vec<Example> = w
            .incidents
            .iter()
            .map(|i| Example::new(i.text(), i.created_at, i.owner == Team::PhyNet))
            .collect();
        if exs.len() < 30 {
            return Ok(());
        }
        let (scout, corpus) = Scout::train(
            ScoutConfig::phynet(),
            ScoutBuildConfig::default(),
            &exs,
            &mon,
        );
        for item in corpus.items.iter().take(40) {
            let p = scout.predict_prepared(item, &mon);
            prop_assert!(p.confidence.is_finite());
            prop_assert!((0.0..=1.0).contains(&p.confidence));
        }
    }
}
