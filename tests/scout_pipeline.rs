//! End-to-end integration: workload → monitoring → Scout → predictions.
//!
//! Uses a reduced fault density so the debug-build test stays fast while
//! still exercising every pipeline stage.

use scouts::cloudsim::Team;
use scouts::incident::{Workload, WorkloadConfig};
use scouts::ml::metrics::Confusion;
use scouts::monitoring::{MonitoringConfig, MonitoringSystem};
use scouts::scout::{Example, ModelUsed, Scout, ScoutBuildConfig, ScoutConfig, Verdict};

fn small_world() -> Workload {
    let mut config = WorkloadConfig {
        seed: 1234,
        ..WorkloadConfig::default()
    };
    config.faults.faults_per_day = 1.2;
    // Concept drift is exercised by fig10/fig08; here we test the pipeline
    // on a stationary workload.
    config.faults.drift = false;
    Workload::generate(config)
}

fn examples(world: &Workload) -> Vec<Example> {
    world
        .incidents
        .iter()
        .map(|inc| Example::new(inc.text(), inc.created_at, inc.owner == Team::PhyNet))
        .collect()
}

#[test]
fn scout_beats_chance_by_a_wide_margin_end_to_end() {
    let world = small_world();
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let exs = examples(&world);
    let build = ScoutBuildConfig::default();
    let corpus = Scout::prepare(&ScoutConfig::phynet(), &build, &exs, &mon);
    // Time split: first 2/3 train, last 1/3 test.
    let cutoff = scouts::cloudsim::SimTime::from_days(180);
    let train: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time < cutoff)
        .collect();
    let test: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time >= cutoff)
        .collect();
    assert!(train.len() > 100, "train {}", train.len());
    assert!(test.len() > 50, "test {}", test.len());
    let scout = Scout::train_prepared(ScoutConfig::phynet(), build, &corpus, &train, &mon);
    let confusion = scout.evaluate(&corpus, &test, &mon);
    let m = confusion.metrics();
    assert!(m.f1 > 0.85, "end-to-end F1 {} ({confusion:?})", m.f1);
    assert!(m.precision > 0.8, "precision {}", m.precision);
    assert!(m.recall > 0.8, "recall {}", m.recall);
}

#[test]
fn every_pipeline_stage_appears_in_predictions() {
    let world = small_world();
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let exs = examples(&world);
    let (scout, corpus) = Scout::train(
        ScoutConfig::phynet(),
        ScoutBuildConfig::default(),
        &exs,
        &mon,
    );
    let mut used_forest = false;
    let mut used_fallback = false;
    for item in &corpus.items {
        let p = scout.predict_prepared(item, &mon);
        match p.model {
            ModelUsed::RandomForest => used_forest = true,
            ModelUsed::Fallback => {
                used_fallback = true;
                assert_eq!(p.verdict, Verdict::Fallback);
            }
            _ => {}
        }
        // Contract: confidence is meaningful for model verdicts.
        if p.verdict != Verdict::Fallback {
            assert!((0.0..=1.0).contains(&p.confidence));
        }
    }
    assert!(used_forest, "the forest is the main path");
    assert!(
        used_fallback,
        "component-free CRIs fall back to legacy routing"
    );
}

#[test]
fn predictions_explain_themselves() {
    let world = small_world();
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let exs = examples(&world);
    let (scout, corpus) = Scout::train(
        ScoutConfig::phynet(),
        ScoutBuildConfig::default(),
        &exs,
        &mon,
    );
    let mut checked = 0;
    for item in corpus.items.iter().filter(|i| i.trainable()).take(50) {
        let p = scout.predict_prepared(item, &mon);
        assert!(
            !p.explanation.components.is_empty(),
            "explanations list the components examined"
        );
        assert!(!p.explanation.datasets.is_empty());
        let rendered = p
            .explanation
            .render("PhyNet", p.says_responsible(), p.confidence);
        assert!(rendered.contains("PhyNet Scout investigated"));
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn training_is_deterministic_given_seed() {
    let world = small_world();
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let exs: Vec<Example> = examples(&world).into_iter().take(150).collect();
    let build = ScoutBuildConfig::default();
    let (s1, corpus) = Scout::train(ScoutConfig::phynet(), build.clone(), &exs, &mon);
    let (s2, _) = Scout::train(ScoutConfig::phynet(), build, &exs, &mon);
    for item in corpus.items.iter().filter(|i| i.trainable()).take(40) {
        let p1 = s1.predict_prepared(item, &mon);
        let p2 = s2.predict_prepared(item, &mon);
        assert_eq!(p1.verdict, p2.verdict);
        assert!((p1.confidence - p2.confidence).abs() < 1e-12);
    }
}

#[test]
fn deprecated_datasets_degrade_gracefully() {
    use scouts::monitoring::Dataset;
    let world = small_world();
    let exs = examples(&world);
    // Disable three data sets in both the plane and the Scout build.
    let disabled = vec![
        Dataset::PingStats,
        Dataset::SnmpSyslog,
        Dataset::PfcCounters,
    ];
    let mon = MonitoringSystem::new(
        &world.topology,
        &world.faults,
        MonitoringConfig {
            seed: 0,
            disabled: disabled.clone(),
        },
    );
    let build = ScoutBuildConfig {
        disabled_datasets: disabled,
        ..Default::default()
    };
    let corpus = Scout::prepare(&ScoutConfig::phynet(), &build, &exs, &mon);
    let idx = corpus.trainable_indices();
    let (train, test) = idx.split_at(idx.len() * 2 / 3);
    let scout = Scout::train_prepared(ScoutConfig::phynet(), build, &corpus, train, &mon);
    let mut confusion = Confusion::default();
    for &i in test {
        let p = scout.predict_prepared(&corpus.items[i], &mon);
        confusion.record(corpus.items[i].example.label, p.says_responsible());
    }
    // The paper's Fig. 9: accuracy dips but survives deprecation.
    assert!(
        confusion.f1() > 0.75,
        "reduced-telemetry F1 {} ({confusion:?})",
        confusion.f1()
    );
}
