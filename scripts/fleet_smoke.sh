#!/usr/bin/env bash
# End-to-end smoke test for the sharded fleet routing plane: boot
# `scoutctl serve` with 32 synthetic teams rendezvous-hashed over 4
# shards, then drive a multi-team incident burst through `/v1/route`
# with `scoutctl fleetgen`, enforcing an accuracy floor and zero
# unmapped answers (the silent-drop regression gate).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p scoutctl

# Matches the fleetgen world below: the generator replays the same seed
# to learn each incident's true owner.
world_flags=(--seed 7 --faults-per-day 2)

serve_log=$(mktemp)
./target/release/scoutctl serve --addr 127.0.0.1:0 "${world_flags[@]}" \
  --synthetic-teams 32 --fleet-shards 4 \
  --max-runtime-secs 600 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 300); do
  addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$serve_log" | head -n1 || true)
  [[ -n "$addr" ]] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "fleet smoke: server exited before listening" >&2
    cat "$serve_log" >&2
    exit 1
  fi
  sleep 1
done
if [[ -z "$addr" ]]; then
  echo "fleet smoke: server never printed its listen address" >&2
  cat "$serve_log" >&2
  exit 1
fi
echo "fleet server up on $addr (32 synthetic teams, 4 shards)"

# The measured accuracy on this seed is ~0.57 (top-k hit ~0.89); the
# floor guards against routing-plane regressions, not model quality.
./target/release/scoutctl fleetgen --addr "$addr" "${world_flags[@]}" \
  --requests 40 --concurrency 4 --min-accuracy 0.4 --max-unmapped 0

kill "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "fleet smoke passed"
