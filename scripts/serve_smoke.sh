#!/usr/bin/env bash
# End-to-end smoke test for the online serving layer: boot
# `scoutctl serve` on an ephemeral port, probe the health and predict
# endpoints (asserting 2xx + well-formed JSON), and push a little load.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p scoutctl

serve_log=$(mktemp)
./target/release/scoutctl serve --addr 127.0.0.1:0 --faults-per-day 1 \
  --max-runtime-secs 120 >"$serve_log" 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 120); do
  addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$serve_log" || true)
  [[ -n "$addr" ]] && break
  sleep 1
done
if [[ -z "$addr" ]]; then
  echo "serve smoke: server never printed its listen address" >&2
  exit 1
fi
echo "server up on $addr"

./target/release/scoutctl probe --addr "$addr" --path /healthz --expect-field status
./target/release/scoutctl probe --addr "$addr" --path /readyz --expect-field teams
./target/release/scoutctl probe --addr "$addr" --path /v1/scouts/PhyNet/predict \
  --body '{"text":"Switch agg-3 in c1.dc1 reporting CRC errors and packet loss"}' \
  --expect-field verdict
./target/release/scoutctl loadgen --addr "$addr" --requests 100 --concurrency 4

kill "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "serve smoke passed"
