#!/usr/bin/env bash
# Crash-recovery smoke test for the write-ahead log: boot
# `scoutctl serve --wal-dir`, push live traffic, kill -9 the server
# mid-run, restart it against the same log, and assert the recovered
# state is byte-identical to a deterministic offline replay of the same
# event prefix. Exercises the full durability chain: CRC frames, torn
# final frame tolerance, recovery, and `scoutctl wal replay`.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p scoutctl

wal_dir=$(mktemp -d)
trap 'rm -rf "$wal_dir"' EXIT

start_server() {
  serve_log=$(mktemp)
  ./target/release/scoutctl serve --addr 127.0.0.1:0 --faults-per-day 1 \
    --wal-dir "$wal_dir/wal" --max-runtime-secs 120 \
    >"$serve_log" 2>"$serve_log.err" &
  serve_pid=$!
  addr=""
  for _ in $(seq 1 120); do
    addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$serve_log" || true)
    [[ -n "$addr" ]] && break
    sleep 1
  done
  if [[ -z "$addr" ]]; then
    echo "wal smoke: server never printed its listen address" >&2
    cat "$serve_log.err" >&2
    exit 1
  fi
}

# ---- first life: traffic, then kill -9 mid-loadgen ----
start_server
first_pid=$serve_pid
echo "server up on $addr (wal in $wal_dir/wal)"

./target/release/scoutctl loadgen --addr "$addr" --requests 50 --concurrency 2
./target/release/scoutctl loadgen --addr "$addr" --requests 400 --concurrency 4 &
loadgen_pid=$!
sleep 0.3
kill -9 "$first_pid"
wait "$loadgen_pid" 2>/dev/null || true # the cut connection may error; that's the point
echo "killed server $first_pid mid-loadgen"

# ---- second life: recover from the log ----
start_server
second_pid=$serve_pid
trap 'kill "$second_pid" 2>/dev/null || true; rm -rf "$wal_dir"' EXIT
echo "server recovered on $addr"

recovered="$wal_dir/wal/recovered.json"
[[ -s "$recovered" ]] || { echo "wal smoke: no recovered.json written" >&2; exit 1; }

# The recovered state must be byte-identical to an offline deterministic
# replay of the same prefix (recovered.json is written before the
# restarted process appends anything, so replay up to its seq).
seq=$(sed -En 's/.*"seq":([0-9]+).*/\1/p' "$recovered" | head -1)
[[ -n "$seq" ]] || { echo "wal smoke: recovered.json has no seq" >&2; exit 1; }
replayed=$(mktemp)
./target/release/scoutctl wal replay --wal-dir "$wal_dir/wal" --until "$seq" \
  --no-snapshot >"$replayed"
if ! diff -q "$recovered" "$replayed" >/dev/null; then
  echo "wal smoke: recovered state diverges from deterministic replay" >&2
  diff "$recovered" "$replayed" >&2 || true
  exit 1
fi
echo "recovered state at seq $seq is byte-identical to offline replay"

# Snapshot-assisted replay must agree with the from-genesis replay.
with_snap=$(mktemp)
./target/release/scoutctl wal replay --wal-dir "$wal_dir/wal" --until "$seq" >"$with_snap"
if ! diff -q "$with_snap" "$replayed" >/dev/null; then
  echo "wal smoke: snapshot replay diverges from genesis replay" >&2
  exit 1
fi

# The recovered server still serves, and the WAL keeps recording.
./target/release/scoutctl probe --addr "$addr" --path /readyz --expect-field teams
./target/release/scoutctl probe --addr "$addr" --path /v1/wal/state --expect-field seq
./target/release/scoutctl loadgen --addr "$addr" --requests 20 --concurrency 2

kill "$second_pid" 2>/dev/null || true
trap 'rm -rf "$wal_dir"' EXIT
echo "wal smoke passed"
