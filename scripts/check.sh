#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests.
#
#   scripts/check.sh
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "all checks passed"
