#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests.
#
#   scripts/check.sh                # fmt + clippy + tests
#   scripts/check.sh --bench-smoke  # also run the pool + serve benches on
#                                   # tiny workloads (BENCH_SMOKE=1) to keep
#                                   # the benches compiling and running
#   scripts/check.sh --serve-smoke  # also boot `scoutctl serve` on an
#                                   # ephemeral port and probe it end-to-end
#   scripts/check.sh --lifecycle-smoke
#                                   # also replay the continual-learning loop
#                                   # (drift -> retrain -> promotion -> rollback)
#                                   # and round-trip /v1/feedback on a live server
#   scripts/check.sh --wal-smoke    # also kill -9 a WAL-backed server mid-load
#                                   # and assert byte-identical crash recovery
#   scripts/check.sh --fleet-smoke  # also boot a 32-team synthetic fleet and
#                                   # burst /v1/route via fleetgen (accuracy
#                                   # floor + zero unmapped answers)
#   scripts/check.sh --storm-smoke  # also replay every stormgen adversarial
#                                   # scenario against a storm-controlled
#                                   # server (zero 5xx, dedup visibly working)
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
serve_smoke=0
lifecycle_smoke=0
wal_smoke=0
fleet_smoke=0
storm_smoke=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    --lifecycle-smoke) lifecycle_smoke=1 ;;
    --wal-smoke) wal_smoke=1 ;;
    --fleet-smoke) fleet_smoke=1 ;;
    --storm-smoke) storm_smoke=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

if [[ "$bench_smoke" == 1 ]]; then
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench pool) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench pool
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench serve) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench serve
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench featcache) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench featcache
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench lifecycle) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench lifecycle
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench obs) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench obs
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench forest) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench forest
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench wal) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench wal
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench fleet) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench fleet
  echo "== bench smoke (BENCH_SMOKE=1 cargo bench -p bench --bench storm) =="
  BENCH_SMOKE=1 cargo bench -p bench --bench storm
fi

if [[ "$serve_smoke" == 1 ]]; then
  echo "== serve smoke (scoutctl serve + probe) =="
  scripts/serve_smoke.sh
fi

if [[ "$lifecycle_smoke" == 1 ]]; then
  echo "== lifecycle smoke (scoutctl lifecycle + serve --lifecycle) =="
  scripts/lifecycle_smoke.sh
fi

if [[ "$wal_smoke" == 1 ]]; then
  echo "== wal smoke (kill -9 + byte-identical crash recovery) =="
  scripts/wal_smoke.sh
fi

if [[ "$fleet_smoke" == 1 ]]; then
  echo "== fleet smoke (32 synthetic teams, sharded /v1/route burst) =="
  scripts/fleet_smoke.sh
fi

if [[ "$storm_smoke" == 1 ]]; then
  echo "== storm smoke (adversarial stormgen scenarios, zero 5xx) =="
  scripts/storm_smoke.sh
fi

echo "all checks passed"
