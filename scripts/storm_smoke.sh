#!/usr/bin/env bash
# End-to-end smoke test for the alert-storm control plane: boot
# `scoutctl serve` with storm control on, then replay every adversarial
# stormgen scenario against it — a 60x near-duplicate burst, a
# correlated gray failure, a cascading multi-team incident, and a
# mid-storm monitoring deprecation — demanding zero 5xx throughout.
# Afterwards the metrics endpoint must show the layer actually worked
# (duplicates suppressed, fan-outs saved).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p scoutctl

# Matches the stormgen world below: the generator replays the same seed
# to render storm incidents the server's Scouts were trained against.
world_flags=(--seed 7 --faults-per-day 2)

serve_log=$(mktemp)
./target/release/scoutctl serve --addr 127.0.0.1:0 "${world_flags[@]}" \
  --synthetic-teams 8 --fleet-shards 2 \
  --storm-control on --storm-rate 200 --storm-burst 400 \
  --max-runtime-secs 600 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 300); do
  addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$serve_log" | head -n1 || true)
  [[ -n "$addr" ]] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "storm smoke: server exited before listening" >&2
    cat "$serve_log" >&2
    exit 1
  fi
  sleep 1
done
if [[ -z "$addr" ]]; then
  echo "storm smoke: server never printed its listen address" >&2
  cat "$serve_log" >&2
  exit 1
fi
echo "storm server up on $addr (8 synthetic teams, storm control on)"

# Every adversarial scenario, zero 5xx tolerated. The generous token
# bucket above keeps the smoke about dedup/batching/deprecation; the
# throttle path has its own unit and integration coverage.
for scenario in duplicate-burst gray-failure cascade deprecation; do
  echo "-- stormgen $scenario --"
  ./target/release/scoutctl stormgen --addr "$addr" "${world_flags[@]}" \
    --scenario "$scenario" --amplification 60 --background 12 \
    --retries 2 --max-5xx 0
done

# The layer must have visibly worked: duplicates suppressed and the
# dedup table exercised.
metrics=$(mktemp)
./target/release/scoutctl probe --addr "$addr" --path /metrics >"$metrics"
for counter in storm_dedup_suppressed_total storm_dedup_fresh_total; do
  if ! grep -q "$counter " "$metrics"; then
    echo "storm smoke: $counter missing from /metrics" >&2
    cat "$metrics" >&2
    exit 1
  fi
done
suppressed=$(awk '/^storm_dedup_suppressed_total /{print int($2)}' "$metrics")
if [[ "${suppressed:-0}" -lt 50 ]]; then
  echo "storm smoke: expected >=50 suppressed duplicates, got ${suppressed:-0}" >&2
  exit 1
fi
echo "storm metrics: $suppressed duplicates suppressed"

kill "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "storm smoke passed"
