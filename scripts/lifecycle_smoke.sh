#!/usr/bin/env bash
# End-to-end smoke test for the continual-learning loop: replay
# `scoutctl lifecycle` against the scripted drift and assert the whole
# arc is visible in the event log — drift detection, retrain, gated
# promotion, and (with an injected operator override) automatic
# rollback. Also exercises the serve-side wiring: a server started with
# --lifecycle must accept POST /v1/feedback for a served prediction.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p scoutctl

echo "== lifecycle replay (drift -> retrain -> promotion) =="
log=$(./target/release/scoutctl lifecycle)
echo "$log"
grep -q "drift armed" <<<"$log"
grep -q "retrain started" <<<"$log"
grep -q "promoted v" <<<"$log"
grep -q "final serving version: v" <<<"$log"

echo "== lifecycle replay (--inject-regression -> rollback) =="
log=$(./target/release/scoutctl lifecycle --inject-regression)
echo "$log"
grep -q "injecting label-poisoned model" <<<"$log"
grep -q "external promotion detected" <<<"$log"
grep -q "rolled back to v" <<<"$log"

echo "== serve --lifecycle feedback round trip =="
serve_log=$(mktemp)
./target/release/scoutctl serve --addr 127.0.0.1:0 --faults-per-day 1 \
  --lifecycle --max-runtime-secs 120 >"$serve_log" 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 120); do
  addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$serve_log" || true)
  [[ -n "$addr" ]] && break
  sleep 1
done
if [[ -z "$addr" ]]; then
  echo "lifecycle smoke: server never printed its listen address" >&2
  exit 1
fi
echo "server up on $addr"

predict=$(./target/release/scoutctl probe --addr "$addr" \
  --path /v1/scouts/PhyNet/predict \
  --body '{"text":"Switch agg-3 in c1.dc1 reporting CRC errors and packet loss"}' \
  --expect-field incident)
echo "$predict"
incident=$(grep -o '"incident": *[0-9]*' <<<"$predict" | grep -o '[0-9]*')
./target/release/scoutctl probe --addr "$addr" --path /v1/feedback \
  --body "{\"incident\":$incident,\"team\":\"PhyNet\"}" \
  --expect-field label_responsible

kill "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "lifecycle smoke passed"
