//! Composing Scouts with a Scout Master (Appendix C/D): route incidents
//! with a fleet of gate-keepers and measure how much investigation time
//! disappears as deployment widens.
//!
//! ```sh
//! cargo run --release --example scout_master_sim
//! ```

use cloudsim::Team;
use incident::{Workload, WorkloadConfig};
use scoutmaster::{MasterDecision, PerfectScoutSim, ScoutAnswer, ScoutMaster};

fn main() {
    let mut config = WorkloadConfig::default();
    config.faults.faults_per_day = 6.0;
    let world = Workload::generate(config);

    // --- The strawman master on one concrete incident ---
    let master = ScoutMaster::new();
    let answers = [
        ScoutAnswer {
            team: Team::Database,
            responsible: true,
            confidence: 0.93,
        },
        ScoutAnswer {
            team: Team::PhyNet,
            responsible: true,
            confidence: 0.88,
        },
        ScoutAnswer {
            team: Team::Storage,
            responsible: false,
            confidence: 0.97,
        },
    ];
    let decision = master.route(&answers);
    println!("two yes answers, Database depends on PhyNet → {decision:?}");
    assert_eq!(decision, MasterDecision::SendTo(Team::PhyNet));

    // --- Fleet-wide what-if: perfect Scouts, growing deployment ---
    println!();
    println!("fraction of mis-routed incidents whose investigation time shrinks:");
    for n in [1usize, 3, 6] {
        let reductions = PerfectScoutSim::pooled_reductions(world.iter(), n);
        let helped =
            reductions.iter().filter(|&&r| r > 0.0).count() as f64 / reductions.len() as f64;
        let mean: f64 = reductions.iter().sum::<f64>() / reductions.len() as f64;
        println!(
            "  {n} scout(s): {:>4.0}% of incidents helped, mean reduction {:>4.0}%",
            100.0 * helped,
            100.0 * mean
        );
    }
    let best = PerfectScoutSim::best_possible(world.iter());
    let mean: f64 = best.iter().sum::<f64>() / best.len() as f64;
    println!("  every team:  mean reduction {:>4.0}%", 100.0 * mean);
}
