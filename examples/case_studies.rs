//! The paper's §7.5 case studies, replayed end to end.
//!
//! 1. **A virtual disk failure** — the database team's watchdogs fire when
//!    VMs lose their virtual disks; the real cause is a failed ToR switch
//!    cutting off the servers behind it. Baseline routing drags the
//!    incident through the database team first; the Scout reads the
//!    telemetry and claims it for PhyNet immediately.
//! 2. **A virtual IP availability drop** — support suspects the software
//!    load balancer because it just deployed; SLB and host networking
//!    prove their innocence before PhyNet finds a reloaded ToR. The Scout
//!    answers "PhyNet" on the first query.
//!
//! ```sh
//! cargo run --release --example case_studies
//! ```

use cloudsim::{
    ComponentKind, Fault, FaultKind, FaultScope, Severity, SimDuration, SimTime, Team, Topology,
    TopologyConfig,
};
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};

fn main() {
    let topo = Topology::build(TopologyConfig::default());

    // ---- Ground truth for both case studies + background for training ----
    let mut faults = background_faults(&topo);

    // Case 1: a ToR fails; the database team's servers sit behind it.
    let cs1_tor = topo.by_name("tor-2.c3.dc1").unwrap().id;
    let cs1_cluster = topo.by_name("c3.dc1").unwrap().id;
    let cs1_start = SimTime::from_days(200);
    faults.push(Fault {
        id: faults.len() as u32,
        kind: FaultKind::TorFailure,
        owner: Team::PhyNet,
        scope: FaultScope::Devices {
            devices: vec![cs1_tor],
            cluster: cs1_cluster,
        },
        start: cs1_start,
        duration: SimDuration::hours(6),
        severity: Severity::Sev2,
        upgrade_related: false,
    });

    // Case 2: a ToR reload after a config push drops VIP availability.
    let cs2_tor = topo.by_name("tor-4.c7.dc2").unwrap().id;
    let cs2_cluster = topo.by_name("c7.dc2").unwrap().id;
    let cs2_start = SimTime::from_days(210);
    faults.push(Fault {
        id: faults.len() as u32,
        kind: FaultKind::TorReboot,
        owner: Team::PhyNet,
        scope: FaultScope::Devices {
            devices: vec![cs2_tor],
            cluster: cs2_cluster,
        },
        start: cs2_start,
        duration: SimDuration::hours(3),
        severity: Severity::Sev2,
        upgrade_related: true,
    });

    let mon = MonitoringSystem::new(&topo, &faults, MonitoringConfig::default());

    // ---- Train the PhyNet Scout on the background history ----
    let examples = training_examples(&topo, &faults[..faults.len() - 2]);
    let (scout, _) = Scout::train(
        ScoutConfig::phynet(),
        ScoutBuildConfig::default(),
        &examples,
        &mon,
    );
    println!(
        "PhyNet Scout trained on {} background incidents\n",
        examples.len()
    );

    // ---- Case study 1: the virtual disk failure ----
    // The database watchdog fires first; its text names the suffering VMs
    // and the cluster — not the dead switch it cannot see.
    let victims = topo.descendants_of_kind(cs1_tor, ComponentKind::Server);
    let vm = topo.children(victims[0])[0];
    let cs1_text = format!(
        "[Database watchdog] virtual disk failures in c3.dc1\n\
         Database monitoring detected multiple simultaneous virtual disk \
         failures impacting {} and {} in cluster c3.dc1. Automated recovery \
         failed; an operator has been paged.",
        topo.component(vm).name,
        topo.component(victims[1]).name,
    );
    run_case(
        "§7.5 case 1: the virtual disk failure",
        &scout,
        &cs1_text,
        cs1_start + SimDuration::minutes(45),
        &mon,
    );

    // ---- Case study 2: the VIP availability drop ----
    let cs2_text = "[Support] connectivity problems to virtual IP in c7.dc2\n\
         Customer reports connections to their VIP failing intermittently. \
         The SLB team deployed an update in cluster c7.dc2 earlier today and \
         was engaged first; SLB nodes are healthy. Host networking also \
         reports healthy. Impact scoped to cluster c7.dc2."
        .to_string();
    run_case(
        "§7.5 case 2: the VIP availability drop",
        &scout,
        &cs2_text,
        cs2_start + SimDuration::minutes(90),
        &mon,
    );

    println!(
        "In the paper, both incidents bounced through one or more innocent \
         teams before reaching PhyNet; querying the Scout at creation time \
         removes those hops entirely."
    );
}

fn run_case(title: &str, scout: &Scout, text: &str, at: SimTime, mon: &MonitoringSystem<'_>) {
    println!("=== {title} ===");
    println!("{}", text.lines().next().unwrap());
    let pred = scout.predict(text, at, mon);
    println!(
        "scout verdict: {:?} via {:?} (confidence {:.2})",
        pred.verdict, pred.model, pred.confidence
    );
    println!(
        "{}\n",
        pred.explanation
            .render("PhyNet", pred.says_responsible(), pred.confidence)
    );
}

/// Alternating PhyNet / Compute / Storage background faults so the Scout
/// has history to learn from.
fn background_faults(topo: &Topology) -> Vec<Fault> {
    let clusters: Vec<_> = topo.of_kind(ComponentKind::Cluster).map(|c| c.id).collect();
    let mut faults = Vec::new();
    for i in 0..120u64 {
        let cluster = clusters[i as usize % clusters.len()];
        let tors = topo.descendants_of_kind(cluster, ComponentKind::TorSwitch);
        let servers = topo.descendants_of_kind(cluster, ComponentKind::Server);
        let (kind, owner, dev) = match i % 3 {
            0 => (
                FaultKind::TorFailure,
                Team::PhyNet,
                tors[i as usize % tors.len()],
            ),
            1 => (
                FaultKind::ServerOverload,
                Team::Compute,
                servers[i as usize % servers.len()],
            ),
            _ => (
                FaultKind::TorReboot,
                Team::PhyNet,
                tors[(i as usize + 1) % tors.len()],
            ),
        };
        faults.push(Fault {
            id: i as u32,
            kind,
            owner,
            scope: FaultScope::Devices {
                devices: vec![dev],
                cluster,
            },
            start: SimTime::from_hours(10 + i * 30),
            duration: SimDuration::hours(4),
            severity: Severity::Sev2,
            upgrade_related: false,
        });
    }
    faults
}

fn training_examples(topo: &Topology, faults: &[Fault]) -> Vec<Example> {
    let mut out = Vec::new();
    for (i, f) in faults.iter().enumerate() {
        let dev = f.scope.devices()[0];
        let dev_name = &topo.component(dev).name;
        let cl = &topo.component(f.scope.cluster()).name;
        let time = f.start + SimDuration::minutes(40);
        let label = f.owner == Team::PhyNet;
        let text = match f.owner {
            // Half the PhyNet history arrives through *other* teams'
            // watchdogs, which name the suffering servers rather than the
            // culprit switch — exactly the case-study shape.
            Team::PhyNet if i % 2 == 0 => {
                let victims = topo.descendants_of_kind(dev, ComponentKind::Server);
                format!(
                    "[Database watchdog] virtual disk failures in {cl}\n\
                     Database monitoring detected failures impacting {} and {} \
                     in cluster {cl}.",
                    topo.component(victims[0]).name,
                    topo.component(victims[1]).name,
                )
            }
            Team::PhyNet => format!(
                "[PhyNet monitor] switch problem on {dev_name}\n\
                 Device {dev_name} in cluster {cl} unhealthy."
            ),
            _ => format!(
                "[Compute watchdog] host problem on {dev_name}\n\
                 Host {dev_name} in cluster {cl} saturated."
            ),
        };
        out.push(Example::new(text, time, label));
    }
    out
}
