//! Quickstart: build a world, train the PhyNet Scout, classify an incident.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloudsim::Team;
use incident::{Workload, WorkloadConfig};
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};

fn main() {
    // 1. A synthetic cloud: topology, faults, nine months of incidents with
    //    baseline routing traces. Small and fast for the example.
    let mut config = WorkloadConfig::default();
    config.faults.faults_per_day = 4.0;
    let world = Workload::generate(config);
    println!(
        "world: {} components, {} faults, {} incidents",
        world.topology.len(),
        world.faults.len(),
        world.len()
    );

    // 2. The monitoring plane: the twelve Table-2 data sets, generated on
    //    demand from the fault schedule.
    let monitoring =
        MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());

    // 3. Label incidents for the PhyNet Scout and train it. The Scout sees
    //    only text + timestamps + telemetry — never ground truth.
    let examples: Vec<Example> = world
        .incidents
        .iter()
        .map(|inc| Example::new(inc.text(), inc.created_at, inc.owner == Team::PhyNet))
        .collect();
    let (scout, corpus) = Scout::train(
        ScoutConfig::phynet(),
        ScoutBuildConfig::default(),
        &examples,
        &monitoring,
    );
    println!("trained on {} incidents", corpus.trainable_indices().len());

    // 4. Classify a fresh incident.
    let incident = world
        .incidents
        .iter()
        .find(|i| i.owner == Team::PhyNet && !i.source.is_cri())
        .expect("the workload contains PhyNet incidents");
    let prediction = scout.predict(&incident.text(), incident.created_at, &monitoring);
    println!();
    println!("incident: {}", incident.title);
    println!(
        "scout verdict: {:?} (confidence {:.2}, via {:?})",
        prediction.verdict, prediction.confidence, prediction.model
    );
    println!();
    println!(
        "{}",
        prediction.explanation.render(
            "PhyNet",
            prediction.says_responsible(),
            prediction.confidence
        )
    );
}
