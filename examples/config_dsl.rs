//! The Scout configuration language (§5.1) and the from-scratch regex
//! engine underneath it.
//!
//! ```sh
//! cargo run --example config_dsl
//! ```

use retex::Regex;
use scout::{ComponentType, ScoutConfig};

fn main() {
    // --- retex: the engine the DSL compiles its patterns with ---
    let re = Regex::new(r"\b(vm|srv)-(\d+)\.(c\d+\.dc\d+)\b").unwrap();
    let text = "VM vm-3.c10.dc3 in cluster c10.dc3 cannot reach storage cluster c4.dc1";
    for m in re.find_iter(text) {
        println!("match: {}", m.text());
    }
    let caps = re.captures(text).unwrap();
    println!(
        "groups: kind={}, index={}, cluster={}",
        caps.get(1).unwrap().text(),
        caps.get(2).unwrap().text(),
        caps.get(3).unwrap().text()
    );

    // --- the DSL: the deployed PhyNet Scout configuration ---
    println!();
    let cfg = ScoutConfig::phynet();
    println!("PhyNet Scout config:");
    println!("  {} extraction patterns", cfg.patterns.len());
    for (name, regex) in &cfg.patterns {
        println!("    let {name} = <{}>;", regex.as_str());
    }
    println!("  {} monitoring declarations", cfg.monitoring.len());
    for m in cfg.monitoring.iter().take(3) {
        println!(
            "    MONITORING {} -> {} ({:?}, tags {:?})",
            m.name, m.dataset, m.data_type, m.associations
        );
    }
    println!("    …");
    println!(
        "  cluster-associated data sets: {}",
        cfg.datasets_for(ComponentType::Cluster).len()
    );

    // --- exclusion rules in action ---
    println!();
    let custom = ScoutConfig::parse(
        r#"
        let switch = <\btor-\d+\.c\d+\.dc\d+\b>;
        MONITORING pfc = CREATE_MONITORING(pfc-counters, {switch}, TIME_SERIES);
        EXCLUDE TITLE = <decommission>;
        EXCLUDE switch = <tor-9\.c3\.dc1>;
        "#,
    )
    .unwrap();
    println!(
        "'decommission tor-1...' excluded: {}",
        custom.excludes_incident("decommission tor-1.c0.dc0\nplanned work")
    );
    println!(
        "switch tor-9.c3.dc1 excluded: {}",
        custom.excludes_component(ComponentType::Switch, "tor-9.c3.dc1")
    );
}
