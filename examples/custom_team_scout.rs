//! Building a Scout for a *different* team from a configuration file —
//! the paper's "starter Scout" story (§9): the framework turns a config +
//! labeled history into a working gate-keeper without ML expertise.
//!
//! Here the Compute team builds a Scout that watches only the generic
//! device-health data sets (CPU, temperature, reboots, syslog) and answers
//! "is Compute responsible?".
//!
//! ```sh
//! cargo run --release --example custom_team_scout
//! ```

use cloudsim::Team;
use incident::{Workload, WorkloadConfig};
use ml::metrics::Confusion;
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig, Verdict};

/// The Compute team's configuration file: its own extraction patterns and
/// only the data sets it understands.
const COMPUTE_CONFIG: &str = r#"
let VM      = <\bvm-\d+\.c\d+\.dc\d+\b>;
let server  = <\bsrv-\d+\.c\d+\.dc\d+\b>;
let cluster = <\bc\d+\.dc\d+\b>;

MONITORING cpu     = CREATE_MONITORING(cpu-usage, {server, cluster}, TIME_SERIES, CPU_UTIL);
MONITORING temp    = CREATE_MONITORING(temperature, {server, cluster}, TIME_SERIES, TEMP);
MONITORING reboots = CREATE_MONITORING(device-reboots, {server, cluster}, EVENT);
MONITORING syslog  = CREATE_MONITORING(snmp-syslog, {server, cluster}, EVENT);
"#;

fn main() {
    let mut config = WorkloadConfig::default();
    config.faults.faults_per_day = 6.0;
    let world = Workload::generate(config);
    let monitoring =
        MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());

    // Label for the Compute team this time.
    let examples: Vec<Example> = world
        .incidents
        .iter()
        .map(|inc| Example::new(inc.text(), inc.created_at, inc.owner == Team::Compute))
        .collect();

    let team_config = ScoutConfig::parse(COMPUTE_CONFIG).expect("config parses");
    println!(
        "Compute Scout config: {} patterns, {} data sets",
        team_config.patterns.len(),
        team_config.monitoring.len()
    );

    // Train on the first six months, evaluate on the rest (a time split).
    let build = ScoutBuildConfig::default();
    let corpus = Scout::prepare(&team_config, &build, &examples, &monitoring);
    let cutoff = cloudsim::SimTime::from_days(180);
    let train: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time < cutoff)
        .collect();
    let test: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time >= cutoff)
        .collect();
    let scout = Scout::train_prepared(team_config, build, &corpus, &train, &monitoring);

    let mut confusion = Confusion::default();
    let mut fallbacks = 0;
    for &i in &test {
        let pred = scout.predict_prepared(&corpus.items[i], &monitoring);
        if pred.verdict == Verdict::Fallback {
            fallbacks += 1;
            continue;
        }
        confusion.record(corpus.items[i].example.label, pred.says_responsible());
    }
    println!(
        "Compute Scout on the last three months: {} ({} fallbacks to legacy routing)",
        confusion.metrics(),
        fallbacks
    );
    println!(
        "A starter Scout from four generic data sets — the framework did the \
         feature engineering, model selection and explanations."
    );
}
