//! Serving-plane ↔ WAL glue: the registry journal adapter and the
//! engine recovery path.
//!
//! Producers are **log-first**: the event is appended (one buffered-free
//! `write(2)`; see `wal::log`) before the mutation is acknowledged to
//! the caller, and the append happens while the mutated structure's own
//! lock is still held, so the durable event order always matches the
//! in-memory mutation order. On recovery the log is the authority — the
//! runtime structures are rebuilt *from* the projections, so
//! post-restart state equals the deterministic replay of the log by
//! construction.

use crate::feedback::{ServedLog, ServedRecord};
use crate::registry::{RegistryChange, RegistryJournal};
use crate::server::Engine;
use cloudsim::SimTime;
use std::sync::Arc;
use wal::{Event, Wal};

/// Append `event`, containing failures: serving must not return 500s
/// because the log disk hiccuped. A failed append is counted
/// (`wal.append_errors`) and shows up as recovery divergence, not as a
/// request error.
pub fn append_or_count(wal: &Wal, event: &Event) {
    if wal.append(event).is_err() {
        obs::counter("wal.append_errors").inc();
    }
}

/// [`RegistryJournal`] implementation feeding registry mutations into
/// the WAL. Registry changes are operator/controller actions with no
/// inherent simulation time, so they are stamped `SimTime::EPOCH` —
/// keeping the encoded event (and thus the log) deterministic.
pub struct WalJournal(pub Arc<Wal>);

impl RegistryJournal for WalJournal {
    fn on_change(&self, change: &RegistryChange) {
        let event = match change {
            RegistryChange::Promoted {
                team,
                version,
                source,
            } => Event::ModelPromoted {
                team: team.clone(),
                version: *version,
                source: source.clone(),
                at: SimTime::EPOCH,
            },
            RegistryChange::RolledBack { team, from, to } => Event::ModelRolledBack {
                team: team.clone(),
                from: *from,
                to: *to,
                at: SimTime::EPOCH,
            },
            RegistryChange::Pinned { team, pinned } => Event::ModelPinned {
                team: team.clone(),
                pinned: *pinned,
                at: SimTime::EPOCH,
            },
            RegistryChange::EpochChanged { epoch } => Event::EpochChanged {
                epoch: *epoch,
                at: SimTime::EPOCH,
            },
        };
        append_or_count(&self.0, &event);
    }
}

impl Engine {
    /// Attach `wal` as the engine's durability log.
    ///
    /// Restores from the log's recovered projections first — the
    /// served-prediction log (ids continue the pre-crash sequence),
    /// the registry's version/epoch counters, and pins — and only then
    /// subscribes the registry journal, so recovered state is never
    /// re-logged. Models themselves are *not* restorable from the log
    /// (a trained Scout lives in the model directory, not the WAL);
    /// the caller reloads them after this, which appends fresh
    /// `ModelPromoted` events under new version numbers.
    ///
    /// Call this after the other builders: it replaces the served log
    /// (superseding `with_served_cap`) with the recovered one.
    pub fn with_wal(mut self, wal: Arc<Wal>) -> Engine {
        let proj = wal.projections();
        let records: Vec<ServedRecord> = proj
            .served
            .records
            .iter()
            .map(|r| ServedRecord {
                incident: r.incident,
                team: r.team.clone(),
                text: r.text.clone(),
                model_version: r.model_version,
                predicted_responsible: r.predicted,
                confidence: r.confidence,
                time: r.time,
                resolved: r.resolved,
            })
            .collect();
        self.served = Arc::new(ServedLog::restore(
            proj.served.cap,
            proj.served.next_incident,
            records,
        ));
        self.registry
            .resume_versions_from(proj.registry.next_version);
        self.registry.resume_epoch_from(proj.registry.epoch);
        for (team, slot) in &proj.registry.teams {
            if slot.pinned {
                self.registry.pin(team);
            }
        }
        self.registry
            .set_journal(Arc::new(WalJournal(Arc::clone(&wal))));
        self.wal = Some(wal);
        self
    }
}
