//! The online half of the Scouts system: an incident-routing server.
//!
//! The paper splits each Scout into an offline component (training, the
//! `scout` crate) and an **online component** that serves routing
//! decisions to the incident-management pipeline. This crate is that
//! online component, built from three pieces:
//!
//! * [`registry::ModelRegistry`] — versioned `Arc`-swapped models, so a
//!   retrain (the paper retrains Scouts on a schedule, §6) can be rolled
//!   out with `POST /v1/models/reload` while predictions are in flight;
//! * [`batcher::Batcher`] — micro-batched inference: concurrent predict
//!   requests coalesce into one pooled `Scout::predict_many` pass,
//!   preserving the determinism contract (batched results are
//!   bit-identical to sequential ones);
//! * [`admission::Admission`] — a hard cap on outstanding work with
//!   load-shedding (`503` + `Retry-After`) and per-request deadlines
//!   (`X-Deadline-Ms` → `504`), because a late routing decision is a
//!   useless one;
//! * [`fleet`] — the sharded routing plane behind `POST /v1/route`:
//!   registered teams are rendezvous-hashed across bounded worker
//!   groups, each incident fans out shard-parallel with per-team fault
//!   isolation, and the string-keyed Scout Master aggregates the
//!   outcomes deterministically (byte-identical across shard counts).
//!
//! Everything — including the HTTP/1.1 implementation in [`http`] — is
//! dependency-free, like the rest of the workspace.

pub mod admission;
pub mod batcher;
pub mod client;
pub mod durability;
pub mod feedback;
pub mod fleet;
pub mod http;
pub mod registry;
pub mod server;
pub mod stormroute;

pub use admission::{Admission, Permit};
pub use batcher::{Answer, BatchConfig, Batcher, Job, PredictError};
pub use client::{Client, ClientError, ClientResponse};
pub use durability::WalJournal;
pub use feedback::{FeedbackEvent, FeedbackHook, ResolveError, ServedLog, ServedRecord};
pub use fleet::{FleetConfig, ScoutError, TeamOutcome};
pub use http::{HttpError, Request, Response};
pub use registry::{ModelEntry, ModelRegistry, RegistryChange, RegistryError, RegistryJournal};
pub use server::{Engine, ServeConfig, Server};
pub use stormroute::{RouteBatcher, RouteBatcherContext, RouteJob};
