//! A minimal blocking HTTP/1.1 client for the serve endpoints.
//!
//! Used by `scoutctl loadgen`, `scoutctl probe`, the serve bench, and the
//! integration tests — everything in this workspace that needs to *talk*
//! to the server without curl. Keep-alive by default; one connection per
//! [`Client`].

use crate::http::reason;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Is the status 2xx?
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A client error: connect/IO failure or a malformed response.
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ClientError {}

/// One keep-alive connection to a serve instance.
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError(format!("cannot connect to {addr}: {e}")))?;
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        // Requests are small and latency-sensitive; Nagle + delayed ACK
        // would add tens of milliseconds per exchange.
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| ClientError(format!("cannot clone stream: {e}")))?;
        Ok(Client {
            addr: addr.to_string(),
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, ClientError> {
        self.request("GET", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
        self.request(
            "POST",
            path,
            &[("Content-Type", "application/json")],
            body.as_bytes(),
        )
    }

    /// `POST path` with a JSON body, retrying up to `retries` times on
    /// `429`/`503` and honoring the server's `Retry-After` hint (capped
    /// at `max_wait` per attempt so an aggressive hint can't stall a
    /// caller). Returns the last response once retries are exhausted —
    /// callers still see the final 429/503 and its headers.
    pub fn post_json_retry(
        &mut self,
        path: &str,
        body: &str,
        retries: u32,
        max_wait: Duration,
    ) -> Result<ClientResponse, ClientError> {
        let mut response = self.post_json(path, body)?;
        for _ in 0..retries {
            if response.status != 429 && response.status != 503 {
                break;
            }
            let hint_secs: u64 = response
                .header("Retry-After")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let wait = Duration::from_secs(hint_secs).min(max_wait);
            std::thread::sleep(wait);
            response = self.post_json(path, body)?;
        }
        Ok(response)
    }

    /// Send one request and read one response on this connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
            self.addr,
            body.len()
        );
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        // One write, one segment: a split head/body write interacts with
        // Nagle + delayed ACK and stalls the exchange.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(body);
        self.writer
            .write_all(&frame)
            .and_then(|()| self.writer.flush())
            .map_err(|e| ClientError(format!("write to {} failed: {e}", self.addr)))?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| ClientError(format!("read from {} failed: {e}", self.addr)))?;
        if line.is_empty() {
            return Err(ClientError(format!("{} closed the connection", self.addr)));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> Result<ClientResponse, ClientError> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| ClientError(format!("malformed status line {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| ClientError(format!("short body from {}: {e}", self.addr)))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// Human-readable `status reason` for CLI output.
pub fn status_line(status: u16) -> String {
    format!("{status} {}", reason(status))
}
