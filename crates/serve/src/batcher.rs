//! Micro-batched inference.
//!
//! Predict requests from all connections land in one bounded job queue.
//! A single batcher thread collects jobs until either the batch is full
//! or a short deadline lapses (default 32 requests / 2 ms — sized to
//! the flattened forest's 32-row scoring tile, so a full batch feeds
//! exactly one micro-batch through the node-major tables), groups them
//! by team, resolves **one** model version per team-group, and runs one
//! pooled [`Scout::predict_many`] pass per group. Because `prepare` is a
//! pure per-example function (PR 2's determinism contract), the batched
//! answers are bit-identical to what N sequential `predict` calls would
//! have produced — batching changes throughput, never verdicts.
//!
//! Metrics: `serve.batch.occupancy` (histogram of jobs per batch),
//! `serve.deadline.expired` (requests that timed out in the queue).

use crate::admission::Permit;
use crate::registry::{ModelEntry, ModelRegistry};
use cloudsim::SimTime;
use incident::Workload;
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::Prediction;
use std::collections::BTreeMap;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One queued predict job.
pub struct Job {
    /// Team whose Scout should answer.
    pub team: String,
    /// Incident text.
    pub text: String,
    /// Incident creation time (simulated).
    pub time: SimTime,
    /// Wall-clock deadline; expired jobs are answered with
    /// [`PredictError::DeadlineExpired`] instead of running.
    pub deadline: Option<Instant>,
    /// Admission slot, held until the reply is sent. `None` when the
    /// caller holds one permit for a fan-out of jobs (the `/v1/route`
    /// path).
    pub permit: Option<Permit>,
    /// Where the answer goes. `sync_channel(1)` so the send never blocks.
    pub reply: SyncSender<Result<Answer, PredictError>>,
    /// The originating request's trace context (span id = the request's
    /// root span). The batch span links it, and the per-item predict work
    /// runs under it so its spans land in the request's trace.
    pub ctx: obs::TraceContext,
}

/// A completed prediction, attributable to exactly one model version.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Canonical team name (registry key; may differ in case from the
    /// request).
    pub team: String,
    /// Version of the model that produced this answer.
    pub model_version: u64,
    /// The Scout's prediction.
    pub prediction: Prediction,
}

/// Why a job did not produce an [`Answer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// No Scout registered under that team name.
    UnknownTeam(String),
    /// The job's deadline lapsed before it ran.
    DeadlineExpired,
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::UnknownTeam(t) => write!(f, "no Scout registered for team {t:?}"),
            PredictError::DeadlineExpired => write!(f, "request deadline expired in queue"),
            PredictError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    wake: Condvar,
}

/// Batcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum jobs per batch.
    pub batch_size: usize,
    /// How long to hold an open batch waiting for more jobs.
    pub batch_deadline: Duration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            batch_size: 32,
            batch_deadline: Duration::from_millis(2),
        }
    }
}

/// The batcher: owns the job queue and the worker thread.
pub struct Batcher {
    queue: Arc<Queue>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Start the worker thread. `workload` supplies the monitoring plane
    /// Scouts consult at predict time; `registry` supplies the models;
    /// `monitoring` is the live shared config (a data set deprecated
    /// mid-stream takes effect on the next batch).
    pub fn start(
        registry: Arc<ModelRegistry>,
        workload: Arc<Workload>,
        monitoring: Arc<RwLock<MonitoringConfig>>,
        config: BatchConfig,
    ) -> Batcher {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
        });
        let worker_queue = Arc::clone(&queue);
        let worker = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || run_worker(worker_queue, registry, workload, monitoring, config))
            .expect("spawn batcher thread");
        Batcher {
            queue,
            worker: Some(worker),
        }
    }

    /// Enqueue a job. Returns the job back if the batcher has shut down
    /// (the caller still holds the permit and reply channel).
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.queue.state.lock().unwrap();
        if state.shutdown {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.queue.wake.notify_one();
        Ok(())
    }

    /// Signal shutdown without waiting for the worker: new submits are
    /// refused, an open batch window closes immediately, and the worker
    /// drains — everything already queued is answered (or shed with
    /// [`PredictError::ShuttingDown`]), never silently dropped. The worker
    /// thread itself is joined by [`Drop`].
    pub fn begin_shutdown(&self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.shutdown = true;
        }
        self.queue.wake.notify_all();
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.shutdown = true;
        }
        self.queue.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

fn run_worker(
    queue: Arc<Queue>,
    registry: Arc<ModelRegistry>,
    workload: Arc<Workload>,
    monitoring: Arc<RwLock<MonitoringConfig>>,
    config: BatchConfig,
) {
    let batch_size = config.batch_size.max(1);
    loop {
        let batch = collect_batch(&queue, batch_size, config.batch_deadline);
        match batch {
            Some(jobs) => run_batch(jobs, &registry, &workload, &monitoring),
            None => {
                // Shutdown: fail whatever is still queued. The drain span
                // links every abandoned request so no trace dead-ends
                // without a recorded cause.
                let drained: Vec<Job> = {
                    let mut state = queue.state.lock().unwrap();
                    state.jobs.drain(..).collect()
                };
                if !drained.is_empty() {
                    let mut span = obs::span!("serve.batch.drain");
                    for job in &drained {
                        if job.ctx.trace_id != 0 {
                            span.add_link(job.ctx);
                        }
                    }
                    obs::counter("serve.batch.drained").add(drained.len() as u64);
                    for job in drained {
                        let _ = job.reply.try_send(Err(PredictError::ShuttingDown));
                    }
                }
                return;
            }
        }
    }
}

/// Block until at least one job is available, then keep collecting until
/// the batch is full or `batch_deadline` has passed since the first job
/// was picked up. Returns `None` on shutdown with an empty queue.
fn collect_batch(queue: &Queue, batch_size: usize, batch_deadline: Duration) -> Option<Vec<Job>> {
    let mut state = queue.state.lock().unwrap();
    loop {
        if !state.jobs.is_empty() {
            break;
        }
        if state.shutdown {
            return None;
        }
        state = queue.wake.wait(state).unwrap();
    }
    let mut batch = Vec::with_capacity(batch_size);
    while batch.len() < batch_size {
        if let Some(job) = state.jobs.pop_front() {
            batch.push(job);
        } else {
            break;
        }
    }
    let window_end = Instant::now() + batch_deadline;
    while batch.len() < batch_size && !state.shutdown {
        let now = Instant::now();
        if now >= window_end {
            break;
        }
        let (next, timeout) = queue.wake.wait_timeout(state, window_end - now).unwrap();
        state = next;
        while batch.len() < batch_size {
            if let Some(job) = state.jobs.pop_front() {
                batch.push(job);
            } else {
                break;
            }
        }
        if timeout.timed_out() {
            break;
        }
    }
    drop(state);
    Some(batch)
}

fn run_batch(
    jobs: Vec<Job>,
    registry: &ModelRegistry,
    workload: &Workload,
    monitoring: &RwLock<MonitoringConfig>,
) {
    // The batch span is the fan-in point: it runs outside any single
    // request's context but *links* every request it coalesced.
    let mut span = obs::span!("serve.batch");
    for job in &jobs {
        if job.ctx.trace_id != 0 {
            span.add_link(job.ctx);
        }
    }
    let _span = span;
    obs::observe("serve.batch.occupancy", jobs.len() as f64);

    // Drop expired jobs before doing any work on them.
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
    let mut expired = 0u64;
    for job in jobs {
        if job.deadline.is_some_and(|d| now >= d) {
            obs::counter("serve.deadline.expired").inc();
            expired += 1;
            let _ = job.reply.try_send(Err(PredictError::DeadlineExpired));
        } else {
            live.push(job);
        }
    }
    if expired > 0 {
        obs::flight().alert(
            "deadline-miss",
            &format!("{expired} job(s) expired in queue"),
        );
    }
    if live.is_empty() {
        return;
    }

    // Group by requested team so each group runs one pooled predict pass
    // against exactly one pinned model version.
    let mut groups: BTreeMap<String, Vec<Job>> = BTreeMap::new();
    for job in live {
        groups.entry(job.team.clone()).or_default().push(job);
    }

    let mon_config = monitoring.read().unwrap().clone();
    let monitoring = MonitoringSystem::new(&workload.topology, &workload.faults, mon_config);

    for (team, group) in groups {
        let Some(entry) = registry.get(&team) else {
            for job in group {
                let _ = job
                    .reply
                    .try_send(Err(PredictError::UnknownTeam(team.clone())));
            }
            continue;
        };
        run_group(group, &entry, &monitoring);
    }
}

fn run_group(group: Vec<Job>, entry: &Arc<ModelEntry>, monitoring: &MonitoringSystem<'_>) {
    let inputs: Vec<(&str, SimTime)> = group.iter().map(|j| (j.text.as_str(), j.time)).collect();
    let ctxs: Vec<obs::TraceContext> = group.iter().map(|j| j.ctx).collect();
    // The per-entry chunk cache makes repeated predicts over overlapping
    // look-back windows skip telemetry generation; the monitoring epoch in
    // the chunk key keeps it exact across batches.
    let predictions =
        entry
            .scout
            .predict_many_traced(&inputs, monitoring, Some(&entry.feat_cache), Some(&ctxs));
    for (job, prediction) in group.into_iter().zip(predictions) {
        let _ = job.reply.try_send(Ok(Answer {
            team: entry.team.clone(),
            model_version: entry.version,
            prediction,
        }));
        // `job.permit` drops here, freeing the admission slot.
    }
}
