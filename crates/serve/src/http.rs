//! A hand-rolled HTTP/1.1 request parser and response writer.
//!
//! The build environment has no crates.io, so — like the in-workspace
//! `rand`/`proptest`/`criterion` shims — the serving layer carries its own
//! HTTP implementation: exactly the slice the Scout endpoints need
//! (request line + headers + `Content-Length` bodies, keep-alive), with
//! hard limits on every dimension an untrusted peer controls.
//!
//! The parser is **total**: any byte stream yields either a parsed
//! [`Request`], a clean end-of-stream (`Ok(None)`), or an [`HttpError`]
//! carrying a 4xx status — never a panic. `tests/http_proptest.rs` drives
//! arbitrary and adversarially-truncated byte streams through it to hold
//! that line.

use std::io::{BufRead, Write};

/// Maximum bytes of request line + headers (the "head").
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Maximum request body size.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (always starts with `/`).
    pub path: String,
    /// Header fields in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length` framed; chunked is rejected).
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Should the connection stay open after this exchange?
    /// HTTP/1.1 semantics: keep-alive unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(c) if c.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or a 400 error.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::new(400, "request body is not valid UTF-8"))
    }
}

/// A request-level protocol error; `status` is always 4xx and the message
/// is safe to echo back to the peer.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// The response status to send (4xx).
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl HttpError {
    /// A new error with the given status and message.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

/// Read one request from `r`.
///
/// * `Ok(Some(req))` — a complete request.
/// * `Ok(None)` — the stream ended cleanly before any request byte
///   (the peer closed an idle keep-alive connection).
/// * `Err(e)` — a malformed or over-limit request; `e.status` is the 4xx
///   to answer with before closing.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    // Accumulate the head byte-by-byte (the reader is buffered) until the
    // blank-line terminator; tolerate bare-LF line endings.
    let mut head: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::new(400, "connection closed mid-request"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::new(400, "read error mid-request"));
            }
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.lines();

    // Request line; tolerate leading blank lines (RFC 7230 robustness).
    let request_line = loop {
        match lines.next() {
            None => return Err(HttpError::new(400, "empty request")),
            Some("") => continue,
            Some(l) => break l,
        }
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "malformed request line"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "malformed request line"))?;
    if parts.next().is_some() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, "bad method token"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::new(400, "request target must be absolute"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, "only HTTP/1.x is supported"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminator's blank line
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "malformed header line"))?;
        let k = k.trim();
        if k.is_empty() || !k.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::new(400, "malformed header name"));
        }
        headers.push((k.to_string(), v.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
    }

    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::new(501, "chunked bodies are not supported"));
    }
    let len = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, "bad content-length"))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|_| HttpError::new(400, "truncated request body"))?;
    Ok(Some(Request { body, ..req }))
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// The standard rendering of an [`HttpError`].
    pub fn from_error(e: &HttpError) -> Response {
        let body = obs::json::Obj::new()
            .str("error", &e.message)
            .uint("status", u64::from(e.status))
            .finish();
        Response::json(e.status, body)
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serialize to the wire. Head and body go out in a single write so
    /// the response is one TCP segment whenever it fits (Nagle + delayed
    /// ACK punish split writes with tens of milliseconds of stall).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut frame = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        for (k, v) in &self.extra_headers {
            frame.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        frame.extend_from_slice(b"\r\n");
        frame.extend_from_slice(&self.body);
        w.write_all(&frame)?;
        w.flush()
    }
}

/// The reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/route HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.body_str().unwrap(), "abcd");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.header("Host"), Some("x"));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_head_is_400() {
        assert_eq!(parse(b"GET / HTTP/1.1\r\nHos").unwrap_err().status, 400);
    }

    #[test]
    fn truncated_body_is_400() {
        let e = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(e.status, 400);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(raw.as_bytes()).unwrap_err().status, 431);
    }

    #[test]
    fn giant_content_length_is_413() {
        let e = parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn bad_content_length_is_400() {
        let e = parse(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 400);
    }

    #[test]
    fn chunked_is_501() {
        let e = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 501);
    }

    #[test]
    fn response_round_trips_through_parser_shape() {
        let mut out = Vec::new();
        Response::json(200, r#"{"ok":true}"#)
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n{\"ok\":true}"));
    }
}
