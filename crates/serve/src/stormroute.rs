//! The storm layer's severity-aware route coalescer.
//!
//! Stage 3 of storm control: low-severity (`Sev3`) routing requests
//! queue here instead of paying a full fan-out each, and a single
//! worker thread runs them through [`fleet::dispatch_batch`] in
//! coalesced passes — one `MonitoringSystem` build and one
//! `predict_many_cached` call per Scout for the whole batch, the same
//! economics as the predict micro-batcher. The handler thread parks on
//! a rendezvous channel exactly like `/v1/scouts/*/predict` does, then
//! renders the decision itself; this module only produces the per-team
//! outcome set.
//!
//! The circuit-breaker gate is sampled **once per batch** (a batch is
//! one fan-out), and every outcome is reported back to the breakers
//! once per team per batch — a panicked Scout fails the whole batch
//! for its team, which is one breaker event, not `batch_size` of them.
//!
//! Batching never changes bytes: `predict_many` over a batch is
//! bit-identical to the same incidents predicted one at a time (the
//! PR 2/7 contract), and outcome sets leave `dispatch_batch` sorted by
//! team — so a Sev3 incident routed through here renders exactly the
//! response it would have gotten from a direct fan-out.

use crate::batcher::PredictError;
use crate::fleet::{self, FleetConfig, ScoutError, TeamOutcome};
use crate::registry::ModelRegistry;
use cloudsim::SimTime;
use incident::Workload;
use monitoring::MonitoringConfig;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use storm::{Gate, StormControl};

/// One queued low-severity routing job.
pub struct RouteJob {
    /// Incident text.
    pub text: String,
    /// Incident creation time (simulated).
    pub time: SimTime,
    /// Wall-clock deadline; jobs expired at batch start are answered
    /// with [`PredictError::DeadlineExpired`] instead of running.
    pub deadline: Option<Instant>,
    /// Where the outcome set goes. `sync_channel(1)` so the send never
    /// blocks.
    pub reply: SyncSender<Result<Vec<TeamOutcome>, PredictError>>,
    /// The originating request's trace context.
    pub ctx: obs::TraceContext,
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<RouteJob>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    wake: Condvar,
}

/// Everything the worker needs to execute a coalesced fan-out.
pub struct RouteBatcherContext {
    pub registry: Arc<ModelRegistry>,
    pub workload: Arc<Workload>,
    pub monitoring: Arc<RwLock<MonitoringConfig>>,
    pub fleet: FleetConfig,
    pub storm: Arc<StormControl>,
}

/// The route coalescer: owns the job queue and the worker thread.
pub struct RouteBatcher {
    queue: Arc<Queue>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl RouteBatcher {
    /// Start the worker thread. Batch size and window come from the
    /// storm config's [`storm::BatchPolicy`].
    pub fn start(ctx: RouteBatcherContext) -> RouteBatcher {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
        });
        let worker_queue = Arc::clone(&queue);
        let worker = std::thread::Builder::new()
            .name("serve-stormroute".into())
            .spawn(move || run_worker(worker_queue, ctx))
            .expect("spawn storm route batcher thread");
        RouteBatcher {
            queue,
            worker: Some(worker),
        }
    }

    /// Enqueue a job. Returns the job back if the batcher has shut down.
    pub fn submit(&self, job: RouteJob) -> Result<(), RouteJob> {
        let mut state = self.queue.state.lock().unwrap();
        if state.shutdown {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.queue.wake.notify_one();
        Ok(())
    }

    /// Refuse new submits and close the open batch window immediately;
    /// queued jobs are answered (or shed) — never silently dropped.
    pub fn begin_shutdown(&self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.shutdown = true;
        }
        self.queue.wake.notify_all();
    }
}

impl Drop for RouteBatcher {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

fn run_worker(queue: Arc<Queue>, ctx: RouteBatcherContext) {
    let policy = ctx.storm.batch_policy().clone();
    let batch_size = policy.max_batch.max(1);
    let window = Duration::from_millis(policy.max_wait_ms);
    loop {
        match collect_batch(&queue, batch_size, window) {
            Some(jobs) => run_route_batch(jobs, &ctx),
            None => {
                let drained: Vec<RouteJob> = {
                    let mut state = queue.state.lock().unwrap();
                    state.jobs.drain(..).collect()
                };
                for job in drained {
                    let _ = job.reply.try_send(Err(PredictError::ShuttingDown));
                }
                return;
            }
        }
    }
}

/// Block until at least one job is available, then keep collecting until
/// the batch is full or the window has passed since the first job was
/// picked up. Returns `None` on shutdown with an empty queue.
fn collect_batch(queue: &Queue, batch_size: usize, window: Duration) -> Option<Vec<RouteJob>> {
    let mut state = queue.state.lock().unwrap();
    loop {
        if !state.jobs.is_empty() {
            break;
        }
        if state.shutdown {
            return None;
        }
        state = queue.wake.wait(state).unwrap();
    }
    let mut batch = Vec::with_capacity(batch_size);
    while batch.len() < batch_size {
        match state.jobs.pop_front() {
            Some(job) => batch.push(job),
            None => break,
        }
    }
    let window_end = Instant::now() + window;
    while batch.len() < batch_size && !state.shutdown {
        let now = Instant::now();
        if now >= window_end {
            break;
        }
        let (next, timeout) = queue.wake.wait_timeout(state, window_end - now).unwrap();
        state = next;
        while batch.len() < batch_size {
            match state.jobs.pop_front() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        if timeout.timed_out() {
            break;
        }
    }
    drop(state);
    Some(batch)
}

fn run_route_batch(jobs: Vec<RouteJob>, ctx: &RouteBatcherContext) {
    let mut span = obs::span!("storm.route.batch");
    for job in &jobs {
        if job.ctx.trace_id != 0 {
            span.add_link(job.ctx);
        }
    }
    let _span = span;
    obs::observe("storm.batch.occupancy", jobs.len() as f64);
    if jobs.len() > 1 {
        obs::counter("storm.batch.coalesced").add(jobs.len() as u64 - 1);
    }

    // Answer expired jobs without running them.
    let now = Instant::now();
    let mut live: Vec<RouteJob> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.deadline.is_some_and(|d| now >= d) {
            obs::counter("serve.deadline.expired").inc();
            let _ = job.reply.try_send(Err(PredictError::DeadlineExpired));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    let entries = ctx.registry.snapshot();
    // The whole batch shares one breaker snapshot: a batch is one
    // fan-out, gated once per team.
    let now_ms = ctx.storm.now_ms();
    let skip: Vec<String> = entries
        .iter()
        .filter(|e| ctx.storm.gate(&e.team, now_ms) == Gate::Reject)
        .map(|e| e.team.clone())
        .collect();
    let mon = ctx.monitoring.read().unwrap().clone();
    let inputs: Vec<(&str, SimTime)> = live.iter().map(|j| (j.text.as_str(), j.time)).collect();
    // Per-job deadlines were checked above; the batch itself runs
    // undeadlined (Sev3 is the severity class that tolerates queueing).
    let mut outcome_sets = fleet::dispatch_batch(
        &entries,
        &ctx.workload,
        &mon,
        &inputs,
        None,
        &ctx.fleet,
        &skip,
    );

    // One breaker report per team per batch. Deadline and breaker-skip
    // outcomes are not evidence about the Scout itself.
    if let Some(first) = outcome_sets.first() {
        let report_ms = ctx.storm.now_ms();
        for outcome in first {
            match &outcome.result {
                Ok(_) => ctx.storm.record_outcome(&outcome.team, true, report_ms),
                Err(ScoutError::Panicked) | Err(ScoutError::Injected) => {
                    ctx.storm.record_outcome(&outcome.team, false, report_ms)
                }
                Err(ScoutError::DeadlineExpired) | Err(ScoutError::BreakerOpen) => {}
            }
        }
    }

    debug_assert_eq!(outcome_sets.len(), live.len());
    for job in live.into_iter().rev() {
        let outcomes = outcome_sets.pop().unwrap_or_default();
        let _ = job.reply.try_send(Ok(outcomes));
    }
}
