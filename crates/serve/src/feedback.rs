//! Ground-truth feedback: the served-prediction log and the ingestion
//! hook the lifecycle controller subscribes to.
//!
//! Every `POST /v1/scouts/<team>/predict` answer is assigned a
//! process-unique incident id and remembered in a bounded [`ServedLog`].
//! When the incident is eventually resolved, `POST /v1/feedback`
//! reports the ground-truth resolving team; the server joins it back to
//! the served prediction (and, when available, the versioned audit
//! record) and hands the labeled [`FeedbackEvent`] to the registered
//! [`FeedbackHook`]. Each incident accepts feedback once — a second
//! report is a `409`, so downstream labeled streams see each example
//! exactly once.

use cloudsim::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default bound on remembered served predictions.
pub const DEFAULT_SERVED_CAP: usize = 8192;

/// One served prediction, awaiting (or past) its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedRecord {
    /// Server-assigned incident id (process-unique, starts at 1).
    pub incident: u64,
    /// Team whose Scout answered (registry key as served).
    pub team: String,
    /// The incident text that was classified (retained so resolved
    /// incidents become training examples downstream).
    pub text: String,
    /// Registry version of the model that answered.
    pub model_version: u64,
    /// Did the Scout say "responsible"?
    pub predicted_responsible: bool,
    /// Prediction confidence.
    pub confidence: f64,
    /// Simulation time the prediction was made for.
    pub time: SimTime,
    /// Has ground truth already been recorded?
    pub resolved: bool,
}

/// Why a feedback report was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No served prediction with that incident id (never existed, or
    /// evicted from the bounded log).
    Unknown(u64),
    /// Ground truth was already recorded for this incident.
    AlreadyResolved(u64),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Unknown(id) => write!(f, "unknown incident {id}"),
            ResolveError::AlreadyResolved(id) => {
                write!(f, "feedback already recorded for incident {id}")
            }
        }
    }
}

/// Bounded FIFO of served predictions, keyed by assigned incident id.
#[derive(Debug)]
pub struct ServedLog {
    records: Mutex<VecDeque<ServedRecord>>,
    next_id: AtomicU64,
    cap: usize,
}

impl ServedLog {
    /// A log remembering at most `cap` served predictions (oldest
    /// evicted first). `cap` is clamped to at least 1.
    pub fn new(cap: usize) -> ServedLog {
        ServedLog {
            records: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(1),
            cap: cap.max(1),
        }
    }

    /// Rebuild a log from recovered state: `next_id` continues the
    /// pre-crash id sequence, `records` arrive oldest-first and are
    /// re-capped (so a recovered log obeys the *current* `cap` even if
    /// the process was restarted with a smaller one).
    pub fn restore(cap: usize, next_id: u64, records: Vec<ServedRecord>) -> ServedLog {
        let cap = cap.max(1);
        let mut queue: VecDeque<ServedRecord> = records.into();
        while queue.len() > cap {
            queue.pop_front();
        }
        ServedLog {
            records: Mutex::new(queue),
            next_id: AtomicU64::new(next_id.max(1)),
            cap,
        }
    }

    /// Remember one served prediction, returning its assigned incident
    /// id.
    pub fn record(
        &self,
        team: &str,
        text: &str,
        model_version: u64,
        predicted_responsible: bool,
        confidence: f64,
        time: SimTime,
    ) -> u64 {
        self.record_logged(
            team,
            text,
            model_version,
            predicted_responsible,
            confidence,
            time,
            |_| {},
        )
    }

    /// [`ServedLog::record`], invoking `log` with the new record while
    /// the log's lock is still held — the WAL producer hook, guaranteeing
    /// the durable event order matches the in-memory insertion order.
    #[allow(clippy::too_many_arguments)]
    pub fn record_logged(
        &self,
        team: &str,
        text: &str,
        model_version: u64,
        predicted_responsible: bool,
        confidence: f64,
        time: SimTime,
        log: impl FnOnce(&ServedRecord),
    ) -> u64 {
        let incident = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut records = self.records.lock().unwrap();
        if records.len() >= self.cap {
            records.pop_front();
        }
        records.push_back(ServedRecord {
            incident,
            team: team.to_string(),
            text: text.to_string(),
            model_version,
            predicted_responsible,
            confidence,
            time,
            resolved: false,
        });
        log(records.back().unwrap());
        incident
    }

    /// Mark `incident` resolved, returning its served record (as it was
    /// before resolution). Errs when unknown/evicted or already
    /// resolved.
    pub fn resolve(&self, incident: u64) -> Result<ServedRecord, ResolveError> {
        self.resolve_logged(incident, |_| {})
    }

    /// [`ServedLog::resolve`], invoking `log` with the pre-resolution
    /// record while the lock is held (WAL producer hook; see
    /// [`ServedLog::record_logged`]).
    pub fn resolve_logged(
        &self,
        incident: u64,
        log: impl FnOnce(&ServedRecord),
    ) -> Result<ServedRecord, ResolveError> {
        let mut records = self.records.lock().unwrap();
        let rec = records
            .iter_mut()
            .find(|r| r.incident == incident)
            .ok_or(ResolveError::Unknown(incident))?;
        if rec.resolved {
            return Err(ResolveError::AlreadyResolved(incident));
        }
        let snapshot = rec.clone();
        rec.resolved = true;
        log(&snapshot);
        Ok(snapshot)
    }

    /// Number of remembered predictions (resolved or not).
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One labeled example: a served prediction joined with its ground
/// truth.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackEvent {
    /// Server-assigned incident id.
    pub incident: u64,
    /// Team whose Scout answered.
    pub team: String,
    /// The incident text that was classified.
    pub text: String,
    /// Model version that answered.
    pub model_version: u64,
    /// What the Scout said.
    pub predicted: bool,
    /// Ground truth: was the Scout's team actually responsible?
    pub label: bool,
    /// Simulation time of the prediction (orders the labeled stream).
    pub time: SimTime,
    /// Trace id of the feedback request (0 = untraced), so the lifecycle
    /// worker's ingestion spans join the reporting request's trace.
    pub trace_id: u64,
}

/// Receiver for labeled feedback (the lifecycle controller). Called on
/// the HTTP handler thread — implementations must hand off quickly.
pub trait FeedbackHook: Send + Sync {
    /// One incident's ground truth arrived.
    fn on_feedback(&self, event: FeedbackEvent);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_start_at_one() {
        let log = ServedLog::new(16);
        let a = log.record("PhyNet", "text a", 1, true, 0.9, SimTime(5));
        let b = log.record("PhyNet", "text b", 1, false, 0.6, SimTime(6));
        assert_eq!(a, 1);
        assert_eq!(b, 2);
    }

    #[test]
    fn resolve_is_exactly_once() {
        let log = ServedLog::new(16);
        let id = log.record("Storage", "disk latency", 3, true, 0.8, SimTime(9));
        let rec = log.resolve(id).unwrap();
        assert_eq!(rec.team, "Storage");
        assert_eq!(rec.model_version, 3);
        assert!(!rec.resolved, "returned snapshot is pre-resolution");
        assert_eq!(log.resolve(id), Err(ResolveError::AlreadyResolved(id)));
        assert_eq!(log.resolve(999), Err(ResolveError::Unknown(999)));
    }

    #[test]
    fn restore_continues_id_sequence_and_recaps() {
        let mk = |incident: u64| ServedRecord {
            incident,
            team: "PhyNet".into(),
            text: format!("t{incident}"),
            model_version: 1,
            predicted_responsible: true,
            confidence: 0.9,
            time: SimTime(incident),
            resolved: false,
        };
        let log = ServedLog::restore(2, 5, vec![mk(2), mk(3), mk(4)]);
        assert_eq!(log.len(), 2, "restore re-caps, evicting oldest");
        assert_eq!(log.resolve(2), Err(ResolveError::Unknown(2)));
        assert!(log.resolve(3).is_ok());
        let next = log.record("PhyNet", "t5", 1, true, 0.9, SimTime(5));
        assert_eq!(next, 5, "ids continue the pre-crash sequence");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let log = ServedLog::new(2);
        let a = log.record("PhyNet", "t1", 1, true, 0.9, SimTime(1));
        let _b = log.record("PhyNet", "t2", 1, true, 0.9, SimTime(2));
        let _c = log.record("PhyNet", "t3", 1, true, 0.9, SimTime(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.resolve(a), Err(ResolveError::Unknown(a)));
    }
}
