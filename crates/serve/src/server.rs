//! The HTTP server: endpoints, connection handling, lifecycle.
//!
//! One acceptor thread, one handler thread per connection (capped), one
//! batcher thread. Handlers do the protocol work — parse, admission,
//! deadline — and park on a rendezvous channel while the batcher answers;
//! all model execution happens in the batcher on the shared `pool`.
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `GET /healthz` | liveness: 200 as long as the process serves |
//! | `GET /readyz` | readiness: 200 once ≥1 model is registered, else 503; includes SLO burn detail |
//! | `GET /metrics` | the obs registry in Prometheus exposition format |
//! | `GET /metrics.json` | the obs registry as JSONL |
//! | `GET /v1/debug/flight` | the flight recorder's ring as JSONL |
//! | `POST /v1/scouts/<team>/predict` | one Scout's verdict for `{"text", "time_minutes"?}` |
//! | `POST /v1/route` | sharded fleet fan-out → Scout-Master decision + top-k suggestions |
//! | `POST /v1/models/reload` | atomic hot-swap from the model directory |
//! | `POST /v1/models/rollback` | restore a prior version from the promotion timeline |
//! | `POST /v1/feedback` | ground-truth resolving team for a served prediction |
//! | `GET /v1/wal/state` | the WAL's recovered+live projections (409 without `--wal-dir`) |
//! | `POST /v1/monitoring/deprecate` | disable (or restore) one monitoring data set mid-stream |
//!
//! Shedding is `503`, a throttled source is `429` — both carry an
//! adaptive `Retry-After` derived from queue depth and breaker state; a
//! lapsed `X-Deadline-Ms` is `504`; an unknown team is `404`.
//!
//! Every request runs under a [`obs::TraceContext`]: a client-supplied
//! `X-Trace-Id` is adopted (and always sampled into the flight
//! recorder), otherwise one is minted under the configured 1-in-N
//! policy; the id is echoed back in the `X-Trace-Id` response header
//! either way.

use crate::admission::Admission;
use crate::batcher::{Answer, BatchConfig, Batcher, Job, PredictError};
use crate::durability::append_or_count;
use crate::feedback::{FeedbackEvent, FeedbackHook, ResolveError, ServedLog, DEFAULT_SERVED_CAP};
use crate::fleet::{self, FleetConfig, ScoutError};
use crate::http::{read_request, HttpError, Request, Response};
use crate::registry::ModelRegistry;
use crate::stormroute::{RouteBatcher, RouteBatcherContext, RouteJob};
use cloudsim::SimTime;
use incident::Workload;
use monitoring::{Dataset, MonitoringConfig};
use obs::json::{escape_into, Obj, Value};
use obs::TraceContext;
use scout::Prediction;
use scoutmaster::{FleetAnswer, FleetDecision, FleetMaster};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use storm::{DedupOutcome, Gate, StormControl};

/// Everything the endpoints need to answer a request.
pub struct Engine {
    /// Registered models, hot-swappable.
    pub registry: Arc<ModelRegistry>,
    /// The world the Scouts' monitoring plane reads from.
    pub workload: Arc<Workload>,
    /// The Scout-Master aggregation policy, string-keyed over the fleet's
    /// dependency graph.
    pub master: FleetMaster,
    /// Fleet routing-plane tunables (shard count, top-k suggestions,
    /// injected faults).
    pub fleet: FleetConfig,
    /// Where `POST /v1/models/reload` loads from (`None` → reload is 409).
    pub model_dir: Option<PathBuf>,
    /// Served predictions awaiting ground truth (`POST /v1/feedback`
    /// joins against this).
    pub served: Arc<ServedLog>,
    /// Labeled-feedback subscriber (the lifecycle controller), if any.
    pub feedback: Option<Arc<dyn FeedbackHook>>,
    /// The durability log, if `--wal-dir` is configured (attach with
    /// [`Engine::with_wal`]). Every served prediction, accepted
    /// feedback, and registry mutation is appended log-first.
    pub wal: Option<Arc<wal::Wal>>,
    /// The alert-storm control plane in front of `/v1/route` (attach
    /// with [`Engine::with_storm`]; `None` = storm control off, every
    /// firing pays a full fan-out).
    pub storm: Option<Arc<StormControl>>,
    /// The live monitoring-plane configuration shared by the predict
    /// batcher and the fleet dispatcher. `POST /v1/monitoring/deprecate`
    /// mutates it mid-stream (the paper's §8 robustness experiment); the
    /// monitoring epoch fingerprint covers the disabled set, so feature
    /// caches invalidate on their own.
    pub monitoring: Arc<RwLock<MonitoringConfig>>,
}

impl Engine {
    /// An engine with the paper's default Scout-Master policy and no
    /// reload directory.
    pub fn new(registry: Arc<ModelRegistry>, workload: Arc<Workload>) -> Engine {
        Engine {
            registry,
            workload,
            master: FleetMaster::default(),
            fleet: FleetConfig::default(),
            model_dir: None,
            served: Arc::new(ServedLog::new(DEFAULT_SERVED_CAP)),
            feedback: None,
            wal: None,
            storm: None,
            monitoring: Arc::new(RwLock::new(MonitoringConfig::default())),
        }
    }

    /// Attach the alert-storm control plane (dedup, throttling,
    /// severity batching, circuit breakers) in front of `/v1/route`.
    pub fn with_storm(mut self, storm: Arc<StormControl>) -> Engine {
        self.storm = Some(storm);
        self
    }

    /// Set the model directory used by `POST /v1/models/reload`.
    pub fn with_model_dir(mut self, dir: PathBuf) -> Engine {
        self.model_dir = Some(dir);
        self
    }

    /// Set the fleet routing-plane configuration.
    pub fn with_fleet(mut self, fleet: FleetConfig) -> Engine {
        self.fleet = fleet;
        self
    }

    /// Replace the Scout-Master policy (e.g. a custom dependency graph
    /// for a synthetic fleet).
    pub fn with_master(mut self, master: FleetMaster) -> Engine {
        self.master = master;
        self
    }

    /// Subscribe `hook` to labeled feedback events.
    pub fn with_feedback_hook(mut self, hook: Arc<dyn FeedbackHook>) -> Engine {
        self.feedback = Some(hook);
        self
    }

    /// Bound the served-prediction log at `cap` entries.
    pub fn with_served_cap(mut self, cap: usize) -> Engine {
        self.served = Arc::new(ServedLog::new(cap));
        self
    }
}

/// Server tunables. All have serving-grade defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum jobs per inference batch.
    pub batch_size: usize,
    /// How long an open batch waits for more jobs.
    pub batch_deadline: Duration,
    /// Maximum outstanding predict requests before shedding.
    pub queue_cap: usize,
    /// Maximum concurrently-served connections.
    pub max_connections: usize,
    /// Flight-recorder sampling for minted traces: 1-in-N requests
    /// (`0` = never, `1` = every request). Client-supplied `X-Trace-Id`
    /// requests are always sampled.
    pub trace_sample: u64,
    /// Directory for anomaly-triggered flight-recorder dumps (`None` =
    /// dump only on demand via `GET /v1/debug/flight`).
    pub flight_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch_size: 32,
            batch_deadline: Duration::from_millis(2),
            queue_cap: 64,
            max_connections: 128,
            trace_sample: 64,
            flight_dir: None,
        }
    }
}

/// The serving plane's default objectives: 99% of predicts under 250 ms,
/// 99.9% of responses non-5xx.
fn default_slos() -> Vec<obs::SloSpec> {
    vec![
        obs::SloSpec {
            name: "predict-latency".into(),
            objective: obs::slo::Objective::Latency {
                histogram: "serve.latency.predict".into(),
                threshold: 250.0,
                target: 0.99,
            },
        },
        obs::SloSpec {
            name: "availability".into(),
            objective: obs::slo::Objective::Availability {
                total_prefix: "serve.http.".into(),
                bad_prefix: "serve.http.5".into(),
                target: 0.999,
            },
        },
    ]
}

struct Shared {
    engine: Engine,
    batcher: Batcher,
    /// The storm layer's Sev3 route coalescer (present iff storm
    /// control is attached with a batch-capable policy).
    route_batcher: Option<RouteBatcher>,
    admission: Admission,
    slo: Arc<obs::SloEngine>,
    stop: AtomicBool,
    connections: AtomicUsize,
    max_connections: usize,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the acceptor, the batcher, and the SLO sampler.
pub struct Server {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    slo_sampler: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving.
    pub fn start(engine: Engine, addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        obs::enable();
        obs::trace::set_sample_every(config.trace_sample);
        if let Some(dir) = &config.flight_dir {
            std::fs::create_dir_all(dir)?;
        }
        obs::flight().set_dump_dir(config.flight_dir.clone());
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let batcher = Batcher::start(
            Arc::clone(&engine.registry),
            Arc::clone(&engine.workload),
            Arc::clone(&engine.monitoring),
            BatchConfig {
                batch_size: config.batch_size,
                batch_deadline: config.batch_deadline,
            },
        );
        let route_batcher = engine
            .storm
            .as_ref()
            .filter(|s| s.batch_policy().max_batch > 1)
            .map(|s| {
                RouteBatcher::start(RouteBatcherContext {
                    registry: Arc::clone(&engine.registry),
                    workload: Arc::clone(&engine.workload),
                    monitoring: Arc::clone(&engine.monitoring),
                    fleet: engine.fleet.clone(),
                    storm: Arc::clone(s),
                })
            });
        let shared = Arc::new(Shared {
            engine,
            batcher,
            route_batcher,
            admission: Admission::new(config.queue_cap),
            slo: Arc::new(obs::SloEngine::new(
                default_slos(),
                obs::SloConfig::default(),
            )),
            stop: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn acceptor thread");
        let slo_shared = Arc::clone(&shared);
        let slo_sampler = std::thread::Builder::new()
            .name("serve-slo".into())
            .spawn(move || slo_loop(slo_shared))
            .expect("spawn slo sampler thread");
        Ok(Server {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            slo_sampler: Some(slo_sampler),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the batcher, join the acceptor.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().ok();
        }
        // Drain, don't drop: refuse new submits and close the open batch
        // window immediately, so jobs already queued are answered now
        // rather than after the full batch deadline — and never left
        // unanswered.
        self.shared.batcher.begin_shutdown();
        if let Some(rb) = &self.shared.route_batcher {
            rb.begin_shutdown();
        }
        // Bounded wait for in-flight requests (admission permits are held
        // until the reply is sent) so handler threads deliver their
        // responses before the process can exit under us. Idle keep-alive
        // connections hold no permit and don't delay shutdown.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.admission.outstanding() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if let Some(sampler) = self.slo_sampler.take() {
            sampler.join().ok();
        }
    }
}

/// Periodic SLO evaluation against the global metrics registry. Samples
/// about once a second, polling the stop flag at 100 ms so shutdown is
/// prompt.
fn slo_loop(shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        shared.slo.sample(&obs::global().metrics);
        for _ in 0..10 {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        stream.set_nodelay(true).ok();
        let active = shared.connections.fetch_add(1, Ordering::AcqRel) + 1;
        if active > shared.max_connections {
            shared.connections.fetch_sub(1, Ordering::AcqRel);
            obs::counter("serve.conn.rejected").inc();
            let mut stream = stream;
            let _ = Response::from_error(&HttpError::new(503, "connection limit reached"))
                .with_header("Retry-After", &retry_after_secs(&shared).to_string())
                .write_to(&mut stream, false);
            continue;
        }
        obs::counter("serve.conn.accepted").inc();
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.connections.fetch_sub(1, Ordering::AcqRel);
            });
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader) {
            Ok(None) => return, // clean close
            Err(e) => {
                // Protocol error: answer and close.
                let _ = Response::from_error(&e).write_to(&mut writer, false);
                return;
            }
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive();
                let started = Instant::now();
                let endpoint = endpoint_label(&req.path);
                // Adopt the caller's trace id (always sampled: an explicit
                // id is a request to record) or mint one under the 1-in-N
                // policy; the root span anchors everything downstream.
                let ctx = match req.header("x-trace-id").and_then(obs::trace::parse_hex) {
                    Some(id) => TraceContext::adopt(id),
                    None => TraceContext::mint(),
                };
                let response = {
                    let _trace = ctx.enter();
                    let _root = obs::span!("serve.request");
                    dispatch(&req, shared)
                };
                obs::observe(
                    &format!("serve.latency.{endpoint}"),
                    started.elapsed().as_secs_f64() * 1e3,
                );
                obs::counter(&format!("serve.http.{}", response.status)).inc();
                let response = response.with_header("X-Trace-Id", &obs::trace::hex(ctx.trace_id));
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// A low-cardinality label for per-endpoint latency series.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/metrics" | "/metrics.json" => "metrics",
        "/v1/debug/flight" => "flight",
        "/v1/route" => "route",
        "/v1/models/reload" => "reload",
        "/v1/models/rollback" => "rollback",
        "/v1/feedback" => "feedback",
        "/v1/wal/state" => "wal",
        "/v1/monitoring/deprecate" => "deprecate",
        p if p.starts_with("/v1/scouts/") && p.ends_with("/predict") => "predict",
        _ => "other",
    }
}

fn dispatch(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, Obj::new().str("status", "ok").finish()),
        ("GET", "/readyz") => readyz(shared),
        ("GET", "/metrics") => Response::text(
            200,
            obs::sink::render_metrics_prometheus(&obs::global().metrics),
        ),
        ("GET", "/metrics.json") => {
            Response::text(200, obs::sink::render_metrics_jsonl(&obs::global().metrics))
        }
        ("GET", "/v1/debug/flight") => {
            let mut out = String::new();
            for line in obs::flight().snapshot() {
                out.push_str(&line);
                out.push('\n');
            }
            Response::text(200, out)
        }
        ("GET", "/v1/wal/state") => wal_state(shared),
        ("POST", "/v1/route") => route(req, shared),
        ("POST", "/v1/models/reload") => reload(shared),
        ("POST", "/v1/models/rollback") => rollback(req, shared),
        ("POST", "/v1/feedback") => feedback(req, shared),
        ("POST", "/v1/monitoring/deprecate") => deprecate(req, shared),
        ("POST", path) => {
            if let Some(team) = path
                .strip_prefix("/v1/scouts/")
                .and_then(|rest| rest.strip_suffix("/predict"))
            {
                predict(req, team, shared)
            } else {
                not_found(path)
            }
        }
        ("GET" | "HEAD", path) => not_found(path),
        (method, _) => {
            Response::from_error(&HttpError::new(405, format!("method {method} not allowed")))
        }
    }
}

fn not_found(path: &str) -> Response {
    Response::from_error(&HttpError::new(404, format!("no such endpoint: {path}")))
}

fn readyz(shared: &Shared) -> Response {
    let entries = shared.engine.registry.snapshot();
    if entries.is_empty() {
        Response::from_error(&HttpError::new(503, "no models registered"))
    } else {
        let teams: Vec<String> = entries.iter().map(|e| e.team.clone()).collect();
        let mut models = String::from("[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                models.push(',');
            }
            let history = shared.engine.registry.history_of(&e.team);
            models.push_str(
                &Obj::new()
                    .str("team", &e.team)
                    .uint("version", e.version)
                    .raw("history", &json_u64_array(&history))
                    .finish(),
            );
        }
        models.push(']');
        Response::json(
            200,
            Obj::new()
                .str("status", "ready")
                .raw("teams", &json_str_array(&teams))
                .raw("models", &models)
                .uint("epoch", shared.engine.registry.epoch())
                .raw("slo", &shared.slo.render_json())
                .finish(),
        )
    }
}

/// Parsed body of a predict/route request.
struct PredictInput {
    text: String,
    time: SimTime,
    /// Alert source (`"source"` field) — the storm throttle's bucket
    /// key. Defaults to [`storm::DEFAULT_SOURCE`].
    source: String,
    /// `"severity"` field, 1..=3. Defaults to Sev2 so unannotated
    /// traffic never queues in the Sev3 coalescer (which is what keeps
    /// its response bytes identical with storm control on or off).
    severity: storm::Severity,
}

fn parse_predict_input(req: &Request, shared: &Shared) -> Result<PredictInput, HttpError> {
    let body = req.body_str()?;
    let value =
        Value::parse(body).ok_or_else(|| HttpError::new(400, "request body is not valid JSON"))?;
    let text = value
        .get("text")
        .and_then(Value::as_str)
        .ok_or_else(|| HttpError::new(400, "missing required string field \"text\""))?
        .to_string();
    // Default prediction time: the end of the workload's fault horizon,
    // where the monitoring look-back window has the most signal.
    let default_time = SimTime::EPOCH + shared.engine.workload.config.faults.horizon;
    let time = match value.get("time_minutes") {
        None => default_time,
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| n.is_finite() && *n >= 0.0)
                .ok_or_else(|| HttpError::new(400, "\"time_minutes\" must be a number >= 0"))?;
            SimTime(n as u64)
        }
    };
    let source = match value.get("source") {
        None => storm::DEFAULT_SOURCE.to_string(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| HttpError::new(400, "\"source\" must be a string"))?
            .to_string(),
    };
    let severity = match value.get("severity") {
        None => storm::Severity::Sev2,
        Some(v) => v
            .as_f64()
            .filter(|n| n.fract() == 0.0)
            .and_then(|n| storm::Severity::from_level(n as u64))
            .ok_or_else(|| HttpError::new(400, "\"severity\" must be 1, 2, or 3"))?,
    };
    Ok(PredictInput {
        text,
        time,
        source,
        severity,
    })
}

/// Per-request deadline from `X-Deadline-Ms`, if present.
fn request_deadline(req: &Request) -> Result<Option<Instant>, HttpError> {
    match req.header("x-deadline-ms") {
        None => Ok(None),
        Some(v) => {
            let ms: u64 = v
                .trim()
                .parse()
                .map_err(|_| HttpError::new(400, "X-Deadline-Ms must be a whole number"))?;
            Ok(Some(Instant::now() + Duration::from_millis(ms)))
        }
    }
}

/// Seconds a refused client should wait before retrying, derived from
/// how loaded the server actually is instead of a hard-coded `1`:
/// an idle server says "1", a saturated admission queue adds up to 4,
/// and every open circuit breaker (a sign the fleet itself is sick,
/// not just busy) adds one more, clamped to `[1, 8]`. Pure function —
/// unit-tested directly.
fn adaptive_retry_after(outstanding: usize, cap: usize, breakers_open: usize) -> u64 {
    let cap = cap.max(1);
    let queue_factor = (outstanding.min(cap) * 4 / cap) as u64;
    (1 + queue_factor + breakers_open.min(3) as u64).clamp(1, 8)
}

/// The current adaptive `Retry-After` value for this server.
fn retry_after_secs(shared: &Shared) -> u64 {
    adaptive_retry_after(
        shared.admission.outstanding(),
        shared.admission.cap(),
        shared
            .engine
            .storm
            .as_ref()
            .map_or(0, |s| s.breakers_open()),
    )
}

fn shed_response(shared: &Shared) -> Response {
    Response::from_error(&HttpError::new(503, "server over capacity, request shed"))
        .with_header("Retry-After", &retry_after_secs(shared).to_string())
}

/// `429` for a source the storm throttle refused. `Retry-After` is the
/// larger of the bucket's own refill estimate and the adaptive
/// load-derived value.
fn throttled_response(retry_ms: u64, shared: &Shared) -> Response {
    let secs = retry_after_secs(shared).max(retry_ms.div_ceil(1000).max(1));
    Response::from_error(&HttpError::new(
        429,
        "source over rate limit, request throttled",
    ))
    .with_header("Retry-After", &secs.to_string())
}

fn predict_error_response(e: &PredictError) -> Response {
    let status = match e {
        PredictError::UnknownTeam(_) => 404,
        PredictError::DeadlineExpired => 504,
        PredictError::ShuttingDown => 503,
    };
    Response::from_error(&HttpError::new(status, e.to_string()))
}

fn predict(req: &Request, team: &str, shared: &Shared) -> Response {
    let input = match parse_predict_input(req, shared) {
        Ok(i) => i,
        Err(e) => return Response::from_error(&e),
    };
    let deadline = match request_deadline(req) {
        Ok(d) => d,
        Err(e) => return Response::from_error(&e),
    };
    let admitted = {
        let _span = obs::span!("serve.admission");
        shared.admission.try_admit()
    };
    let Some(permit) = admitted else {
        return shed_response(shared);
    };
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        team: team.to_string(),
        text: input.text.clone(),
        time: input.time,
        deadline,
        permit: Some(permit),
        reply: reply_tx,
        // Handoff: the job's spans parent to this request's root span.
        ctx: obs::trace::capture().unwrap_or(TraceContext::NONE),
    };
    if shared.batcher.submit(job).is_err() {
        return predict_error_response(&PredictError::ShuttingDown);
    }
    match reply_rx.recv() {
        Ok(Ok(answer)) => {
            let incident = record_served(&answer, &input.text, input.time, shared);
            Response::json(
                200,
                render_answer(&answer).uint("incident", incident).finish(),
            )
        }
        Ok(Err(e)) => predict_error_response(&e),
        Err(_) => Response::from_error(&HttpError::new(500, "batcher dropped the request")),
    }
}

/// Remember a served answer (assigning its incident id), append it to
/// the WAL (log-first, while the served log's lock pins the order), and
/// emit the versioned audit record that `POST /v1/feedback` will join
/// against.
fn record_served(answer: &Answer, text: &str, time: SimTime, shared: &Shared) -> u64 {
    let p: &Prediction = &answer.prediction;
    let incident = shared.engine.served.record_logged(
        &answer.team,
        text,
        answer.model_version,
        p.says_responsible(),
        p.confidence,
        time,
        |rec| {
            if let Some(wal) = shared.engine.wal.as_deref() {
                append_or_count(
                    wal,
                    &wal::Event::PredictionServed {
                        incident: rec.incident,
                        team: rec.team.clone(),
                        text: rec.text.clone(),
                        model_version: rec.model_version,
                        predicted: rec.predicted_responsible,
                        confidence: rec.confidence,
                        time: rec.time,
                    },
                );
            }
        },
    );
    obs::AuditRecord {
        incident,
        model: model_name(p).to_string(),
        verdict: verdict_name(p).to_string(),
        confidence: p.confidence,
        top_features: p.explanation.top_features.clone(),
        outcome: match p.verdict {
            scout::Verdict::Responsible => "route-here",
            scout::Verdict::NotResponsible => "route-away",
            scout::Verdict::Fallback => "legacy-process",
        }
        .into(),
        model_version: answer.model_version,
        trace_id: obs::trace::current().map_or(0, |c| c.trace_id),
    }
    .emit();
    incident
}

/// `POST /v1/feedback {"incident", "team"}`: record the ground-truth
/// resolving team for a served prediction, join it back to the served
/// record (and the audit tail), and hand the labeled event to the
/// lifecycle hook.
fn feedback(req: &Request, shared: &Shared) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::from_error(&e),
    };
    let Some(value) = Value::parse(body) else {
        return Response::from_error(&HttpError::new(400, "request body is not valid JSON"));
    };
    let Some(incident) = value
        .get("incident")
        .and_then(Value::as_f64)
        .filter(|n| n.is_finite() && *n >= 1.0)
    else {
        return Response::from_error(&HttpError::new(
            400,
            "missing required numeric field \"incident\"",
        ));
    };
    let Some(resolving_team) = value.get("team").and_then(Value::as_str) else {
        return Response::from_error(&HttpError::new(
            400,
            "missing required string field \"team\" (the resolving team)",
        ));
    };
    let served = match shared.engine.served.resolve_logged(incident as u64, |rec| {
        if let Some(wal) = shared.engine.wal.as_deref() {
            append_or_count(
                wal,
                &wal::Event::FeedbackAccepted {
                    incident: rec.incident,
                    team: rec.team.clone(),
                    text: rec.text.clone(),
                    model_version: rec.model_version,
                    predicted: rec.predicted_responsible,
                    label: resolving_team.eq_ignore_ascii_case(&rec.team),
                    time: rec.time,
                },
            );
        }
    }) {
        Ok(rec) => rec,
        Err(e @ ResolveError::Unknown(_)) => {
            obs::counter("serve.feedback.unknown").inc();
            return Response::from_error(&HttpError::new(404, e.to_string()));
        }
        Err(e @ ResolveError::AlreadyResolved(_)) => {
            obs::counter("serve.feedback.duplicate").inc();
            return Response::from_error(&HttpError::new(409, e.to_string()));
        }
    };
    // Join against the versioned audit tail: presence means the full
    // explanation for this prediction is still on hand.
    if obs::audit_lookup(served.incident).is_some() {
        obs::counter("serve.feedback.audit_joined").inc();
    } else {
        obs::counter("serve.feedback.audit_miss").inc();
    }
    let event = FeedbackEvent {
        incident: served.incident,
        team: served.team.clone(),
        text: served.text.clone(),
        model_version: served.model_version,
        predicted: served.predicted_responsible,
        label: resolving_team.eq_ignore_ascii_case(&served.team),
        time: served.time,
        // The feedback request's own trace follows the labeled example
        // into the lifecycle worker.
        trace_id: obs::trace::current().map_or(0, |c| c.trace_id),
    };
    obs::counter("serve.feedback.accepted").inc();
    let response = Obj::new()
        .str("status", "recorded")
        .uint("incident", event.incident)
        .str("team", &event.team)
        .uint("model_version", event.model_version)
        .bool("predicted_responsible", event.predicted)
        .bool("label_responsible", event.label)
        .finish();
    if let Some(hook) = shared.engine.feedback.as_ref() {
        hook.on_feedback(event);
    }
    Response::json(200, response)
}

/// `POST /v1/route`: fan the incident out to every registered Scout
/// through the sharded fleet plane, aggregate with the string-keyed
/// Scout Master, and return the decision plus top-k suggestions.
///
/// Per-team failures degrade gracefully: an errored Scout contributes
/// "no answer" (counted in `serve.route.scout_error` and itemized in the
/// response's `errors` array); the request itself fails only when
/// *every* Scout does (`504` if all deadlines lapsed, else `500`).
/// Answers from teams outside the dependency graph still route — they
/// are counted in `serve.route.unmapped`, never dropped.
fn route(req: &Request, shared: &Shared) -> Response {
    let input = match parse_predict_input(req, shared) {
        Ok(i) => i,
        Err(e) => return Response::from_error(&e),
    };
    let deadline = match request_deadline(req) {
        Ok(d) => d,
        Err(e) => return Response::from_error(&e),
    };
    let Some(storm) = shared.engine.storm.as_ref() else {
        return route_fanout(&input, deadline, shared, None);
    };
    // The storm front-end, stages in cost order: throttle (no state per
    // alert), dedup (a table lookup), then — only for survivors — the
    // fan-out with breaker gating and Sev3 coalescing.
    let now_ms = storm.now_ms();
    if let Err(retry_ms) = storm.admit(&input.source, now_ms) {
        return throttled_response(retry_ms, shared);
    }
    let (fp, outcome) = storm.observe(&input.text, &input.source, now_ms);
    let store_fp = match outcome {
        DedupOutcome::Duplicate {
            duplicates,
            decision: Some(decision),
        } => {
            // Answered from the original's cached decision: no
            // admission slot, no fan-out. The `storm` object is the
            // only difference from the original's bytes.
            obs::counter("serve.route.suppressed").inc();
            return duplicate_response(&decision, duplicates);
        }
        // The original is still in flight (no decision cached yet):
        // route normally, but only the original stores the decision.
        DedupOutcome::Duplicate { .. } => None,
        DedupOutcome::Fresh => Some(fp),
    };
    let response = route_fanout(&input, deadline, shared, Some(storm));
    if response.status == 200 {
        if let Some(fp) = store_fp {
            storm.store_decision(fp, String::from_utf8_lossy(&response.body).into_owned());
        }
    }
    response
}

/// A suppressed duplicate's response: the original's cached body with a
/// `storm` object spliced in, so callers can tell (and count) that this
/// firing coalesced into an earlier one.
fn duplicate_response(decision: &str, duplicates: u64) -> Response {
    let storm_obj = Obj::new()
        .bool("suppressed", true)
        .uint("duplicates", duplicates)
        .finish();
    let body = match decision.strip_suffix('}') {
        Some(head) => format!("{head},\"storm\":{storm_obj}}}"),
        None => decision.to_string(),
    };
    Response::json(200, body)
}

/// The fan-out half of `/v1/route`: admission, dispatch (direct or
/// through the Sev3 coalescer), breaker bookkeeping, and rendering.
/// `storm` is `Some` when storm control is attached; non-storm traffic
/// takes the exact same dispatch path either way, which is what keeps
/// its response bytes identical with the layer on or off.
fn route_fanout(
    input: &PredictInput,
    deadline: Option<Instant>,
    shared: &Shared,
    storm: Option<&Arc<StormControl>>,
) -> Response {
    let entries = shared.engine.registry.snapshot();
    if entries.is_empty() {
        return Response::from_error(&HttpError::new(503, "no models registered"));
    }
    // One admission slot covers the whole fan-out: a routing request is
    // one unit of operator-facing work regardless of Scout count.
    let admitted = {
        let _span = obs::span!("serve.admission");
        shared.admission.try_admit()
    };
    let Some(_permit) = admitted else {
        return shed_response(shared);
    };

    // Stage 3: a low-severity incident queues into the coalescer and
    // shares one fan-out with its batch.
    if let (Some(storm), Some(route_batcher)) = (storm, shared.route_batcher.as_ref()) {
        if storm.batch_policy().should_batch(input.severity) {
            let (reply_tx, reply_rx) = sync_channel(1);
            let job = RouteJob {
                text: input.text.clone(),
                time: input.time,
                deadline,
                reply: reply_tx,
                ctx: obs::trace::capture().unwrap_or(TraceContext::NONE),
            };
            if route_batcher.submit(job).is_ok() {
                return match reply_rx.recv() {
                    Ok(Ok(outcomes)) => decide_and_render(outcomes, shared),
                    Ok(Err(e)) => predict_error_response(&e),
                    Err(_) => Response::from_error(&HttpError::new(
                        500,
                        "route batcher dropped the request",
                    )),
                };
            }
            // Batcher shut down: fall through to a direct fan-out.
        }
    }

    // Stage 4 gate: sample the breakers once per fan-out; open teams are
    // skipped inside dispatch (no catch_unwind, no predict).
    let skip: Vec<String> = storm
        .map(|s| {
            let gate_ms = s.now_ms();
            entries
                .iter()
                .filter(|e| s.gate(&e.team, gate_ms) == Gate::Reject)
                .map(|e| e.team.clone())
                .collect()
        })
        .unwrap_or_default();
    let mon = shared.engine.monitoring.read().unwrap().clone();
    let outcomes = {
        let _span = obs::span!("fleet.dispatch");
        fleet::dispatch_batch(
            &entries,
            &shared.engine.workload,
            &mon,
            &[(&input.text, input.time)],
            deadline,
            &shared.engine.fleet,
            &skip,
        )
        .pop()
        .expect("one input yields one outcome set")
    };
    // Report outcomes back to the breakers. Deadline and breaker-skip
    // results say nothing about the Scout itself, so they don't count.
    if let Some(storm) = storm {
        let report_ms = storm.now_ms();
        for outcome in &outcomes {
            match &outcome.result {
                Ok(_) => storm.record_outcome(&outcome.team, true, report_ms),
                Err(ScoutError::Panicked) | Err(ScoutError::Injected) => {
                    storm.record_outcome(&outcome.team, false, report_ms)
                }
                Err(ScoutError::DeadlineExpired) | Err(ScoutError::BreakerOpen) => {}
            }
        }
    }
    decide_and_render(outcomes, shared)
}

/// Split sorted outcomes into answers and errors, run the Scout-Master
/// decision, and render the `/v1/route` response. Shared by the direct
/// and the coalesced dispatch paths.
fn decide_and_render(outcomes: Vec<crate::fleet::TeamOutcome>, shared: &Shared) -> Response {
    // Outcomes arrive sorted by team name — the canonical order that
    // keeps the response bytes identical across shard counts.
    let mut answers: Vec<Answer> = Vec::new();
    let mut errors: Vec<(String, ScoutError)> = Vec::new();
    for outcome in outcomes {
        match outcome.result {
            Ok(answer) => answers.push(answer),
            Err(e) => {
                obs::counter("serve.route.scout_error").inc();
                errors.push((outcome.team, e));
            }
        }
    }
    if answers.is_empty() {
        obs::counter("serve.route.all_failed").inc();
        let status = if errors
            .iter()
            .all(|(_, e)| *e == ScoutError::DeadlineExpired)
        {
            504
        } else {
            500
        };
        return Response::from_error(&HttpError::new(
            status,
            format!("all {} Scouts failed to answer", errors.len()),
        ));
    }
    let graph = shared.engine.master.graph();
    let unmapped = answers.iter().filter(|a| !graph.contains(&a.team)).count();
    if unmapped > 0 {
        obs::counter("serve.route.unmapped").add(unmapped as u64);
    }
    let fleet_answers: Vec<FleetAnswer> = answers
        .iter()
        .map(|a| {
            FleetAnswer::new(
                a.team.clone(),
                a.prediction.says_responsible(),
                a.prediction.confidence,
            )
        })
        .collect();
    let decision = shared.engine.master.route(&fleet_answers);
    let suggestions = shared
        .engine
        .master
        .suggestions(&fleet_answers, shared.engine.fleet.suggestions);
    let mut suggestions_json = String::from("[");
    for (i, s) in suggestions.iter().enumerate() {
        if i > 0 {
            suggestions_json.push(',');
        }
        suggestions_json.push_str(
            &Obj::new()
                .str("team", &s.team)
                .num("confidence", s.confidence)
                .finish(),
        );
    }
    suggestions_json.push(']');
    let mut answers_json = String::from("[");
    for (i, a) in answers.iter().enumerate() {
        if i > 0 {
            answers_json.push(',');
        }
        answers_json.push_str(&render_answer(a).finish());
    }
    answers_json.push(']');
    let mut errors_json = String::from("[");
    for (i, (team, e)) in errors.iter().enumerate() {
        if i > 0 {
            errors_json.push(',');
        }
        errors_json.push_str(
            &Obj::new()
                .str("team", team)
                .str("error", &e.to_string())
                .finish(),
        );
    }
    errors_json.push(']');
    let obj = match &decision {
        FleetDecision::SendTo(team) => {
            obs::counter("fleet.route.send_to").inc();
            Obj::new().str("decision", "send_to").str("team", team)
        }
        FleetDecision::Fallback => {
            obs::counter("fleet.route.fallback").inc();
            Obj::new().str("decision", "fallback")
        }
    };
    Response::json(
        200,
        obj.raw("suggestions", &suggestions_json)
            .raw("answers", &answers_json)
            .raw("errors", &errors_json)
            .finish(),
    )
}

/// `POST /v1/monitoring/deprecate {"dataset", "restore"?}`: disable (or
/// with `"restore": true` re-enable) one monitoring data set for every
/// request from this point on. The monitoring epoch fingerprint covers
/// the disabled list, so feature caches invalidate themselves — Scouts
/// degrade to the remaining sensors instead of erroring.
fn deprecate(req: &Request, shared: &Shared) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::from_error(&e),
    };
    let Some(obj @ Value::Obj(_)) = Value::parse(body) else {
        return Response::from_error(&HttpError::new(400, "body must be a JSON object"));
    };
    let Some(name) = obj.get("dataset").and_then(|v| v.as_str()) else {
        return Response::from_error(&HttpError::new(400, "missing string field: dataset"));
    };
    let restore = match obj.get("restore") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => {
            return Response::from_error(&HttpError::new(400, "field restore must be a boolean"))
        }
    };
    let Some(dataset) = Dataset::ALL.iter().copied().find(|d| d.name() == name) else {
        let valid: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        return Response::from_error(&HttpError::new(
            400,
            format!("unknown dataset {name:?}; valid: {}", valid.join(", ")),
        ));
    };
    let disabled: Vec<&'static str> = {
        let mut mon = shared.engine.monitoring.write().unwrap();
        if restore {
            mon.disabled.retain(|d| *d != dataset);
        } else if !mon.disabled.contains(&dataset) {
            mon.disabled.push(dataset);
            mon.disabled.sort();
        }
        mon.disabled.iter().map(|d| d.name()).collect()
    };
    obs::counter("serve.monitoring.deprecate").inc();
    obs::flight().alert(
        "monitoring-deprecate",
        &format!(
            "{} {}; disabled now [{}]",
            if restore { "restored" } else { "deprecated" },
            name,
            disabled.join(", ")
        ),
    );
    let mut arr = String::from("[");
    for (i, d) in disabled.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push('"');
        escape_into(&mut arr, d);
        arr.push('"');
    }
    arr.push(']');
    Response::json(
        200,
        Obj::new()
            .str("status", "ok")
            .raw("disabled", &arr)
            .finish(),
    )
}

fn reload(shared: &Shared) -> Response {
    let Some(dir) = shared.engine.model_dir.as_deref() else {
        return Response::from_error(&HttpError::new(
            409,
            "server was started without a model directory; reload is unavailable",
        ));
    };
    match shared.engine.registry.load_dir(dir) {
        Ok(published) => {
            let mut arr = String::from("[");
            for (i, (team, version)) in published.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                arr.push_str(
                    &Obj::new()
                        .str("team", team)
                        .uint("version", *version)
                        .finish(),
                );
            }
            arr.push(']');
            Response::json(200, Obj::new().raw("reloaded", &arr).finish())
        }
        Err(e) => Response::from_error(&HttpError::new(500, e.to_string())),
    }
}

/// `POST /v1/models/rollback {"team", "version"?}`: restore a prior
/// version from `team`'s promotion timeline — the most recent one, or
/// exactly `version`. Rollback works on pinned teams (a pin blocks
/// promotions, never recovery); failures (unknown team, empty or
/// unretained timeline) are `409` with the retained versions named.
fn rollback(req: &Request, shared: &Shared) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::from_error(&e),
    };
    let Some(value) = Value::parse(body) else {
        return Response::from_error(&HttpError::new(400, "request body is not valid JSON"));
    };
    let Some(team) = value.get("team").and_then(Value::as_str) else {
        return Response::from_error(&HttpError::new(
            400,
            "missing required string field \"team\"",
        ));
    };
    let version = match value.get("version") {
        None => None,
        Some(v) => match v
            .as_f64()
            .filter(|n| n.fract() == 0.0 && *n >= 1.0 && *n < 9.0e15)
        {
            Some(n) => Some(n as u64),
            None => {
                return Response::from_error(&HttpError::new(
                    400,
                    "\"version\" must be a whole number >= 1",
                ))
            }
        },
    };
    match shared.engine.registry.rollback_to(team, version) {
        Ok(restored) => Response::json(
            200,
            Obj::new()
                .str("status", "rolled_back")
                .str("team", team)
                .uint("version", restored)
                .raw(
                    "history",
                    &json_u64_array(&shared.engine.registry.history_of(team)),
                )
                .finish(),
        ),
        Err(e) => Response::from_error(&HttpError::new(409, e.to_string())),
    }
}

/// `GET /v1/wal/state`: the durability log's live projections — what a
/// crash right now would recover to. `409` when serving without a WAL.
fn wal_state(shared: &Shared) -> Response {
    match shared.engine.wal.as_deref() {
        Some(wal) => Response::json(
            200,
            Obj::new()
                .uint("seq", wal.seq())
                .raw("projections", &wal.render_state())
                .finish(),
        ),
        None => Response::from_error(&HttpError::new(
            409,
            "server was started without --wal-dir; no durability log",
        )),
    }
}

/// Render one [`Answer`] as a JSON object builder.
fn render_answer(answer: &Answer) -> Obj {
    let p: &Prediction = &answer.prediction;
    Obj::new()
        .str("team", &answer.team)
        .uint("model_version", answer.model_version)
        .str("verdict", verdict_name(p))
        .num("confidence", p.confidence)
        .str("model", model_name(p))
        .raw("components", &json_str_array(&p.explanation.components))
        .raw("evidence", &json_str_array(&p.explanation.evidence))
}

fn verdict_name(p: &Prediction) -> &'static str {
    match p.verdict {
        scout::Verdict::Responsible => "responsible",
        scout::Verdict::NotResponsible => "not_responsible",
        scout::Verdict::Fallback => "fallback",
    }
}

fn model_name(p: &Prediction) -> &'static str {
    match p.model {
        scout::ModelUsed::RandomForest => "random_forest",
        scout::ModelUsed::CpdConservative => "cpd_conservative",
        scout::ModelUsed::CpdCluster => "cpd_cluster",
        scout::ModelUsed::Exclusion => "exclusion",
        scout::ModelUsed::Fallback => "fallback",
    }
}

/// A JSON array of unsigned integers.
fn json_u64_array(items: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, n) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.to_string());
    }
    out.push(']');
    out
}

/// A JSON array of strings.
fn json_str_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, item);
        out.push('"');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_low_cardinality() {
        assert_eq!(endpoint_label("/healthz"), "healthz");
        assert_eq!(endpoint_label("/v1/scouts/PhyNet/predict"), "predict");
        assert_eq!(endpoint_label("/v1/scouts/Storage/predict"), "predict");
        assert_eq!(endpoint_label("/v1/route"), "route");
        assert_eq!(endpoint_label("/anything/else"), "other");
    }

    #[test]
    fn json_str_array_escapes() {
        assert_eq!(json_str_array(&[]), "[]");
        assert_eq!(
            json_str_array(&["a\"b".to_string(), "c".to_string()]),
            r#"["a\"b","c"]"#
        );
    }
}
