//! Admission control: a hard bound on outstanding predict work.
//!
//! The bound covers the whole in-server lifetime of a request — queued,
//! being collected into a batch, or executing — not just the queue, so
//! "how much work is in flight" has one number and one knob
//! (`queue_cap`). A request that cannot get a permit is **shed**
//! immediately with `503 Service Unavailable` + `Retry-After` instead of
//! joining an unbounded line; the paper's Scout is a gate-keeper in
//! front of human responders, and a late answer is as useless to them as
//! no answer (§7's time-to-mitigation framing).
//!
//! `serve.queue.depth` (gauge) tracks outstanding permits and
//! `serve.shed` (counter) counts rejections.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sheds within [`BURST_WINDOW`] of each other that constitute a burst
/// worth a flight-recorder alert.
const BURST_THRESHOLD: u32 = 8;
/// How close together sheds must be to count as one burst.
const BURST_WINDOW: Duration = Duration::from_secs(1);

#[derive(Debug)]
struct Inner {
    outstanding: AtomicUsize,
    cap: usize,
    /// Shed-burst detector state: window start and sheds seen in it.
    burst: Mutex<(Option<Instant>, u32)>,
}

/// The admission gate. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct Admission {
    inner: Arc<Inner>,
}

/// A held admission slot; releasing is automatic on drop.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl Admission {
    /// A gate admitting at most `cap` outstanding requests (`cap` is
    /// clamped to at least 1).
    pub fn new(cap: usize) -> Admission {
        Admission {
            inner: Arc::new(Inner {
                outstanding: AtomicUsize::new(0),
                cap: cap.max(1),
                burst: Mutex::new((None, 0)),
            }),
        }
    }

    /// Try to admit one request. `None` means shed.
    pub fn try_admit(&self) -> Option<Permit> {
        let mut cur = self.inner.outstanding.load(Ordering::Relaxed);
        loop {
            if cur >= self.inner.cap {
                obs::counter("serve.shed").inc();
                self.note_shed();
                return None;
            }
            match self.inner.outstanding.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    obs::gauge("serve.queue.depth").set((cur + 1) as f64);
                    return Some(Permit {
                        inner: Arc::clone(&self.inner),
                    });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Count one shed toward burst detection; a burst of
    /// [`BURST_THRESHOLD`] sheds inside [`BURST_WINDOW`] raises a
    /// `shed-burst` flight-recorder alert (once per window).
    fn note_shed(&self) {
        let mut burst = self.inner.burst.lock().unwrap();
        let now = Instant::now();
        match burst.0 {
            Some(start) if now.duration_since(start) < BURST_WINDOW => {
                burst.1 += 1;
                if burst.1 == BURST_THRESHOLD {
                    obs::flight().alert(
                        "shed-burst",
                        &format!(
                            "{BURST_THRESHOLD} sheds within 1s at cap {}",
                            self.inner.cap
                        ),
                    );
                }
            }
            _ => *burst = (Some(now), 1),
        }
    }

    /// Currently outstanding permits.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Acquire)
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.inner.cap
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let now = self.inner.outstanding.fetch_sub(1, Ordering::AcqRel) - 1;
        obs::gauge("serve.queue.depth").set(now as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_cap_then_sheds() {
        let a = Admission::new(2);
        let p1 = a.try_admit().expect("first");
        let p2 = a.try_admit().expect("second");
        assert!(a.try_admit().is_none(), "third must shed");
        assert_eq!(a.outstanding(), 2);
        drop(p1);
        let p3 = a.try_admit().expect("slot freed");
        drop(p2);
        drop(p3);
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let a = Admission::new(0);
        assert_eq!(a.cap(), 1);
        let _p = a.try_admit().expect("cap 1 admits one");
        assert!(a.try_admit().is_none());
    }

    #[test]
    fn concurrent_admission_never_exceeds_cap() {
        let a = Admission::new(8);
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let a = a.clone();
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(p) = a.try_admit() {
                            peak.fetch_max(a.outstanding(), Ordering::Relaxed);
                            drop(p);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 8);
        assert_eq!(a.outstanding(), 0);
    }
}
