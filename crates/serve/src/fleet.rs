//! The sharded fleet routing plane behind `POST /v1/route`.
//!
//! A routing request fans one incident out to *every* registered Scout.
//! At paper scale (a handful of teams) a flat loop through the batcher
//! works; at fleet scale (hundreds of teams) the fan-out itself becomes
//! the bottleneck and a single slow or broken Scout must not take the
//! whole decision down. This module is the scalable middle layer:
//!
//! * teams are partitioned into `shards` bounded worker groups by
//!   **rendezvous (highest-random-weight) hashing** — each team's shard
//!   is a pure function of `(team name, shard count)`, so adding or
//!   removing a team never reshuffles any other team, and every process
//!   in a fleet agrees on the assignment with zero coordination;
//! * shards run in parallel on the workspace [`pool`] (the caller's
//!   thread participates; nested parallelism degrades to inline
//!   execution), each under a `fleet.shard` span linked to the request
//!   trace, with per-shard team counts and latency metrics;
//! * each Scout runs with the request deadline re-checked at dispatch
//!   and is individually isolated: a panic or injected fault becomes a
//!   per-team [`ScoutError`], never a request-wide failure.
//!
//! **Determinism:** outcomes are collected per team and sorted by team
//! name before they leave this module, and each prediction is a pure
//! function of `(scout, incident)` (the workspace-wide contract), so the
//! aggregate is byte-identical across shard counts — `shards=1` and
//! `shards=64` produce the same bytes. The integration proptests pin
//! this.

use crate::batcher::Answer;
use crate::registry::ModelEntry;
use incident::Workload;
use monitoring::{MonitoringConfig, MonitoringSystem};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable consulted for the default shard count.
pub const SHARDS_ENV: &str = "SCOUTS_FLEET_SHARDS";

/// Default shard count when neither `--fleet-shards` nor
/// [`SHARDS_ENV`] is set.
pub const DEFAULT_SHARDS: usize = 4;

/// Default number of top-k routing suggestions in a `/v1/route`
/// response.
pub const DEFAULT_SUGGESTIONS: usize = 3;

/// Fleet routing-plane tunables.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker groups the registered teams are hashed across (`0` is
    /// treated as `1`).
    pub shards: usize,
    /// How many top-k suggestions `/v1/route` returns.
    pub suggestions: usize,
    /// Teams whose Scouts fail on purpose (case-insensitive). Fault
    /// injection for tests and the smoke script — a listed team's
    /// dispatch returns [`ScoutError::Injected`] instead of running.
    pub fail_teams: Vec<String>,
}

impl Default for FleetConfig {
    /// Shard count from [`SHARDS_ENV`] (else [`DEFAULT_SHARDS`]), three
    /// suggestions, no injected faults.
    fn default() -> FleetConfig {
        let shards = std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_SHARDS);
        FleetConfig {
            shards,
            suggestions: DEFAULT_SUGGESTIONS,
            fail_teams: Vec::new(),
        }
    }
}

impl FleetConfig {
    /// The effective shard count (`>= 1`).
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// Is `team` marked for injected failure?
    pub fn fails(&self, team: &str) -> bool {
        self.fail_teams.iter().any(|t| t.eq_ignore_ascii_case(team))
    }
}

/// Why one team's Scout produced no answer. Unlike
/// [`PredictError`](crate::batcher::PredictError), these are *per-team*
/// conditions: the routing decision proceeds over the Scouts that did
/// answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoutError {
    /// The request deadline lapsed before this Scout ran.
    DeadlineExpired,
    /// The Scout panicked; the panic was contained to its team.
    Panicked,
    /// The team is listed in [`FleetConfig::fail_teams`].
    Injected,
    /// The team's storm-control circuit breaker is open: the Scout was
    /// tripped out of the fan-out without running.
    BreakerOpen,
}

impl std::fmt::Display for ScoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoutError::DeadlineExpired => write!(f, "deadline expired before the Scout ran"),
            ScoutError::Panicked => write!(f, "the Scout panicked"),
            ScoutError::Injected => write!(f, "injected failure (fleet fail_teams)"),
            ScoutError::BreakerOpen => write!(f, "circuit breaker open for this team"),
        }
    }
}

/// One team's per-input results within a shard, before the outcomes are
/// regrouped input-major.
type TeamBatchResults = Vec<(String, Vec<Result<Answer, ScoutError>>)>;

/// One team's dispatch outcome.
#[derive(Debug, Clone)]
pub struct TeamOutcome {
    /// Registered team name (registry key).
    pub team: String,
    /// The Scout's answer, or why there is none.
    pub result: Result<Answer, ScoutError>,
}

/// The shard `team` lives on, out of `shards`, by rendezvous hashing:
/// the shard whose mixed `(team, shard)` weight is highest wins, ties to
/// the lower shard index. Pure function of its arguments — stable across
/// processes, runs, and unrelated team add/remove.
pub fn shard_of(team: &str, shards: usize) -> usize {
    let shards = shards.max(1);
    if shards == 1 {
        return 0;
    }
    let team_hash = fnv1a(team.as_bytes());
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for shard in 0..shards {
        let weight = splitmix64(team_hash ^ splitmix64(shard as u64 + 1));
        if shard == 0 || weight > best_weight {
            best = shard;
            best_weight = weight;
        }
    }
    best
}

/// FNV-1a over `bytes` — a stable, dependency-free string hash
/// (`std`'s `DefaultHasher` is seeded per process; rendezvous weights
/// must agree across processes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fan one incident out to every entry, shard-parallel, and collect the
/// per-team outcomes **sorted by team name** (the canonical order the
/// response and the master both consume — this is what makes the bytes
/// shard-count-independent). Single-incident wrapper over
/// [`dispatch_batch`] with the default monitoring plane and no skip set.
pub fn dispatch(
    entries: &[Arc<ModelEntry>],
    workload: &Workload,
    text: &str,
    time: cloudsim::SimTime,
    deadline: Option<Instant>,
    config: &FleetConfig,
) -> Vec<TeamOutcome> {
    dispatch_batch(
        entries,
        workload,
        &MonitoringConfig::default(),
        &[(text, time)],
        deadline,
        config,
        &[],
    )
    .pop()
    .expect("one input yields one outcome set")
}

/// Fan a *batch* of incidents out to every entry in one pass: one
/// `MonitoringSystem` build shared by every shard and every incident
/// (the severity-batching economics — same as one predict micro-batch),
/// one `predict_many_cached` call per Scout covering the whole batch.
/// Returns one outcome set per input, each **sorted by team name**.
///
/// `mon` is the monitoring plane configuration (the server threads its
/// live config through here so mid-stream data-set deprecation takes
/// effect on the very next dispatch). `skip` lists teams tripped out by
/// an open circuit breaker: they answer [`ScoutError::BreakerOpen`]
/// without running — no `catch_unwind`, no predict.
///
/// **Determinism:** batched predictions are bit-identical to what the
/// same incidents dispatched one at a time would produce (the
/// `predict_many` contract from PRs 2/7), so coalescing changes
/// throughput, never verdicts — the storm integration tests pin this.
pub fn dispatch_batch(
    entries: &[Arc<ModelEntry>],
    workload: &Workload,
    mon: &MonitoringConfig,
    inputs: &[(&str, cloudsim::SimTime)],
    deadline: Option<Instant>,
    config: &FleetConfig,
    skip: &[String],
) -> Vec<Vec<TeamOutcome>> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let shards = config.effective_shards();
    let mut groups: Vec<Vec<&Arc<ModelEntry>>> = vec![Vec::new(); shards];
    for entry in entries {
        groups[shard_of(&entry.team, shards)].push(entry);
    }
    let groups: Vec<(usize, Vec<&Arc<ModelEntry>>)> = groups
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .collect();
    obs::counter("fleet.dispatch.calls").inc();
    obs::counter("fleet.dispatch.fanouts").add(inputs.len() as u64);
    obs::observe("fleet.dispatch.shards", groups.len() as f64);
    obs::observe("fleet.dispatch.teams", entries.len() as f64);
    obs::observe("fleet.dispatch.batch", inputs.len() as f64);

    // One monitoring plane for the whole fan-out, exactly like one
    // batcher batch: it is read-only at predict time and shared by every
    // shard.
    let monitoring = MonitoringSystem::new(&workload.topology, &workload.faults, mon.clone());
    let ctx = obs::trace::capture();

    let per_shard: Vec<TeamBatchResults> =
        pool::Pool::global().parallel_map(&groups, |_, (shard, group)| {
            let started = Instant::now();
            let mut span = obs::span!("fleet.shard");
            // The pool re-enters the caller's trace context, but link the
            // request explicitly too: shard spans must stay attributable
            // even when dispatch is driven outside a request (benches).
            if let Some(ctx) = ctx.filter(|c| c.trace_id != 0) {
                span.add_link(ctx);
            }
            obs::observe("fleet.shard.teams", group.len() as f64);
            let results: TeamBatchResults = group
                .iter()
                .map(|entry| {
                    (
                        entry.team.clone(),
                        run_scout_batch(entry, &monitoring, inputs, deadline, config, skip),
                    )
                })
                .collect();
            obs::observe(
                &format!("fleet.shard.latency.{shard}"),
                started.elapsed().as_secs_f64() * 1e3,
            );
            results
        });

    let mut out: Vec<Vec<TeamOutcome>> = inputs
        .iter()
        .map(|_| Vec::with_capacity(entries.len()))
        .collect();
    for shard_results in per_shard {
        for (team, results) in shard_results {
            debug_assert_eq!(results.len(), inputs.len());
            for (i, result) in results.into_iter().enumerate() {
                out[i].push(TeamOutcome {
                    team: team.clone(),
                    result,
                });
            }
        }
    }
    for outcomes in &mut out {
        outcomes.sort_by(|a, b| a.team.cmp(&b.team));
    }
    out
}

/// Run one team's Scout over the whole input batch with isolation:
/// breaker skip, deadline re-check, injected faults, and panic
/// containment. Always returns exactly one result per input.
fn run_scout_batch(
    entry: &ModelEntry,
    monitoring: &MonitoringSystem<'_>,
    inputs: &[(&str, cloudsim::SimTime)],
    deadline: Option<Instant>,
    config: &FleetConfig,
    skip: &[String],
) -> Vec<Result<Answer, ScoutError>> {
    let n = inputs.len();
    if skip.iter().any(|t| t == &entry.team) {
        obs::counter("fleet.scout.breaker_open").inc();
        return vec![Err(ScoutError::BreakerOpen); n];
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        obs::counter("fleet.scout.deadline_expired").inc();
        return vec![Err(ScoutError::DeadlineExpired); n];
    }
    if config.fails(&entry.team) {
        obs::counter("fleet.scout.injected_failure").inc();
        return vec![Err(ScoutError::Injected); n];
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        entry
            .scout
            .predict_many_cached(inputs, monitoring, Some(&entry.feat_cache))
    }));
    match result {
        Ok(predictions) => {
            debug_assert_eq!(predictions.len(), n);
            predictions
                .into_iter()
                .map(|prediction| {
                    Ok(Answer {
                        team: entry.team.clone(),
                        model_version: entry.version,
                        prediction,
                    })
                })
                .collect()
        }
        Err(_) => {
            obs::counter("fleet.scout.panicked").inc();
            vec![Err(ScoutError::Panicked); n]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1, 2, 4, 7, 64] {
            for team in ["PhyNet", "Storage", "DNS", "PhyNet-13", "x"] {
                let s = shard_of(team, shards);
                assert!(s < shards, "{team}@{shards} -> {s}");
                assert_eq!(s, shard_of(team, shards), "unstable for {team}@{shards}");
            }
        }
        assert_eq!(shard_of("anything", 0), 0);
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn shard_of_spreads_a_fleet() {
        // 128 synthetic team names over 8 shards: every shard gets work
        // and no shard hoards the fleet.
        let shards = 8;
        let mut counts = vec![0usize; shards];
        let graph = cloudsim::DependencyGraph::synthetic_fleet(128);
        for team in graph.team_names() {
            counts[shard_of(team, shards)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
        assert!(
            counts.iter().all(|&c| c < 128 / 2),
            "hoarding shard: {counts:?}"
        );
    }

    #[test]
    fn rendezvous_is_monotone_under_shard_growth() {
        // Growing the shard count only ever moves teams to the *new*
        // shards — the rendezvous property that keeps warm caches warm.
        let graph = cloudsim::DependencyGraph::synthetic_fleet(64);
        for team in graph.team_names() {
            let before = shard_of(team, 4);
            let after = shard_of(team, 6);
            assert!(
                after == before || after >= 4,
                "{team}: moved {before} -> {after} among surviving shards"
            );
        }
    }

    #[test]
    fn config_fail_list_is_case_insensitive() {
        let config = FleetConfig {
            shards: 2,
            suggestions: 3,
            fail_teams: vec!["phynet".into()],
        };
        assert!(config.fails("PhyNet"));
        assert!(!config.fails("Storage"));
    }
}
