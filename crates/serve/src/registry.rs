//! Versioned model registry with atomic hot-swap, rollback, and pins.
//!
//! The paper keeps trained Scouts "in a highly available storage system
//! and serves them to the online component"; this is the in-process half
//! of that contract. Each team name maps to a slot holding the *current*
//! [`Arc<ModelEntry>`] — an immutable trained Scout plus a
//! process-unique version number — and the *previous* entry, retained so
//! the lifecycle controller can roll a bad promotion back without
//! retraining. Readers clone the `Arc` under a briefly-held lock and
//! then predict entirely lock-free, so a reload (which builds the new
//! Scouts *outside* the lock and swaps the map in one write) never
//! blocks an in-flight prediction, and every prediction is attributable
//! to exactly one version.
//!
//! Invariants:
//!
//! * versions are process-unique and never reused — a rollback restores
//!   the previous entry *with its original version number*, so audit
//!   records stay attributable;
//! * a **pinned** team rejects `register` and is skipped by `load_dir`
//!   (operator override: "stop auto-promoting this team"), but rollback
//!   still works — pinning must never trap a regressed model in place;
//! * each slot keeps exactly one step of history: rolling back twice
//!   without an intervening promotion is an error, not a loop.

use featcache::FeatCache;
use scout::Scout;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Default per-model feature-chunk cache budget (bytes).
pub const DEFAULT_FEAT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// One registered model: immutable once published.
#[derive(Debug)]
pub struct ModelEntry {
    /// Team the Scout answers for (registry key).
    pub team: String,
    /// Process-unique, monotonically increasing version.
    pub version: u64,
    /// Where the model came from (file path or "trained-at-startup").
    pub source: String,
    /// The trained Scout.
    pub scout: Scout,
    /// Feature-chunk cache shared by every predict against this entry.
    /// Fresh per registration, so hot-swapping a model (or its world)
    /// starts cold instead of serving stale chunks.
    pub feat_cache: FeatCache,
}

/// One team's slot: the serving model plus one step of history.
#[derive(Debug)]
struct Slot {
    current: std::sync::Arc<ModelEntry>,
    previous: Option<std::sync::Arc<ModelEntry>>,
}

/// A reload, registration, or rollback failure, with enough context to
/// act on.
#[derive(Debug)]
pub struct RegistryError(pub String);

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RegistryError {}

/// The registry: team name → current (and previous) model version.
#[derive(Debug)]
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Slot>>,
    pinned: RwLock<BTreeSet<String>>,
    next_version: AtomicU64,
    feat_cache_bytes: usize,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// An empty registry with the default per-model feature-cache budget.
    pub fn new() -> ModelRegistry {
        ModelRegistry::with_feat_cache_bytes(DEFAULT_FEAT_CACHE_BYTES)
    }

    /// An empty registry whose models each get a feature-chunk cache of
    /// `bytes` (0 disables caching entirely).
    pub fn with_feat_cache_bytes(bytes: usize) -> ModelRegistry {
        ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            pinned: RwLock::new(BTreeSet::new()),
            next_version: AtomicU64::new(1),
            feat_cache_bytes: bytes,
        }
    }

    /// The per-model feature-cache budget in bytes.
    pub fn feat_cache_bytes(&self) -> usize {
        self.feat_cache_bytes
    }

    fn entry(&self, team: &str, scout: Scout, source: &str) -> (u64, std::sync::Arc<ModelEntry>) {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = std::sync::Arc::new(ModelEntry {
            team: team.to_string(),
            version,
            source: source.to_string(),
            scout,
            feat_cache: FeatCache::new(self.feat_cache_bytes),
        });
        (version, entry)
    }

    fn publish_version_gauge(team: &str, version: u64) {
        obs::gauge(&format!("serve.model.version.{team}")).set(version as f64);
    }

    /// Publish `scout` for `team`, returning the version it was
    /// assigned. Replaces any previous version atomically, retaining the
    /// replaced entry for [`ModelRegistry::rollback`]; in-flight
    /// predictions against the old `Arc` are unaffected. Errs when the
    /// team is pinned.
    pub fn register(&self, team: &str, scout: Scout, source: &str) -> Result<u64, RegistryError> {
        if self.is_pinned(team) {
            return Err(RegistryError(format!(
                "team {team} is pinned; unpin before publishing a new model"
            )));
        }
        let (version, entry) = self.entry(team, scout, source);
        let mut models = self.models.write().unwrap();
        match models.get_mut(team) {
            Some(slot) => {
                slot.previous = Some(std::sync::Arc::clone(&slot.current));
                slot.current = entry;
            }
            None => {
                models.insert(
                    team.to_string(),
                    Slot {
                        current: entry,
                        previous: None,
                    },
                );
            }
        }
        drop(models);
        obs::counter("serve.models.registered").inc();
        Self::publish_version_gauge(team, version);
        Ok(version)
    }

    /// Restore the previous entry for `team` as current (keeping its
    /// original version number) and clear the history slot. Works on
    /// pinned teams — a pin stops promotions, never recovery. Errs when
    /// the team is unknown or has no previous version.
    pub fn rollback(&self, team: &str) -> Result<u64, RegistryError> {
        let mut models = self.models.write().unwrap();
        let slot = models
            .get_mut(team)
            .ok_or_else(|| RegistryError(format!("unknown team {team}")))?;
        let prior = slot
            .previous
            .take()
            .ok_or_else(|| RegistryError(format!("no previous version for team {team}")))?;
        let version = prior.version;
        slot.current = prior;
        drop(models);
        obs::counter("serve.models.rollbacks").inc();
        obs::flight().alert("rollback", &format!("team={team} restored v{version}"));
        Self::publish_version_gauge(team, version);
        Ok(version)
    }

    /// Pin `team`: reject `register` and skip it in `load_dir` until
    /// unpinned. Pinning an unknown team is allowed (it blocks the
    /// initial publish too).
    pub fn pin(&self, team: &str) {
        self.pinned.write().unwrap().insert(team.to_string());
    }

    /// Remove a pin. No-op if not pinned.
    pub fn unpin(&self, team: &str) {
        self.pinned.write().unwrap().remove(team);
    }

    /// Is `team` pinned?
    pub fn is_pinned(&self, team: &str) -> bool {
        self.pinned.read().unwrap().contains(team)
    }

    /// The current model for `team` (exact match, then ASCII
    /// case-insensitive).
    pub fn get(&self, team: &str) -> Option<std::sync::Arc<ModelEntry>> {
        let models = self.models.read().unwrap();
        if let Some(slot) = models.get(team) {
            return Some(std::sync::Arc::clone(&slot.current));
        }
        models
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(team))
            .map(|(_, slot)| std::sync::Arc::clone(&slot.current))
    }

    /// The current version number for `team`, if registered.
    pub fn version_of(&self, team: &str) -> Option<u64> {
        self.get(team).map(|e| e.version)
    }

    /// Registered team names, sorted.
    pub fn teams(&self) -> Vec<String> {
        self.models.read().unwrap().keys().cloned().collect()
    }

    /// Current entries, sorted by team.
    pub fn snapshot(&self) -> Vec<std::sync::Arc<ModelEntry>> {
        self.models
            .read()
            .unwrap()
            .values()
            .map(|slot| std::sync::Arc::clone(&slot.current))
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap().len()
    }

    /// Is the registry empty (server not ready)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load every `*.scout` file in `dir` (team name = file stem) and
    /// publish them all in one atomic swap, skipping pinned teams. On
    /// any failure the registry is left exactly as it was — a bad reload
    /// never degrades serving — and the error names the offending path
    /// (and, for format errors, the line; see `ml::persist`).
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<(String, u64)>, RegistryError> {
        let _span = obs::span!("serve.registry.load_dir");
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError(format!("cannot read model dir {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "scout"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(RegistryError(format!(
                "no *.scout files in {}",
                dir.display()
            )));
        }
        // Load (the expensive part) entirely outside the lock.
        let mut loaded: Vec<(String, Scout, String)> = Vec::new();
        for path in &paths {
            let team = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| {
                    RegistryError(format!("non-UTF-8 model file name {}", path.display()))
                })?
                .to_string();
            if self.is_pinned(&team) {
                obs::counter("serve.models.reload_skipped_pinned").inc();
                continue;
            }
            let scout = Scout::load(path)
                .map_err(|e| RegistryError(format!("cannot load {}: {e}", path.display())))?;
            loaded.push((team, scout, path.display().to_string()));
        }
        // Publish in one write-lock window.
        let mut published = Vec::with_capacity(loaded.len());
        {
            let mut models = self.models.write().unwrap();
            for (team, scout, source) in loaded {
                let version = self.next_version.fetch_add(1, Ordering::Relaxed);
                published.push((team.clone(), version));
                let entry = std::sync::Arc::new(ModelEntry {
                    team: team.clone(),
                    version,
                    source,
                    scout,
                    feat_cache: FeatCache::new(self.feat_cache_bytes),
                });
                match models.get_mut(&team) {
                    Some(slot) => {
                        slot.previous = Some(std::sync::Arc::clone(&slot.current));
                        slot.current = entry;
                    }
                    None => {
                        models.insert(
                            team,
                            Slot {
                                current: entry,
                                previous: None,
                            },
                        );
                    }
                }
            }
        }
        for (team, version) in &published {
            Self::publish_version_gauge(team, *version);
        }
        obs::counter("serve.models.reloads").inc();
        Ok(published)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_reports_not_ready() {
        let r = ModelRegistry::new();
        assert!(r.is_empty());
        assert!(r.get("PhyNet").is_none());
        assert!(r.teams().is_empty());
        assert!(r.version_of("PhyNet").is_none());
    }

    #[test]
    fn load_dir_on_missing_dir_names_the_path() {
        let r = ModelRegistry::new();
        let e = r
            .load_dir(Path::new("/nonexistent/scout-models"))
            .unwrap_err();
        assert!(e.0.contains("/nonexistent/scout-models"), "{e}");
    }

    #[test]
    fn load_dir_on_corrupt_file_names_the_path_and_keeps_registry() {
        let dir = std::env::temp_dir().join("serve-registry-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("PhyNet.scout");
        std::fs::write(&bad, "not a model\n").unwrap();
        let r = ModelRegistry::new();
        let e = r.load_dir(&dir).unwrap_err();
        assert!(e.0.contains("PhyNet.scout"), "{e}");
        assert!(r.is_empty(), "failed reload must not publish anything");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_without_history_is_an_error() {
        let r = ModelRegistry::new();
        assert!(r.rollback("PhyNet").is_err());
    }

    #[test]
    fn pinned_team_rejects_register() {
        let r = ModelRegistry::new();
        r.pin("PhyNet");
        assert!(r.is_pinned("PhyNet"));
        r.unpin("PhyNet");
        assert!(!r.is_pinned("PhyNet"));
    }
}
