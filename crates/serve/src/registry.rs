//! Versioned model registry with atomic hot-swap, a rollback timeline,
//! and pins.
//!
//! The paper keeps trained Scouts "in a highly available storage system
//! and serves them to the online component"; this is the in-process half
//! of that contract. Each team name maps to a slot holding the *current*
//! [`Arc<ModelEntry>`] — an immutable trained Scout plus a
//! process-unique version number — and a bounded stack of superseded
//! entries, retained so a bad promotion (or several in a row) can be
//! rolled back to **any** still-held version without retraining.
//! Readers clone the `Arc` under a briefly-held lock and then predict
//! entirely lock-free, so a reload (which builds the new Scouts
//! *outside* the lock and swaps the map in one write) never blocks an
//! in-flight prediction, and every prediction is attributable to
//! exactly one version.
//!
//! Every mutation is reported to the attached [`RegistryJournal`]
//! *inside* the write-lock window, so the journal (the WAL, in
//! production) observes mutations in exactly the order they took
//! effect. The journal is how the promotion timeline outlives the
//! process: the in-memory history stack holds at most
//! [`wal::HISTORY_CAP`] live entries, while the log keeps the full
//! forensic record.
//!
//! Invariants:
//!
//! * versions are process-unique and never reused — a rollback restores
//!   a prior entry *with its original version number*, so audit records
//!   stay attributable (after a crash, [`ModelRegistry::resume_versions_from`]
//!   re-arms the counter above everything the log ever assigned);
//! * a **pinned** team rejects `register` and is skipped by `load_dir`
//!   (operator override: "stop auto-promoting this team"), but rollback
//!   still works — pinning must never trap a regressed model in place;
//! * rolling back to version `v` discards every entry newer than `v`:
//!   the timeline never forks.

use featcache::FeatCache;
use scout::Scout;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use wal::HISTORY_CAP;

/// Default per-model feature-chunk cache budget (bytes).
pub const DEFAULT_FEAT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// One registered model: immutable once published.
#[derive(Debug)]
pub struct ModelEntry {
    /// Team the Scout answers for (registry key).
    pub team: String,
    /// Process-unique, monotonically increasing version.
    pub version: u64,
    /// Where the model came from (file path or "trained-at-startup").
    pub source: String,
    /// The trained Scout.
    pub scout: Scout,
    /// Feature-chunk cache shared by every predict against this entry.
    /// Fresh per registration, so hot-swapping a model (or its world)
    /// starts cold instead of serving stale chunks.
    pub feat_cache: FeatCache,
}

/// One registry mutation, reported to the journal in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryChange {
    /// A model was published (register or reload).
    Promoted {
        /// Registry key.
        team: String,
        /// Assigned version.
        version: u64,
        /// Where the model came from.
        source: String,
    },
    /// A slot was rolled back to a prior version.
    RolledBack {
        /// Registry key.
        team: String,
        /// The demoted version.
        from: u64,
        /// The restored version.
        to: u64,
    },
    /// A pin was set or cleared.
    Pinned {
        /// Registry key.
        team: String,
        /// `true` = pinned.
        pinned: bool,
    },
    /// The bulk-reload epoch advanced.
    EpochChanged {
        /// The new epoch.
        epoch: u64,
    },
}

/// Observer of registry mutations (the WAL producer, in production).
/// Called with the registry's write lock held — implementations must be
/// quick and must not call back into the registry.
pub trait RegistryJournal: Send + Sync {
    /// One mutation committed.
    fn on_change(&self, change: &RegistryChange);
}

/// One team's slot: the serving model plus the rollback stack.
#[derive(Debug)]
struct Slot {
    current: Arc<ModelEntry>,
    /// Superseded entries, oldest first, at most [`HISTORY_CAP`].
    history: Vec<Arc<ModelEntry>>,
}

impl Slot {
    fn supersede(&mut self, entry: Arc<ModelEntry>) {
        let prior = std::mem::replace(&mut self.current, entry);
        self.history.push(prior);
        if self.history.len() > HISTORY_CAP {
            self.history.remove(0);
        }
    }
}

/// A reload, registration, or rollback failure, with enough context to
/// act on.
#[derive(Debug)]
pub struct RegistryError(pub String);

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RegistryError {}

/// The registry: team name → current model version plus its rollback
/// timeline.
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Slot>>,
    pinned: RwLock<BTreeSet<String>>,
    next_version: AtomicU64,
    epoch: AtomicU64,
    feat_cache_bytes: usize,
    journal: RwLock<Option<Arc<dyn RegistryJournal>>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("teams", &self.teams())
            .field("next_version", &self.next_version.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// An empty registry with the default per-model feature-cache budget.
    pub fn new() -> ModelRegistry {
        ModelRegistry::with_feat_cache_bytes(DEFAULT_FEAT_CACHE_BYTES)
    }

    /// An empty registry whose models each get a feature-chunk cache of
    /// `bytes` (0 disables caching entirely).
    pub fn with_feat_cache_bytes(bytes: usize) -> ModelRegistry {
        ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            pinned: RwLock::new(BTreeSet::new()),
            next_version: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            feat_cache_bytes: bytes,
            journal: RwLock::new(None),
        }
    }

    /// The per-model feature-cache budget in bytes.
    pub fn feat_cache_bytes(&self) -> usize {
        self.feat_cache_bytes
    }

    /// Attach the mutation journal. Mutations from this point on are
    /// reported in commit order.
    pub fn set_journal(&self, journal: Arc<dyn RegistryJournal>) {
        *self.journal.write().unwrap() = Some(journal);
    }

    fn journal(&self, change: RegistryChange) {
        if let Some(j) = self.journal.read().unwrap().as_ref() {
            j.on_change(&change);
        }
    }

    /// Ensure future versions are assigned strictly above `next` — the
    /// crash-recovery hook that keeps versions process-unique *across*
    /// processes sharing one log.
    pub fn resume_versions_from(&self, next: u64) {
        self.next_version.fetch_max(next, Ordering::Relaxed);
    }

    /// The current bulk-reload epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Restore the epoch counter (crash recovery; not journaled).
    pub fn resume_epoch_from(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    fn entry(&self, team: &str, scout: Scout, source: &str) -> (u64, Arc<ModelEntry>) {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(ModelEntry {
            team: team.to_string(),
            version,
            source: source.to_string(),
            scout,
            feat_cache: FeatCache::new(self.feat_cache_bytes),
        });
        (version, entry)
    }

    fn publish_version_gauge(team: &str, version: u64) {
        obs::gauge(&format!("serve.model.version.{team}")).set(version as f64);
    }

    /// Publish `scout` for `team`, returning the version it was
    /// assigned. Replaces any previous version atomically, pushing the
    /// replaced entry onto the rollback timeline; in-flight predictions
    /// against the old `Arc` are unaffected. Errs when the team is
    /// pinned.
    pub fn register(&self, team: &str, scout: Scout, source: &str) -> Result<u64, RegistryError> {
        if self.is_pinned(team) {
            return Err(RegistryError(format!(
                "team {team} is pinned; unpin before publishing a new model"
            )));
        }
        let (version, entry) = self.entry(team, scout, source);
        let mut models = self.models.write().unwrap();
        match models.get_mut(team) {
            Some(slot) => slot.supersede(entry),
            None => {
                models.insert(
                    team.to_string(),
                    Slot {
                        current: entry,
                        history: Vec::new(),
                    },
                );
            }
        }
        self.journal(RegistryChange::Promoted {
            team: team.to_string(),
            version,
            source: source.to_string(),
        });
        drop(models);
        obs::counter("serve.models.registered").inc();
        Self::publish_version_gauge(team, version);
        Ok(version)
    }

    /// Roll `team` back one step: restore the most recently superseded
    /// entry (keeping its original version number). Works on pinned
    /// teams — a pin stops promotions, never recovery. Errs when the
    /// team is unknown or has no history.
    pub fn rollback(&self, team: &str) -> Result<u64, RegistryError> {
        self.rollback_to(team, None)
    }

    /// Roll `team` back to `version` (or one step with `None`),
    /// discarding every entry newer than the target. Errs when the team
    /// is unknown, the timeline is empty, or `version` is no longer in
    /// the retained timeline (older than the last [`HISTORY_CAP`]
    /// promotions — the full history lives in the journal, but only
    /// retained entries still hold a loaded model).
    pub fn rollback_to(&self, team: &str, version: Option<u64>) -> Result<u64, RegistryError> {
        let mut models = self.models.write().unwrap();
        let slot = models
            .get_mut(team)
            .ok_or_else(|| RegistryError(format!("unknown team {team}")))?;
        if slot.history.is_empty() {
            return Err(RegistryError(format!(
                "no previous version for team {team}"
            )));
        }
        let pos = match version {
            None => slot.history.len() - 1,
            Some(v) => slot
                .history
                .iter()
                .rposition(|e| e.version == v)
                .ok_or_else(|| {
                    let held: Vec<u64> = slot.history.iter().map(|e| e.version).collect();
                    RegistryError(format!(
                        "version {v} is not in team {team}'s retained timeline {held:?}"
                    ))
                })?,
        };
        let restored = slot.history[pos].clone();
        slot.history.truncate(pos);
        let from = std::mem::replace(&mut slot.current, restored).version;
        let to = slot.current.version;
        self.journal(RegistryChange::RolledBack {
            team: team.to_string(),
            from,
            to,
        });
        drop(models);
        obs::counter("serve.models.rollbacks").inc();
        obs::flight().alert(
            "rollback",
            &format!("team={team} restored v{to} from v{from}"),
        );
        Self::publish_version_gauge(team, to);
        Ok(to)
    }

    /// Versions in `team`'s retained rollback timeline, oldest first
    /// (not including the current version).
    pub fn history_of(&self, team: &str) -> Vec<u64> {
        self.models
            .read()
            .unwrap()
            .get(team)
            .map(|slot| slot.history.iter().map(|e| e.version).collect())
            .unwrap_or_default()
    }

    /// Pin `team`: reject `register` and skip it in `load_dir` until
    /// unpinned. Pinning an unknown team is allowed (it blocks the
    /// initial publish too).
    pub fn pin(&self, team: &str) {
        if self.pinned.write().unwrap().insert(team.to_string()) {
            self.journal(RegistryChange::Pinned {
                team: team.to_string(),
                pinned: true,
            });
        }
    }

    /// Remove a pin. No-op if not pinned.
    pub fn unpin(&self, team: &str) {
        if self.pinned.write().unwrap().remove(team) {
            self.journal(RegistryChange::Pinned {
                team: team.to_string(),
                pinned: false,
            });
        }
    }

    /// Is `team` pinned?
    pub fn is_pinned(&self, team: &str) -> bool {
        self.pinned.read().unwrap().contains(team)
    }

    /// The current model for `team` (exact match, then ASCII
    /// case-insensitive).
    pub fn get(&self, team: &str) -> Option<Arc<ModelEntry>> {
        let models = self.models.read().unwrap();
        if let Some(slot) = models.get(team) {
            return Some(Arc::clone(&slot.current));
        }
        models
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(team))
            .map(|(_, slot)| Arc::clone(&slot.current))
    }

    /// The current version number for `team`, if registered.
    pub fn version_of(&self, team: &str) -> Option<u64> {
        self.get(team).map(|e| e.version)
    }

    /// Registered team names, sorted.
    pub fn teams(&self) -> Vec<String> {
        self.models.read().unwrap().keys().cloned().collect()
    }

    /// Current entries, sorted by team.
    pub fn snapshot(&self) -> Vec<Arc<ModelEntry>> {
        self.models
            .read()
            .unwrap()
            .values()
            .map(|slot| Arc::clone(&slot.current))
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap().len()
    }

    /// Is the registry empty (server not ready)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load every `*.scout` file in `dir` (team name = file stem) and
    /// publish them all in one atomic swap, skipping pinned teams. On
    /// any failure the registry is left exactly as it was — a bad reload
    /// never degrades serving — and the error names the offending path
    /// (and, for format errors, the line; see `ml::persist`). Each
    /// successful call advances the reload epoch.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<(String, u64)>, RegistryError> {
        let _span = obs::span!("serve.registry.load_dir");
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError(format!("cannot read model dir {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "scout"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(RegistryError(format!(
                "no *.scout files in {}",
                dir.display()
            )));
        }
        // Load (the expensive part) entirely outside the lock.
        let mut loaded: Vec<(String, Scout, String)> = Vec::new();
        for path in &paths {
            let team = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| {
                    RegistryError(format!("non-UTF-8 model file name {}", path.display()))
                })?
                .to_string();
            if self.is_pinned(&team) {
                obs::counter("serve.models.reload_skipped_pinned").inc();
                continue;
            }
            let scout = Scout::load(path)
                .map_err(|e| RegistryError(format!("cannot load {}: {e}", path.display())))?;
            loaded.push((team, scout, path.display().to_string()));
        }
        // Publish in one write-lock window.
        let mut published = Vec::with_capacity(loaded.len());
        {
            let mut models = self.models.write().unwrap();
            for (team, scout, source) in loaded {
                let version = self.next_version.fetch_add(1, Ordering::Relaxed);
                published.push((team.clone(), version));
                let entry = Arc::new(ModelEntry {
                    team: team.clone(),
                    version,
                    source: source.clone(),
                    scout,
                    feat_cache: FeatCache::new(self.feat_cache_bytes),
                });
                match models.get_mut(&team) {
                    Some(slot) => slot.supersede(entry),
                    None => {
                        models.insert(
                            team.clone(),
                            Slot {
                                current: entry,
                                history: Vec::new(),
                            },
                        );
                    }
                }
                self.journal(RegistryChange::Promoted {
                    team,
                    version,
                    source,
                });
            }
            let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            self.journal(RegistryChange::EpochChanged { epoch });
        }
        for (team, version) in &published {
            Self::publish_version_gauge(team, *version);
        }
        obs::counter("serve.models.reloads").inc();
        Ok(published)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn empty_registry_reports_not_ready() {
        let r = ModelRegistry::new();
        assert!(r.is_empty());
        assert!(r.get("PhyNet").is_none());
        assert!(r.teams().is_empty());
        assert!(r.version_of("PhyNet").is_none());
        assert!(r.history_of("PhyNet").is_empty());
    }

    #[test]
    fn load_dir_on_missing_dir_names_the_path() {
        let r = ModelRegistry::new();
        let e = r
            .load_dir(Path::new("/nonexistent/scout-models"))
            .unwrap_err();
        assert!(e.0.contains("/nonexistent/scout-models"), "{e}");
    }

    #[test]
    fn load_dir_on_corrupt_file_names_the_path_and_keeps_registry() {
        let dir = std::env::temp_dir().join("serve-registry-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("PhyNet.scout");
        std::fs::write(&bad, "not a model\n").unwrap();
        let r = ModelRegistry::new();
        let e = r.load_dir(&dir).unwrap_err();
        assert!(e.0.contains("PhyNet.scout"), "{e}");
        assert!(r.is_empty(), "failed reload must not publish anything");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_without_history_is_an_error() {
        let r = ModelRegistry::new();
        assert!(r.rollback("PhyNet").is_err());
    }

    #[test]
    fn rollback_to_unretained_version_is_an_error_naming_the_timeline() {
        let r = ModelRegistry::new();
        assert!(r.rollback_to("PhyNet", Some(3)).is_err());
    }

    #[test]
    fn pinned_team_rejects_register() {
        let r = ModelRegistry::new();
        r.pin("PhyNet");
        assert!(r.is_pinned("PhyNet"));
        r.unpin("PhyNet");
        assert!(!r.is_pinned("PhyNet"));
    }

    #[test]
    fn version_resume_moves_only_forward() {
        let r = ModelRegistry::new();
        r.resume_versions_from(10);
        r.resume_versions_from(5);
        assert_eq!(r.next_version.load(Ordering::Relaxed), 10);
        r.resume_epoch_from(3);
        assert_eq!(r.epoch(), 3);
    }

    #[derive(Default)]
    struct Recorder(Mutex<Vec<RegistryChange>>);

    impl RegistryJournal for Recorder {
        fn on_change(&self, change: &RegistryChange) {
            self.0.lock().unwrap().push(change.clone());
        }
    }

    #[test]
    fn pin_changes_are_journaled_once() {
        let r = ModelRegistry::new();
        let rec = Arc::new(Recorder::default());
        r.set_journal(Arc::clone(&rec) as Arc<dyn RegistryJournal>);
        r.pin("PhyNet");
        r.pin("PhyNet"); // no-op: already pinned
        r.unpin("PhyNet");
        r.unpin("PhyNet"); // no-op
        let changes = rec.0.lock().unwrap();
        assert_eq!(
            *changes,
            vec![
                RegistryChange::Pinned {
                    team: "PhyNet".into(),
                    pinned: true
                },
                RegistryChange::Pinned {
                    team: "PhyNet".into(),
                    pinned: false
                },
            ]
        );
    }
}
