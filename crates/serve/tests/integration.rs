//! End-to-end tests against a live server on an ephemeral port: protocol
//! basics, predict/route round-trips, deterministic load-shedding and
//! deadlines, and the hot-swap guarantee (concurrent predicts during a
//! reload all succeed and each is attributable to exactly one version).

use cloudsim::{SimDuration, Team};
use incident::{Workload, WorkloadConfig};
use ml::forest::ForestConfig;
use monitoring::{MonitoringConfig, MonitoringSystem};
use obs::json::Value;
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};
use serve::{Client, Engine, ModelRegistry, ServeConfig, Server};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A small world: enough incidents to train on, fast enough for tests.
fn small_workload() -> Arc<Workload> {
    static WORLD: OnceLock<Arc<Workload>> = OnceLock::new();
    WORLD
        .get_or_init(|| {
            let mut config = WorkloadConfig {
                seed: 7,
                ..WorkloadConfig::default()
            };
            config.faults.faults_per_day = 2.0;
            config.faults.horizon = SimDuration::days(20);
            Arc::new(Workload::generate(config))
        })
        .clone()
}

/// One PhyNet Scout trained on the small world, cached as model text so
/// every test can cheaply mint its own `Scout` (or write a model file).
fn trained_model_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let world = small_workload();
        let mon =
            MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
        let examples: Vec<Example> = world
            .incidents
            .iter()
            .map(|i| Example::new(i.text(), i.created_at, i.owner == Team::PhyNet))
            .collect();
        let config = ScoutConfig::phynet();
        let build = ScoutBuildConfig {
            forest: ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
            cluster_train_cap: 10,
            ..ScoutBuildConfig::default()
        };
        let corpus = Scout::prepare(&config, &build, &examples, &mon);
        let train = corpus.trainable_indices();
        let scout = Scout::train_prepared(config, build, &corpus, &train, &mon);
        scout.to_text()
    })
}

fn test_scout() -> Scout {
    Scout::from_text(trained_model_text()).expect("cached model text round-trips")
}

/// A server with one registered PhyNet model and the given config.
fn start_server(config: ServeConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register("PhyNet", test_scout(), "test")
        .expect("register test model");
    let engine = Engine::new(registry, small_workload());
    Server::start(engine, "127.0.0.1:0", config).expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

const INCIDENT: &str = r#"{"text":"Switch agg-3 in c1.dc1 reporting CRC errors and packet loss"}"#;

#[test]
fn health_ready_metrics_and_protocol_basics() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_text().contains("\"ok\""));

    let ready = client.get("/readyz").unwrap();
    assert_eq!(ready.status, 200);
    assert!(ready.body_text().contains("PhyNet"));

    // Keep-alive: the same connection answers multiple requests.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);

    assert_eq!(client.get("/no/such/endpoint").unwrap().status, 404);
    assert_eq!(
        client
            .request("DELETE", "/healthz", &[], b"")
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client
            .post_json("/v1/route", "this is not json")
            .unwrap()
            .status,
        400
    );
    assert_eq!(client.post_json("/v1/route", "{}").unwrap().status, 400);
}

#[test]
fn readyz_is_503_with_no_models() {
    let engine = Engine::new(Arc::new(ModelRegistry::new()), small_workload());
    let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = connect(&server);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_eq!(client.get("/readyz").unwrap().status, 503);
}

#[test]
fn predict_round_trip_and_unknown_team() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);

    let resp = client
        .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let value = Value::parse(&resp.body_text()).expect("JSON body");
    assert_eq!(value.get("team").and_then(Value::as_str), Some("PhyNet"));
    assert!(value.get("verdict").and_then(Value::as_str).is_some());
    let confidence = value.get("confidence").and_then(Value::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&confidence));
    assert_eq!(
        value.get("model_version").and_then(Value::as_f64),
        Some(1.0)
    );

    // Team lookup is case-insensitive…
    assert_eq!(
        client
            .post_json("/v1/scouts/phynet/predict", INCIDENT)
            .unwrap()
            .status,
        200
    );
    // …but an unregistered team is a 404.
    assert_eq!(
        client
            .post_json("/v1/scouts/Atlantis/predict", INCIDENT)
            .unwrap()
            .status,
        404
    );
}

#[test]
fn batched_responses_match_sequential_ones() {
    // A batch-friendly config and a burst of identical concurrent
    // requests: every response must be byte-identical to the sequential
    // answer (the determinism-under-batching contract).
    let server = start_server(ServeConfig {
        batch_size: 8,
        batch_deadline: Duration::from_millis(20),
        ..ServeConfig::default()
    });
    let sequential = connect(&server)
        .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
        .unwrap();
    assert_eq!(sequential.status, 200);
    // Responses differ only in the server-assigned incident id; the
    // prediction payload must be bit-identical.
    let strip_incident = |body: &str| -> String {
        let v = Value::parse(body).expect("JSON body");
        assert!(v.get("incident").and_then(Value::as_f64).is_some());
        let mut obj = obs::json::Obj::new();
        for key in [
            "team",
            "model_version",
            "verdict",
            "confidence",
            "model",
            "components",
            "evidence",
        ] {
            obj = obj.raw(key, &format!("{:?}", v.get(key).expect(key)));
        }
        obj.finish()
    };
    let sequential_answer = strip_incident(&sequential.body_text());

    let addr = server.addr().to_string();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client
                    .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            strip_incident(&resp.body_text()),
            sequential_answer,
            "batched answer diverged"
        );
    }
}

#[test]
fn route_aggregates_scout_answers() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);
    let resp = client.post_json("/v1/route", INCIDENT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let value = Value::parse(&resp.body_text()).expect("JSON body");
    let decision = value.get("decision").and_then(Value::as_str).unwrap();
    assert!(decision == "send_to" || decision == "fallback");
    let answers = value.get("answers").and_then(Value::as_arr).unwrap();
    assert_eq!(answers.len(), 1, "one registered Scout, one answer");
    assert_eq!(
        answers[0].get("team").and_then(Value::as_str),
        Some("PhyNet")
    );
}

#[test]
fn over_capacity_requests_are_shed_with_retry_after() {
    // queue_cap 2 and a long batch window: the first two requests sit in
    // the open batch holding both permits, so the third is shed — a
    // deterministic 503, not a timing accident.
    let server = start_server(ServeConfig {
        batch_size: 4,
        batch_deadline: Duration::from_millis(1500),
        queue_cap: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr().to_string();
    let occupiers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client
                    .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
                    .unwrap()
            })
        })
        .collect();
    // Let both occupiers enter the batch window.
    std::thread::sleep(Duration::from_millis(400));

    let shed = connect(&server)
        .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
        .unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body_text());
    // Retry-After adapts to queue depth: with every permit held the
    // hint must back off beyond the idle-queue baseline of 1s, and stay
    // within the clamp.
    let retry: u64 = shed
        .header("Retry-After")
        .expect("shed response carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!((2..=8).contains(&retry), "saturated queue hint: {retry}");

    for h in occupiers {
        assert_eq!(h.join().unwrap().status, 200, "occupiers must complete");
    }
}

#[test]
fn expired_deadline_is_504() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);
    let resp = client
        .request(
            "POST",
            "/v1/scouts/PhyNet/predict",
            &[("X-Deadline-Ms", "0")],
            INCIDENT.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_text());
    // A generous deadline is honoured.
    let resp = client
        .request(
            "POST",
            "/v1/scouts/PhyNet/predict",
            &[("X-Deadline-Ms", "30000")],
            INCIDENT.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
}

#[test]
fn shutdown_drains_partial_batch() {
    // A huge batch size and a long window: requests sit in a partially
    // filled batch that will not fill or time out on its own. Shutting
    // the server down mid-window must answer every one of them — 200 from
    // the drained batch or 503 shed — promptly, never dropping a request
    // or waiting out the full window.
    let server = start_server(ServeConfig {
        batch_size: 32,
        batch_deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let addr = server.addr().to_string();
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client
                    .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
                    .unwrap()
            })
        })
        .collect();
    // Let all three land in the open batch window.
    std::thread::sleep(Duration::from_millis(300));

    let started = std::time::Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "shutdown must not wait out the 5s batch window (took {elapsed:?})"
    );

    for h in clients {
        let resp = h.join().unwrap();
        assert!(
            resp.status == 200 || resp.status == 503,
            "queued request must be answered or shed, got {}: {}",
            resp.status,
            resp.body_text()
        );
    }
}

#[test]
fn reload_is_409_without_model_dir() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);
    assert_eq!(
        client.post_json("/v1/models/reload", "{}").unwrap().status,
        409
    );
}

#[test]
fn hot_swap_under_concurrent_predicts() {
    // Server whose models come from a directory, so reload works.
    let dir = std::env::temp_dir().join(format!("serve-hotswap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("PhyNet.scout"), trained_model_text()).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let initial = registry.load_dir(&dir).expect("initial load");
    assert_eq!(initial.len(), 1);
    let v1 = initial[0].1;
    let engine = Engine::new(registry, small_workload()).with_model_dir(dir.clone());
    let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let version_of = |resp: &serve::ClientResponse| -> u64 {
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        Value::parse(&resp.body_text())
            .and_then(|v| v.get("model_version").and_then(Value::as_f64))
            .expect("model_version field") as u64
    };

    // Phase 1: before the reload, everything is v1.
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..3 {
        let resp = client
            .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
            .unwrap();
        assert_eq!(version_of(&resp), v1);
    }

    // Phase 2: predicts race the reload. Every one must succeed and be
    // attributable to exactly one of the two versions.
    let predictors: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                (0..6)
                    .map(|_| {
                        client
                            .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let reload = client.post_json("/v1/models/reload", "{}").unwrap();
    assert_eq!(reload.status, 200, "{}", reload.body_text());
    let v2 = Value::parse(&reload.body_text())
        .and_then(|v| {
            v.get("reloaded")
                .and_then(Value::as_arr)
                .and_then(|arr| arr[0].get("version").and_then(Value::as_f64))
        })
        .expect("reloaded version") as u64;
    assert!(v2 > v1);

    let mut seen = std::collections::BTreeSet::new();
    for h in predictors {
        for resp in h.join().unwrap() {
            let v = version_of(&resp);
            assert!(
                v == v1 || v == v2,
                "response attributed to unknown version {v} (expected {v1} or {v2})"
            );
            seen.insert(v);
        }
    }
    assert!(!seen.is_empty());

    // Phase 3: after the reload, everything is v2.
    for _ in 0..3 {
        let resp = client
            .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
            .unwrap();
        assert_eq!(version_of(&resp), v2);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn readyz_reports_model_versions() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);
    let ready = client.get("/readyz").unwrap();
    assert_eq!(ready.status, 200);
    let value = Value::parse(&ready.body_text()).expect("JSON body");
    let models = value.get("models").and_then(Value::as_arr).unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(
        models[0].get("team").and_then(Value::as_str),
        Some("PhyNet")
    );
    assert!(models[0].get("version").and_then(Value::as_f64).unwrap() >= 1.0);
}

#[test]
fn feedback_round_trip_dedup_and_hook() {
    use serve::{FeedbackEvent, FeedbackHook};
    use std::sync::Mutex;

    struct Capture(Mutex<Vec<FeedbackEvent>>);
    impl FeedbackHook for Capture {
        fn on_feedback(&self, event: FeedbackEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    let hook = Arc::new(Capture(Mutex::new(Vec::new())));
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register("PhyNet", test_scout(), "test")
        .expect("register test model");
    let engine = Engine::new(registry, small_workload())
        .with_feedback_hook(Arc::clone(&hook) as Arc<dyn FeedbackHook>);
    let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = connect(&server);

    // A served prediction carries its incident id.
    let resp = client
        .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let value = Value::parse(&resp.body_text()).unwrap();
    let incident = value.get("incident").and_then(Value::as_f64).unwrap() as u64;
    assert!(incident >= 1);
    let predicted_responsible = value.get("verdict").and_then(Value::as_str) == Some("responsible");

    // Ground truth arrives: PhyNet resolved it.
    let fb = client
        .post_json(
            "/v1/feedback",
            &format!(r#"{{"incident":{incident},"team":"PhyNet"}}"#),
        )
        .unwrap();
    assert_eq!(fb.status, 200, "{}", fb.body_text());
    let fbv = Value::parse(&fb.body_text()).unwrap();
    assert_eq!(fbv.get("label_responsible"), Some(&Value::Bool(true)));

    // The hook saw exactly that labeled event.
    {
        let events = hook.0.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].incident, incident);
        assert_eq!(events[0].team, "PhyNet");
        assert!(events[0].label);
        assert_eq!(events[0].predicted, predicted_responsible);
        assert_eq!(events[0].model_version, 1);
    }

    // Second report for the same incident: 409, hook not called again.
    let dup = client
        .post_json(
            "/v1/feedback",
            &format!(r#"{{"incident":{incident},"team":"Storage"}}"#),
        )
        .unwrap();
    assert_eq!(dup.status, 409, "{}", dup.body_text());
    assert_eq!(hook.0.lock().unwrap().len(), 1);

    // Unknown incident: 404. Malformed: 400.
    assert_eq!(
        client
            .post_json("/v1/feedback", r#"{"incident":999999,"team":"PhyNet"}"#)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client
            .post_json("/v1/feedback", r#"{"team":"PhyNet"}"#)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .post_json("/v1/feedback", r#"{"incident":1}"#)
            .unwrap()
            .status,
        400
    );
}

#[test]
fn rollback_restores_prior_version_and_serving_follows() {
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry
        .register("PhyNet", test_scout(), "first")
        .expect("register v1");
    let v2 = registry
        .register("PhyNet", test_scout(), "second")
        .expect("register v2");
    assert!(v2 > v1);
    assert_eq!(registry.version_of("PhyNet"), Some(v2));

    let engine = Engine::new(Arc::clone(&registry), small_workload());
    let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = connect(&server);
    let version_of_resp = |resp: &serve::ClientResponse| -> u64 {
        Value::parse(&resp.body_text())
            .and_then(|v| v.get("model_version").and_then(Value::as_f64))
            .expect("model_version") as u64
    };
    let resp = client
        .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
        .unwrap();
    assert_eq!(version_of_resp(&resp), v2);

    // Roll back: serving returns to v1 with its original version number.
    let restored = registry.rollback("PhyNet").expect("one step of history");
    assert_eq!(restored, v1);
    let resp = client
        .post_json("/v1/scouts/PhyNet/predict", INCIDENT)
        .unwrap();
    assert_eq!(version_of_resp(&resp), v1);

    // History is one-deep: a second rollback fails.
    assert!(registry.rollback("PhyNet").is_err());

    // Pins block promotion but never recovery.
    registry.pin("PhyNet");
    assert!(registry
        .register("PhyNet", test_scout(), "blocked")
        .is_err());
    registry.unpin("PhyNet");
    let v3 = registry
        .register("PhyNet", test_scout(), "third")
        .expect("register after unpin");
    assert!(v3 > v2);
    assert_eq!(registry.rollback("PhyNet").unwrap(), v1);
}
