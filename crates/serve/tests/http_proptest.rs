//! Property: the HTTP parser is **total**. Any byte stream — random
//! garbage, truncated requests, oversized heads, bad content-lengths,
//! invalid UTF-8 bodies — yields a parsed request, a clean close, or a
//! 4xx/5xx protocol error. Never a panic, never an out-of-range status.

use proptest::prelude::*;
use serve::http::{read_request, HttpError, Request};
use std::io::Cursor;

fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
    read_request(&mut Cursor::new(bytes.to_vec()))
}

/// Every error the parser can produce must be an answerable client or
/// protocol error: 4xx, 501 (chunked) or 505 (bad version).
fn assert_total(bytes: &[u8]) -> Result<(), TestCaseError> {
    match parse(bytes) {
        Ok(_) => Ok(()),
        Err(e) => {
            prop_assert!(
                (400..500).contains(&e.status) || e.status == 501 || e.status == 505,
                "unexpected status {} for input {:?}",
                e.status,
                &bytes[..bytes.len().min(80)]
            );
            Ok(())
        }
    }
}

/// A syntactically plausible request the mutators can start from.
fn valid_request() -> Vec<u8> {
    b"POST /v1/scouts/PhyNet/predict HTTP/1.1\r\nHost: test\r\nContent-Length: 15\r\n\r\n{\"text\":\"abc\"}x".to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte streams never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        assert_total(&bytes)?;
    }

    /// Every prefix of a valid request parses, cleanly closes, or 4xxes.
    #[test]
    fn truncations_never_panic(cut in 0usize..90) {
        let full = valid_request();
        let cut = cut.min(full.len());
        assert_total(&full[..cut])?;
    }

    /// Single-byte corruption of a valid request never panics.
    #[test]
    fn mutations_never_panic(pos in 0usize..90, byte in any::<u8>()) {
        let mut bytes = valid_request();
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = byte;
        assert_total(&bytes)?;
    }

    /// Arbitrary (often invalid) content-length values never panic and
    /// never hand back a body longer than the parser's hard cap.
    #[test]
    fn content_length_fuzz(value in proptest::collection::vec(any::<u8>(), 0..20)) {
        let mut bytes = b"POST / HTTP/1.1\r\nContent-Length: ".to_vec();
        bytes.extend_from_slice(&value);
        bytes.extend_from_slice(b"\r\n\r\nsome body bytes");
        match parse(&bytes) {
            Ok(Some(req)) => prop_assert!(req.body.len() <= serve::http::MAX_BODY_BYTES),
            Ok(None) => {}
            Err(e) => prop_assert!((400..=505).contains(&e.status)),
        }
    }

    /// Invalid UTF-8 bodies parse fine as bytes, and `body_str` turns
    /// them into a 400 instead of panicking.
    #[test]
    fn invalid_utf8_bodies_are_rejected_as_400(body in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).into_bytes();
        bytes.extend_from_slice(&body);
        let req = parse(&bytes).unwrap().unwrap();
        prop_assert_eq!(req.body.len(), body.len());
        match req.body_str() {
            Ok(_) => prop_assert!(std::str::from_utf8(&body).is_ok()),
            Err(e) => {
                prop_assert!(std::str::from_utf8(&body).is_err());
                prop_assert_eq!(e.status, 400);
            }
        }
    }
}
