//! Crash recovery through the whole serving plane: a real server with a
//! real WAL takes traffic over HTTP, "crashes" (torn final frame, the
//! kill -9 signature), and a fresh engine recovers — with the recovered
//! state bit-identical to a deterministic replay of the same log and
//! incident ids continuing where the dead process stopped.

use cloudsim::SimDuration;
use incident::{Workload, WorkloadConfig};
use ml::forest::ForestConfig;
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};
use serve::{Client, Engine, ModelRegistry, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use wal::{replay_dir, SyncPolicy, Wal, WalConfig};

/// A small world, generated once: 30 days is plenty of traffic to
/// classify and keeps the test fast.
fn world() -> Arc<Workload> {
    static WORLD: OnceLock<Arc<Workload>> = OnceLock::new();
    WORLD
        .get_or_init(|| {
            let mut config = WorkloadConfig {
                seed: 7,
                ..WorkloadConfig::default()
            };
            config.faults.faults_per_day = 2.0;
            config.faults.horizon = SimDuration::days(30);
            Arc::new(Workload::generate(config))
        })
        .clone()
}

/// A tiny PhyNet Scout trained on the world's own incidents.
fn tiny_scout() -> Scout {
    static TEXT: OnceLock<String> = OnceLock::new();
    let text = TEXT.get_or_init(|| {
        let world = world();
        let mon =
            MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
        let examples: Vec<Example> = world
            .incidents
            .iter()
            .take(400)
            .map(|i| Example::new(i.text(), i.created_at, i.owner == cloudsim::Team::PhyNet))
            .collect();
        let config = ScoutConfig::phynet();
        let build = ScoutBuildConfig {
            forest: ForestConfig {
                n_trees: 4,
                ..ForestConfig::default()
            },
            cluster_train_cap: 10,
            ..ScoutBuildConfig::default()
        };
        let corpus = Scout::prepare(&config, &build, &examples, &mon);
        let train = corpus.trainable_indices();
        Scout::train_prepared(config, build, &corpus, &train, &mon).to_text()
    });
    Scout::from_text(text).expect("model text round-trips")
}

fn wal_cfg(dir: &Path) -> WalConfig {
    let mut cfg = WalConfig::new(dir);
    cfg.sync = SyncPolicy::Os; // the test kills a process image, not the power
    cfg
}

fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

/// Build a WAL-backed engine the way `scoutctl serve --wal-dir` does:
/// open + recover first, attach, then publish models (so promotions are
/// journaled with post-recovery version numbers).
fn wal_engine(dir: &Path) -> (Arc<Wal>, Engine, Arc<ModelRegistry>) {
    let wal = Arc::new(Wal::open(wal_cfg(dir)).unwrap());
    if wal.seq() == 0 {
        wal.append(&wal::Event::Init {
            served_cap: 64,
            feedback_cap: 64,
        })
        .unwrap();
    }
    let registry = Arc::new(ModelRegistry::new());
    let engine = Engine::new(Arc::clone(&registry), world())
        .with_served_cap(64)
        .with_wal(Arc::clone(&wal));
    registry
        .register("PhyNet", tiny_scout(), "test-startup")
        .unwrap();
    (wal, engine, registry)
}

#[test]
fn killed_server_recovers_bit_identical_and_continues_ids() {
    let dir = std::env::temp_dir().join(format!("serve-wal-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // ---- first life: take traffic, then "crash" ----
    let pre_crash_state;
    let startup_version;
    {
        let (wal, engine, registry) = wal_engine(&dir);
        startup_version = registry.version_of("PhyNet").unwrap();
        let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        for i in 0..6 {
            let body = format!("{{\"text\":\"BGP flap {i} on agg-3\",\"time_minutes\":{i}}}");
            let resp = client
                .post_json("/v1/scouts/PhyNet/predict", &body)
                .unwrap();
            assert!(resp.is_success(), "predict {i}: {}", resp.body_text());
        }
        // Resolve one incident so the recovery covers the join too.
        let resp = client
            .post_json("/v1/feedback", "{\"incident\":1,\"team\":\"PhyNet\"}")
            .unwrap();
        assert!(resp.is_success(), "feedback: {}", resp.body_text());
        let state = client.get("/v1/wal/state").unwrap();
        assert!(state.is_success());
        pre_crash_state = state.body_text().to_string();
        server.shutdown();
        wal.sync().unwrap();
    }

    // kill -9 mid-append: tear the final frame.
    let seg = newest_segment(&dir);
    let len = std::fs::metadata(&seg).unwrap().len();
    assert!(len > 16, "log must contain real traffic");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 5)
        .unwrap();

    // The state an offline, deterministic replay reconstructs.
    let replayed = replay_dir(&dir, None, false).unwrap();

    // ---- second life: recover, verify, keep serving ----
    let (wal2, engine2, registry2) = wal_engine(&dir);
    // Recovery == replay, bit for bit (before the startup promotion,
    // the recovered projection is exactly the replayed one; the live
    // log has since appended the new ModelPromoted, so compare the
    // replay against a replay bounded at the recovered seq).
    let recovered = replay_dir(&dir, Some(replayed.seq), false).unwrap();
    assert_eq!(recovered.render(), replayed.render());

    // The torn final event (the feedback-join record arrived last) is
    // gone; everything else survived. The pre-crash live state and the
    // recovered state agree on every record but the torn tail.
    assert!(pre_crash_state.contains("\"incident\":1"));

    // Startup publish on the recovered registry continued the version
    // sequence instead of reusing v1.
    let v2 = registry2.version_of("PhyNet").unwrap();
    assert!(
        v2 > startup_version,
        "recovered registry must not reuse version numbers (got {v2})"
    );

    // Served-log ids continue: the next prediction gets an id after the
    // recovered high-water mark, not 1.
    let server = Server::start(engine2, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .post_json(
            "/v1/scouts/PhyNet/predict",
            "{\"text\":\"post-crash probe\",\"time_minutes\":99}",
        )
        .unwrap();
    assert!(resp.is_success());
    let incident = resp
        .body_text()
        .split("\"incident\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse::<u64>().ok())
        .expect("predict response carries the incident id");
    assert!(
        incident > 6 - 1,
        "incident ids must continue after recovery, got {incident}"
    );
    // And the live WAL state is once again exactly what a replay of the
    // now-longer log produces.
    let live = client.get("/v1/wal/state").unwrap().body_text().to_string();
    let full_replay = replay_dir(&dir, None, false).unwrap();
    assert!(
        live.contains(&full_replay.render()),
        "live /v1/wal/state must embed the canonical projection"
    );
    server.shutdown();
    wal2.sync().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
