//! End-to-end causal tracing through the serving plane.
//!
//! Two guarantees are exercised against a live server:
//!
//! 1. A predict carrying `X-Trace-Id` yields ONE connected trace
//!    recoverable from the flight recorder: the HTTP root span, the
//!    admission span under it, the batch span *linked* to the request,
//!    and the per-item predict/prepare/featcache spans — plus the same
//!    trace id echoed in the response header and stamped on the audit
//!    record.
//! 2. No span is ever orphaned: under concurrent traced predicts racing
//!    a model hot-swap and a shutdown drain, every captured span's
//!    parent chain resolves to the trace root.

use cloudsim::{SimDuration, Team};
use incident::{Workload, WorkloadConfig};
use ml::forest::ForestConfig;
use monitoring::{MonitoringConfig, MonitoringSystem};
use obs::json::Value;
use obs::span::SpanEvent;
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};
use serve::{Client, Engine, ModelRegistry, ServeConfig, Server};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

fn small_workload() -> Arc<Workload> {
    static WORLD: OnceLock<Arc<Workload>> = OnceLock::new();
    WORLD
        .get_or_init(|| {
            let mut config = WorkloadConfig {
                seed: 7,
                ..WorkloadConfig::default()
            };
            config.faults.faults_per_day = 2.0;
            config.faults.horizon = SimDuration::days(20);
            Arc::new(Workload::generate(config))
        })
        .clone()
}

fn trained_model_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let world = small_workload();
        let mon =
            MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
        let examples: Vec<Example> = world
            .incidents
            .iter()
            .map(|i| Example::new(i.text(), i.created_at, i.owner == Team::PhyNet))
            .collect();
        let config = ScoutConfig::phynet();
        let build = ScoutBuildConfig {
            forest: ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
            cluster_train_cap: 10,
            ..ScoutBuildConfig::default()
        };
        let corpus = Scout::prepare(&config, &build, &examples, &mon);
        let train = corpus.trainable_indices();
        let scout = Scout::train_prepared(config, build, &corpus, &train, &mon);
        scout.to_text()
    })
}

fn test_scout() -> Scout {
    Scout::from_text(trained_model_text()).expect("cached model text round-trips")
}

fn start_server(config: ServeConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register("PhyNet", test_scout(), "test")
        .expect("register test model");
    let engine = Engine::new(registry, small_workload());
    Server::start(engine, "127.0.0.1:0", config).expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

const INCIDENT: &str = r#"{"text":"Switch agg-3 in c1.dc1 reporting CRC errors and packet loss"}"#;

/// Spans currently in the flight ring, parsed (alert lines skipped).
fn flight_spans(client: &mut Client) -> Vec<SpanEvent> {
    let resp = client.get("/v1/debug/flight").expect("flight endpoint");
    assert_eq!(resp.status, 200);
    resp.body_text()
        .lines()
        .filter_map(SpanEvent::from_json)
        .collect()
}

/// A client-supplied trace id must thread the whole path: HTTP root →
/// admission → (link) batch → per-item predict/prepare/featcache — all
/// recoverable from the flight recorder with the same trace id, which
/// the response header echoes and the audit record carries.
#[test]
fn traced_predict_yields_one_connected_trace() {
    let server = start_server(ServeConfig::default());
    let mut client = connect(&server);

    let trace_id: u64 = 0xfeed_c0de_1234;
    let resp = client
        .request(
            "POST",
            "/v1/scouts/PhyNet/predict",
            &[("X-Trace-Id", "feedc0de1234")],
            INCIDENT.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    // The response echoes the trace id it served under.
    let echoed = resp.header("X-Trace-Id").expect("X-Trace-Id echoed");
    assert_eq!(obs::trace::parse_hex(echoed), Some(trace_id));

    // The audit record carries the same trace id as the HTTP header.
    let incident = Value::parse(&resp.body_text())
        .and_then(|v| v.get("incident").and_then(Value::as_f64))
        .expect("incident id in predict response") as u64;
    let audit = obs::audit_lookup(incident).expect("audit record for served predict");
    assert_eq!(audit.trace_id, trace_id, "audit trace != header trace");

    // The batch span closes on the batcher thread just after the
    // response is answered; poll briefly so the assertion isn't racing
    // a microsecond-scale guard drop.
    let mut spans = Vec::new();
    for _ in 0..100 {
        spans = flight_spans(&mut client);
        let linked = spans
            .iter()
            .any(|s| s.links.iter().any(|&(t, _)| t == trace_id));
        if linked && spans.iter().any(|s| s.trace == trace_id) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let ours: Vec<&SpanEvent> = spans.iter().filter(|s| s.trace == trace_id).collect();
    let names: BTreeSet<&str> = ours.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "serve.request",
        "serve.admission",
        "scout.prepare.item",
        "scout.predict",
    ] {
        assert!(
            names.contains(expected),
            "span {expected:?} missing from trace; got {names:?}"
        );
    }

    // Exactly one root, and admission hangs off it.
    let roots: Vec<_> = ours
        .iter()
        .filter(|s| s.name == "serve.request" && s.parent == 0)
        .collect();
    assert_eq!(roots.len(), 1, "expected one serve.request root");
    let root_id = roots[0].id;
    assert!(
        ours.iter()
            .any(|s| s.name == "serve.admission" && s.parent == root_id),
        "admission span not parented to the HTTP root"
    );

    // The batch fan-in span links back to the request's context.
    assert!(
        spans.iter().any(|s| s.name == "serve.batch"
            && s.links.iter().any(|&(t, p)| t == trace_id && p == root_id)),
        "no serve.batch span links (trace, root) back to the request"
    );

    // Connectivity: every span in the trace reaches the root — each
    // parent is 0 or another span of the same trace.
    let ids: BTreeSet<u64> = ours.iter().map(|s| s.id).collect();
    for s in &ours {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} (id {}) is orphaned: parent {} not in trace",
            s.name,
            s.id,
            s.parent
        );
    }
}

/// Serializes the tests that install a global trace sink.
static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Under concurrent traced predicts racing a hot-swap reload and a
/// shutdown drain, every span of every traced request must still chain
/// to its root — nothing orphaned, including jobs drained out of a
/// partial batch at shutdown.
#[test]
fn no_span_orphaned_under_hot_swap_and_shutdown_drain() {
    let _guard = SINK_LOCK.lock().unwrap();

    // Server whose models come from a directory, so reload works. Batch
    // of 32 with a 300 ms window: waves of 3 never fill the batch, so
    // every batch runs on the deadline — and shutdown mid-window
    // catches an open partial batch (the drain path).
    let dir = std::env::temp_dir().join(format!("serve-tracing-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("PhyNet.scout"), trained_model_text()).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.load_dir(&dir).expect("initial load");
    let engine = Engine::new(registry, small_workload()).with_model_dir(dir.clone());
    let server = Server::start(
        engine,
        "127.0.0.1:0",
        ServeConfig {
            batch_size: 32,
            batch_deadline: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    let (sink, lines) = obs::sink::MemorySink::new();
    obs::global().set_trace_sink(Some(Box::new(sink)));

    // 3 clients × 4 predicts, each with its own client-supplied trace
    // id (always sampled). Early waves land in deadline-run batches and
    // race the reload; later ones are drained (503) or never reach the
    // server once shutdown closes the listener. Each thread reports
    // which of its requests were actually answered.
    let base: u64 = 0x7ab0_0000;
    let clients: Vec<_> = (0..3u64)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut answered = Vec::new();
                for r in 0..4u64 {
                    let trace = base + c * 16 + r;
                    let id = obs::trace::hex(trace);
                    let Ok(resp) = client.request(
                        "POST",
                        "/v1/scouts/PhyNet/predict",
                        &[("X-Trace-Id", id.as_str())],
                        INCIDENT.as_bytes(),
                    ) else {
                        break; // connection closed by shutdown
                    };
                    // 200 (served) or 503 (drained at shutdown) only.
                    assert!(
                        resp.status == 200 || resp.status == 503,
                        "unexpected status {}",
                        resp.status
                    );
                    answered.push(trace);
                }
                answered
            })
        })
        .collect();

    // Race a hot-swap against the in-flight predicts, then shut down
    // while a partially-filled batch window is still open.
    std::thread::sleep(Duration::from_millis(150));
    let mut ctl = Client::connect(&addr).unwrap();
    assert_eq!(
        ctl.post_json("/v1/models/reload", "{}").unwrap().status,
        200
    );
    std::thread::sleep(Duration::from_millis(500));
    server.shutdown();
    let answered: BTreeSet<u64> = clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    obs::global().set_trace_sink(None);
    assert!(
        answered.len() >= 3,
        "expected at least the first wave answered, got {answered:?}"
    );

    let spans: Vec<SpanEvent> = lines
        .lock()
        .unwrap()
        .iter()
        .filter_map(|l| SpanEvent::from_json(l))
        .collect();

    // Every answered request produced spans, and every span of every
    // one of those traces chains to a root within its own trace.
    let our_traces = answered;
    let seen: BTreeSet<u64> = spans
        .iter()
        .filter(|s| our_traces.contains(&s.trace))
        .map(|s| s.trace)
        .collect();
    assert_eq!(
        seen, our_traces,
        "some answered requests left no spans behind"
    );
    for &trace in &our_traces {
        let ours: Vec<&SpanEvent> = spans.iter().filter(|s| s.trace == trace).collect();
        let ids: BTreeSet<u64> = ours.iter().map(|s| s.id).collect();
        assert!(
            ours.iter().any(|s| s.parent == 0),
            "trace {trace:#x} has no root span"
        );
        for s in &ours {
            assert!(
                s.parent == 0 || ids.contains(&s.parent),
                "orphaned span {} (id {}, trace {trace:#x}): parent {} not in trace",
                s.name,
                s.id,
                s.parent
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
