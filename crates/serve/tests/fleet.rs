//! Fleet routing-plane tests: graceful degradation under partial Scout
//! failure, unmapped-team answers participating in the decision, and the
//! bit-identity of sharded dispatch against the sequential fan-out.

use cloudsim::{SimDuration, Team};
use featcache::FeatCache;
use incident::{Workload, WorkloadConfig};
use ml::forest::ForestConfig;
use monitoring::{MonitoringConfig, MonitoringSystem};
use obs::json::Value;
use proptest::prelude::*;
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};
use serve::{Client, Engine, FleetConfig, ModelEntry, ModelRegistry, ServeConfig, Server};
use std::sync::{Arc, OnceLock};

/// A small world: enough incidents to train on, fast enough for tests.
fn small_workload() -> Arc<Workload> {
    static WORLD: OnceLock<Arc<Workload>> = OnceLock::new();
    WORLD
        .get_or_init(|| {
            let mut config = WorkloadConfig {
                seed: 7,
                ..WorkloadConfig::default()
            };
            config.faults.faults_per_day = 2.0;
            config.faults.horizon = SimDuration::days(20);
            Arc::new(Workload::generate(config))
        })
        .clone()
}

/// One PhyNet Scout trained on the small world, cached as model text so
/// every test can cheaply mint `Scout` instances under any team name.
fn trained_model_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let world = small_workload();
        let mon =
            MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
        let examples: Vec<Example> = world
            .incidents
            .iter()
            .map(|i| Example::new(i.text(), i.created_at, i.owner == Team::PhyNet))
            .collect();
        let config = ScoutConfig::phynet();
        let build = ScoutBuildConfig {
            forest: ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
            cluster_train_cap: 10,
            ..ScoutBuildConfig::default()
        };
        let corpus = Scout::prepare(&config, &build, &examples, &mon);
        let train = corpus.trainable_indices();
        let scout = Scout::train_prepared(config, build, &corpus, &train, &mon);
        scout.to_text()
    })
}

fn test_scout() -> Scout {
    Scout::from_text(trained_model_text()).expect("cached model text round-trips")
}

/// A server with one test Scout per `teams` entry (registered in order,
/// so versions line up across servers) and the given fleet config.
fn start_fleet_server(teams: &[&str], fleet: FleetConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    for team in teams {
        registry
            .register(team, test_scout(), "test")
            .expect("register test model");
    }
    let engine = Engine::new(registry, small_workload()).with_fleet(fleet);
    Server::start(engine, "127.0.0.1:0", ServeConfig::default()).expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

const INCIDENT: &str = r#"{"text":"Switch agg-3 in c1.dc1 reporting CRC errors and packet loss"}"#;

fn fleet_config(shards: usize, fail_teams: &[&str]) -> FleetConfig {
    FleetConfig {
        shards,
        suggestions: 3,
        fail_teams: fail_teams.iter().map(|t| t.to_string()).collect(),
    }
}

#[test]
fn partial_scout_failure_degrades_gracefully() {
    // One Scout fails (injected); the request must still answer 200 with
    // the surviving Scouts' answers, the failed team itemized in
    // `errors`, and a decision over what answered.
    let server = start_fleet_server(
        &["PhyNet", "Storage", "Database"],
        fleet_config(2, &["Storage"]),
    );
    let mut client = connect(&server);
    let resp = client.post_json("/v1/route", INCIDENT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let value = Value::parse(&resp.body_text()).expect("JSON body");

    let decision = value.get("decision").and_then(Value::as_str).unwrap();
    assert!(decision == "send_to" || decision == "fallback");

    let answers = value.get("answers").and_then(Value::as_arr).unwrap();
    let answered: Vec<&str> = answers
        .iter()
        .filter_map(|a| a.get("team").and_then(Value::as_str))
        .collect();
    assert_eq!(answered, ["Database", "PhyNet"], "sorted, Storage absent");

    let errors = value.get("errors").and_then(Value::as_arr).unwrap();
    assert_eq!(errors.len(), 1);
    assert_eq!(
        errors[0].get("team").and_then(Value::as_str),
        Some("Storage")
    );
    assert!(errors[0]
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("injected"));

    // Top-k suggestions rank only the teams that answered.
    let suggestions = value.get("suggestions").and_then(Value::as_arr).unwrap();
    assert!(!suggestions.is_empty() && suggestions.len() <= 3);
    for s in suggestions {
        let team = s.get("team").and_then(Value::as_str).unwrap();
        assert!(team == "Database" || team == "PhyNet", "{team}");
        let confidence = s.get("confidence").and_then(Value::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&confidence));
    }
}

#[test]
fn route_fails_only_when_every_scout_does() {
    let server = start_fleet_server(
        &["PhyNet", "Storage"],
        fleet_config(2, &["PhyNet", "Storage"]),
    );
    let mut client = connect(&server);
    // Every Scout injected to fail: 500, not a partial answer.
    let resp = client.post_json("/v1/route", INCIDENT).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_text());

    // An already-lapsed deadline fails every Scout with DeadlineExpired:
    // that is the 504 shape.
    let resp = client
        .request(
            "POST",
            "/v1/route",
            &[("X-Deadline-Ms", "0")],
            INCIDENT.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_text());
}

#[test]
fn unmapped_team_answers_reach_the_decision() {
    // "Atlantis" has no Team::ALL variant and no dependency-graph node.
    // Its answers must still drive the decision (the silent-drop bug had
    // the master never seeing them, so /v1/route always fell back).
    let world = small_workload();
    let server = start_fleet_server(&["Atlantis"], fleet_config(2, &[]));
    let mut client = connect(&server);

    let mut confident_yes = None;
    let mut checked = 0;
    for incident in &world.incidents {
        let body = obs::json::Obj::new()
            .str("text", &incident.text())
            .uint("time_minutes", incident.created_at.0)
            .finish();
        let resp = client
            .post_json("/v1/scouts/Atlantis/predict", &body)
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let value = Value::parse(&resp.body_text()).unwrap();
        let responsible = value.get("verdict").and_then(Value::as_str) == Some("responsible");
        let confidence = value.get("confidence").and_then(Value::as_f64).unwrap();
        checked += 1;
        if responsible && confidence >= 0.8 {
            confident_yes = Some(body);
            break;
        }
    }
    let body = confident_yes
        .unwrap_or_else(|| panic!("no confident-yes incident among {checked} in the workload"));

    let resp = client.post_json("/v1/route", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let value = Value::parse(&resp.body_text()).unwrap();
    assert_eq!(
        value.get("decision").and_then(Value::as_str),
        Some("send_to"),
        "unmapped team's confident yes must win: {}",
        resp.body_text()
    );
    assert_eq!(value.get("team").and_then(Value::as_str), Some("Atlantis"));
    let answers = value.get("answers").and_then(Value::as_arr).unwrap();
    assert_eq!(
        answers[0].get("team").and_then(Value::as_str),
        Some("Atlantis")
    );
}

#[test]
fn route_bytes_identical_across_shard_counts() {
    // Same registry contents registered in the same order (so versions
    // align), different shard counts: /v1/route bodies must match byte
    // for byte — shard topology is an implementation detail.
    let teams = ["PhyNet", "Storage", "Database", "Atlantis", "DNS"];
    let bodies: Vec<String> = [1usize, 2, 7]
        .iter()
        .map(|&shards| {
            let server = start_fleet_server(&teams, fleet_config(shards, &[]));
            let resp = connect(&server).post_json("/v1/route", INCIDENT).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body_text());
            resp.body_text()
        })
        .collect();
    assert_eq!(bodies[0], bodies[1], "shards=1 vs shards=2");
    assert_eq!(bodies[0], bodies[2], "shards=1 vs shards=7");
}

/// Entries for the in-process dispatch tests: one shared trained Scout
/// under several team names. Reused across proptest cases so the
/// per-entry feature caches stay warm.
fn dispatch_entries() -> &'static Vec<Arc<ModelEntry>> {
    static ENTRIES: OnceLock<Vec<Arc<ModelEntry>>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        ["PhyNet", "Storage", "Database", "Atlantis", "DNS", "SLB"]
            .iter()
            .enumerate()
            .map(|(i, team)| {
                Arc::new(ModelEntry {
                    team: team.to_string(),
                    version: i as u64 + 1,
                    source: "test".into(),
                    scout: test_scout(),
                    feat_cache: FeatCache::new(16 * 1024 * 1024),
                })
            })
            .collect()
    })
}

/// A canonical, comparison-friendly rendering of dispatch outcomes.
fn render_outcomes(outcomes: &[serve::TeamOutcome]) -> String {
    outcomes
        .iter()
        .map(|o| match &o.result {
            Ok(a) => format!(
                "{} v{} {:?} {:.17}\n",
                a.team, a.model_version, a.prediction.verdict, a.prediction.confidence
            ),
            Err(e) => format!("{} ERR {e}\n", o.team),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded dispatch is bit-identical to the sequential (shards=1)
    /// fan-out, for any shard count, team subset, and injected-failure
    /// set.
    #[test]
    fn sharded_dispatch_matches_sequential(
        shards in 2usize..9,
        mask in 1u32..(1 << 6),
        fail_mask in 0u32..(1 << 6),
    ) {
        let world = small_workload();
        let all = dispatch_entries();
        let entries: Vec<Arc<ModelEntry>> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, e)| Arc::clone(e))
            .collect();
        let fail_teams: Vec<String> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| fail_mask & (1 << i) != 0)
            .map(|(_, e)| e.team.clone())
            .collect();
        let text = "Switch agg-3 in c1.dc1 reporting CRC errors and packet loss";
        let time = cloudsim::SimTime::from_days(10);

        let sequential = serve::fleet::dispatch(
            &entries, &world, text, time, None,
            &FleetConfig { shards: 1, suggestions: 3, fail_teams: fail_teams.clone() },
        );
        let sharded = serve::fleet::dispatch(
            &entries, &world, text, time, None,
            &FleetConfig { shards, suggestions: 3, fail_teams },
        );
        prop_assert_eq!(render_outcomes(&sequential), render_outcomes(&sharded));

        // Outcomes are sorted by team and cover exactly the entry set.
        let teams: Vec<&str> = sharded.iter().map(|o| o.team.as_str()).collect();
        let mut expected: Vec<&str> = entries.iter().map(|e| e.team.as_str()).collect();
        expected.sort_unstable();
        prop_assert_eq!(teams, expected);
    }
}
