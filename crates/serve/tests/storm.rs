//! Storm-control integration tests: duplicate suppression, per-source
//! throttling, severity coalescing byte-identity, circuit breakers, and
//! the mid-stream monitoring deprecation drill.
//!
//! The invariant under test everywhere: **storm control never changes
//! what a non-storm request is told** — it only changes how much work a
//! storm costs. Responses with the layer on are byte-identical to the
//! layer off for fresh, under-rate, default-severity traffic.

use cloudsim::SimDuration;
use incident::{Workload, WorkloadConfig};
use ml::forest::ForestConfig;
use monitoring::{MonitoringConfig, MonitoringSystem};
use obs::json::Value;
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};
use serve::{Client, Engine, FleetConfig, ModelRegistry, ServeConfig, Server};
use std::sync::{Arc, OnceLock};
use storm::{BatchPolicy, BreakerConfig, Clock, ManualClock, StormConfig, StormControl};

fn small_workload() -> Arc<Workload> {
    static WORLD: OnceLock<Arc<Workload>> = OnceLock::new();
    WORLD
        .get_or_init(|| {
            let mut config = WorkloadConfig {
                seed: 7,
                ..WorkloadConfig::default()
            };
            config.faults.faults_per_day = 2.0;
            config.faults.horizon = SimDuration::days(20);
            Arc::new(Workload::generate(config))
        })
        .clone()
}

fn trained_model_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let world = small_workload();
        let mon =
            MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
        let examples: Vec<Example> = world
            .incidents
            .iter()
            .map(|i| Example::new(i.text(), i.created_at, i.phynet_owned()))
            .collect();
        let config = ScoutConfig::phynet();
        let build = ScoutBuildConfig {
            forest: ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
            cluster_train_cap: 10,
            ..ScoutBuildConfig::default()
        };
        let corpus = Scout::prepare(&config, &build, &examples, &mon);
        let train = corpus.trainable_indices();
        let scout = Scout::train_prepared(config, build, &corpus, &train, &mon);
        scout.to_text()
    })
}

fn test_scout() -> Scout {
    Scout::from_text(trained_model_text()).expect("cached model text round-trips")
}

/// A fleet server with one test Scout per team and an optional storm
/// layer. Registration order is fixed so model versions (and therefore
/// response bytes) line up across servers.
fn start_server(teams: &[&str], fleet: FleetConfig, storm: Option<Arc<StormControl>>) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    for team in teams {
        registry
            .register(team, test_scout(), "test")
            .expect("register test model");
    }
    let mut engine = Engine::new(registry, small_workload()).with_fleet(fleet);
    if let Some(storm) = storm {
        engine = engine.with_storm(storm);
    }
    Server::start(engine, "127.0.0.1:0", ServeConfig::default()).expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

fn fleet_config(fail_teams: &[&str]) -> FleetConfig {
    FleetConfig {
        shards: 2,
        suggestions: 3,
        fail_teams: fail_teams.iter().map(|t| t.to_string()).collect(),
    }
}

fn manual_storm(config: StormConfig) -> (Arc<StormControl>, ManualClock) {
    let (clock, handle) = Clock::manual();
    (Arc::new(StormControl::with_clock(config, clock)), handle)
}

fn route_body(text: &str, source: &str, severity: u64) -> String {
    obs::json::Obj::new()
        .str("text", text)
        .str("source", source)
        .uint("severity", severity)
        .finish()
}

/// Fetch one counter's value from `/metrics.json` (0 when absent).
fn metric(client: &mut Client, name: &str) -> f64 {
    let resp = client.get("/metrics.json").expect("metrics");
    resp.body_text()
        .lines()
        .filter_map(Value::parse)
        .find(|v| v.get("name").and_then(Value::as_str) == Some(name))
        .and_then(|v| v.get("value").and_then(Value::as_f64))
        .unwrap_or(0.0)
}

#[test]
fn duplicate_storm_is_answered_from_the_cached_decision() {
    let (storm, _clock) = manual_storm(StormConfig::default());
    let server = start_server(&["PhyNet", "Storage"], fleet_config(&[]), Some(storm));
    let mut client = connect(&server);
    let suppressed_before = metric(&mut client, "storm.dedup.suppressed");

    let original = client
        .post_json(
            "/v1/route",
            &route_body("Switch agg-3 CRC errors and packet loss", "netmon", 2),
        )
        .unwrap();
    assert_eq!(original.status, 200, "{}", original.body_text());
    let original_body = original.body_text();
    assert!(
        !original_body.contains("\"storm\""),
        "fresh responses carry no storm object: {original_body}"
    );

    // Near-duplicate renderings: case, punctuation, and digit debris
    // differ; the normalized content does not.
    for (n, dup) in [
        "SWITCH agg-3 - CRC errors!! and packet loss 1718231",
        "switch AGG-3 crc ERRORS, and packet loss... 99",
    ]
    .iter()
    .enumerate()
    {
        let resp = client
            .post_json("/v1/route", &route_body(dup, "netmon", 2))
            .unwrap();
        assert_eq!(resp.status, 200);
        let body = resp.body_text();
        let value = Value::parse(&body).expect("JSON body");
        let storm_obj = value.get("storm").expect("duplicate carries storm object");
        assert!(
            matches!(storm_obj.get("suppressed"), Some(Value::Bool(true))),
            "suppressed flag set: {body}"
        );
        assert_eq!(
            storm_obj.get("duplicates").and_then(Value::as_f64),
            Some((n + 1) as f64)
        );
        // Everything except the storm object is the original's bytes.
        let stripped = body.replace(
            &format!(
                ",\"storm\":{{\"suppressed\":true,\"duplicates\":{}}}",
                n + 1
            ),
            "",
        );
        assert_eq!(stripped, original_body, "cached decision must be verbatim");
    }

    // A different source is a different incident stream: no suppression.
    let other = client
        .post_json(
            "/v1/route",
            &route_body("Switch agg-3 CRC errors and packet loss", "pagers", 2),
        )
        .unwrap();
    assert_eq!(other.status, 200);
    assert!(!other.body_text().contains("\"storm\""));

    // Metrics are process-global; assert the delta, not the total.
    let suppressed_after = metric(&mut client, "storm.dedup.suppressed");
    assert!(
        suppressed_after >= suppressed_before + 2.0,
        "dedup counter must advance: {suppressed_before} -> {suppressed_after}"
    );
}

#[test]
fn storm_layer_is_byte_invisible_to_non_storm_traffic() {
    // Same teams, same registration order, same fleet config — one
    // server with the full storm stack, one without.
    let (storm, _clock) = manual_storm(StormConfig::default());
    let with_storm = start_server(
        &["PhyNet", "Storage", "Database"],
        fleet_config(&[]),
        Some(storm),
    );
    let without = start_server(&["PhyNet", "Storage", "Database"], fleet_config(&[]), None);
    let mut on = connect(&with_storm);
    let mut off = connect(&without);

    let world = small_workload();
    for (i, incident) in world.incidents.iter().take(24).enumerate() {
        // Distinct sources keep every request Fresh; severities cycle
        // through all three classes, so the Sev3 coalescer path is
        // held to the same bytes as the direct fan-out.
        let severity = (i % 3 + 1) as u64;
        let body = obs::json::Obj::new()
            .str("text", &incident.text())
            .str("source", &format!("src-{i}"))
            .uint("severity", severity)
            .uint("time_minutes", incident.created_at.0)
            .finish();
        let a = on.post_json("/v1/route", &body).unwrap();
        let b = off.post_json("/v1/route", &body).unwrap();
        assert_eq!(a.status, 200, "{}", a.body_text());
        assert_eq!(b.status, 200, "{}", b.body_text());
        assert_eq!(
            a.body_text(),
            b.body_text(),
            "storm on/off bytes diverged on incident {i} (severity {severity})"
        );
    }
}

#[test]
fn over_rate_sources_get_429_without_starving_neighbors() {
    let config = StormConfig {
        throttle: storm::ThrottleConfig {
            rate_per_sec: 2,
            burst: 3,
            max_sources: 16,
        },
        ..StormConfig::default()
    };
    let (storm, clock) = manual_storm(config);
    let server = start_server(&["PhyNet"], fleet_config(&[]), Some(storm));
    let mut client = connect(&server);

    // The clock never advances: the 4th request from one source must be
    // throttled deterministically.
    let mut statuses = Vec::new();
    for i in 0..5 {
        let resp = client
            .post_json(
                "/v1/route",
                &route_body(
                    &format!("chatty alert variant {i} from flaky watchdog"),
                    "flaky",
                    2,
                ),
            )
            .unwrap();
        statuses.push(resp.status);
        if resp.status == 429 {
            let retry: u64 = resp
                .header("Retry-After")
                .expect("429 carries Retry-After")
                .parse()
                .expect("integral seconds");
            assert!((1..=8).contains(&retry), "retry hint {retry}");
        }
    }
    assert_eq!(statuses[..3], [200, 200, 200], "burst admits");
    assert_eq!(statuses[3..], [429, 429], "over-rate drops");

    // A well-behaved neighbor is untouched.
    let ok = client
        .post_json(
            "/v1/route",
            &route_body("quiet alert from healthy watchdog", "steady", 2),
        )
        .unwrap();
    assert_eq!(ok.status, 200, "per-source isolation: {}", ok.body_text());

    // Refill is driven by the injected clock: +2s buys 4 more tokens.
    clock.advance(2_000);
    let after = client
        .post_json(
            "/v1/route",
            &route_body("chatty alert variant 9 from flaky watchdog", "flaky", 2),
        )
        .unwrap();
    assert_eq!(after.status, 200, "tokens refill with the clock");
}

#[test]
fn breaker_trips_persistently_failing_team_and_probes_after_cooldown() {
    let config = StormConfig {
        breaker: BreakerConfig {
            failure_threshold: 2,
            open_ms: 10_000,
            half_open_probes: 1,
        },
        ..StormConfig::default()
    };
    let (storm, clock) = manual_storm(config);
    // Storage's Scout is failure-injected: every fan-out records one
    // breaker failure for it.
    let server = start_server(
        &["PhyNet", "Storage"],
        fleet_config(&["Storage"]),
        Some(storm),
    );
    let mut client = connect(&server);

    let storage_error = |body: &str| -> String {
        let value = Value::parse(body).expect("JSON body");
        value
            .get("errors")
            .and_then(Value::as_arr)
            .and_then(|errs| {
                errs.iter()
                    .find(|e| e.get("team").and_then(Value::as_str) == Some("Storage"))
            })
            .and_then(|e| e.get("error").and_then(Value::as_str))
            .unwrap_or_default()
            .to_string()
    };

    // Two failures trip the breaker; requests stay 200 throughout.
    // Distinct *alphabetic* tokens — digits normalize away and would
    // turn the second request into a dedup hit that never dispatches.
    for word in ["alpha", "bravo"] {
        let resp = client
            .post_json(
                "/v1/route",
                &route_body(&format!("distinct incident {word}"), "mon", 2),
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            storage_error(&resp.body_text()).contains("injected"),
            "closed breaker still dispatches to Storage"
        );
    }

    // Open: Storage is skipped — no catch_unwind, the error names the
    // breaker, and the answer still serves from the surviving Scouts.
    let resp = client
        .post_json(
            "/v1/route",
            &route_body("distinct incident number two beta", "mon", 2),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_text();
    assert!(
        storage_error(&body).contains("circuit breaker open"),
        "expected breaker-open error, got: {body}"
    );
    assert!(
        body.contains("\"team\":\"PhyNet\""),
        "healthy teams keep answering: {body}"
    );

    // After the cooldown the breaker half-opens and lets one probe
    // through; the probe fails (injection is still on) and re-trips.
    clock.advance(10_001);
    let probe = client
        .post_json(
            "/v1/route",
            &route_body("distinct incident number three gamma", "mon", 2),
        )
        .unwrap();
    assert_eq!(probe.status, 200);
    assert!(
        storage_error(&probe.body_text()).contains("injected"),
        "half-open admits a probe"
    );
    let reopened = client
        .post_json(
            "/v1/route",
            &route_body("distinct incident number four delta", "mon", 2),
        )
        .unwrap();
    assert!(
        storage_error(&reopened.body_text()).contains("circuit breaker open"),
        "failed probe re-trips"
    );
}

#[test]
fn mid_stream_monitoring_deprecation_degrades_without_errors() {
    let (storm, _clock) = manual_storm(StormConfig::default());
    let server = start_server(&["PhyNet", "Storage"], fleet_config(&[]), Some(storm));
    let mut client = connect(&server);
    let world = small_workload();

    let route = |client: &mut Client, text: &str, source: &str| -> u16 {
        let resp = client
            .post_json("/v1/route", &route_body(text, source, 2))
            .unwrap();
        let body = resp.body_text();
        assert!(
            Value::parse(&body)
                .and_then(|v| v.get("decision").and_then(Value::as_str).map(String::from))
                .is_some(),
            "every routed response carries a decision: {body}"
        );
        resp.status
    };

    for (i, incident) in world.incidents.iter().take(4).enumerate() {
        assert_eq!(
            route(&mut client, &incident.text(), &format!("pre-{i}")),
            200
        );
    }

    // Kill a data set mid-stream. The response lists the disabled set.
    let resp = client
        .post_json("/v1/monitoring/deprecate", r#"{"dataset":"snmp-syslog"}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert!(resp.body_text().contains("snmp-syslog"));

    // Unknown data sets are a 400 naming the valid ones, not a 500.
    let bad = client
        .post_json("/v1/monitoring/deprecate", r#"{"dataset":"nope"}"#)
        .unwrap();
    assert_eq!(bad.status, 400);
    assert!(
        bad.body_text().contains("snmp-syslog"),
        "{}",
        bad.body_text()
    );

    // Zero 5xx after deprecation: Scouts degrade to remaining sensors.
    for (i, incident) in world.incidents.iter().skip(4).take(8).enumerate() {
        let status = route(&mut client, &incident.text(), &format!("post-{i}"));
        assert!(
            status < 500,
            "request {i} answered {status} after deprecation"
        );
        assert_eq!(status, 200);
    }

    // Restore and confirm the disabled list empties.
    let restored = client
        .post_json(
            "/v1/monitoring/deprecate",
            r#"{"dataset":"snmp-syslog","restore":true}"#,
        )
        .unwrap();
    assert_eq!(restored.status, 200);
    assert!(
        restored.body_text().contains("\"disabled\":[]"),
        "{}",
        restored.body_text()
    );
}

#[test]
fn sev3_requests_coalesce_through_the_route_batcher() {
    // A generous batch window plus concurrent Sev3 submitters gives the
    // coalescer a chance to batch; correctness (bytes) is covered by the
    // on/off test, here we check the plumbing answers under concurrency.
    let config = StormConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ms: 20,
        },
        ..StormConfig::default()
    };
    let (storm, _clock) = manual_storm(config);
    let server = start_server(&["PhyNet", "Storage"], fleet_config(&[]), Some(storm));
    let world = small_workload();
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            let text = world.incidents[i].text();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client
                    .post_json("/v1/route", &route_body(&text, &format!("sev3-{i}"), 3))
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let body = resp.body_text();
        let value = Value::parse(&body).expect("JSON");
        assert!(value.get("decision").is_some(), "{body}");
    }
}
