//! A self-contained subset of the `criterion` API for offline builds.
//!
//! Supports the surface the workspace's benches use: [`Criterion`],
//! [`Criterion::sample_size`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`]. Statistics are simpler than upstream's
//! (median / mean / stddev over fixed-duration samples, no HTML
//! reports), but the numbers are honest wall-clock measurements.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every group target.
pub struct Criterion {
    sample_size: usize,
    /// Wall-clock budget per sample; iterations are calibrated to fill it.
    sample_target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 30,
            sample_target: Duration::from_millis(10),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Measure `f` (which should call [`Bencher::iter`]) and print a
    /// summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            sample_target: self.sample_target,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    sample_size: usize,
    sample_target: Duration,
    /// Per-iteration nanoseconds, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via
    /// [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fill one sample?
        let t0 = Instant::now();
        let mut calib_iters = 0u64;
        while t0.elapsed() < self.sample_target && calib_iters < 1_000_000 {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / calib_iters.max(1) as f64;
        let iters_per_sample =
            ((self.sample_target.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples — did the closure call b.iter?)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<40} median {:>12} mean {:>12} ± {:>10}  ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(var.sqrt()),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group: either the struct-ish form with `name` /
/// `config` / `targets`, or the positional `group!(name, t1, t2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept
            // and ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            sample_target: Duration::from_micros(200),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
