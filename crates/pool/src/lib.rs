//! A bounded, work-stealing thread pool with a scoped, order-preserving
//! `parallel_map`.
//!
//! The workspace's hot paths — forest training, batch prediction, CPD+
//! cluster featurization, corpus preparation, the Scout Master sweeps —
//! are all embarrassingly parallel loops over independent items. Before
//! this crate existed, forest training spawned one OS thread *per tree*
//! (100 trees → 100 threads) and everything else ran sequentially. The
//! pool bounds concurrency at a fixed worker count and gives every loop
//! the same primitive:
//!
//! ```
//! let pool = pool::Pool::new(4);
//! let squares = pool.parallel_map(&[1, 2, 3, 4], |_, &v| v * v);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! # Determinism contract
//!
//! `parallel_map(items, f)` returns `f(i, &items[i])` in input order, and
//! the scheduler never feeds any information about worker count, chunk
//! placement, or timing into `f`. As long as `f` itself is a pure
//! function of `(i, item)` — which in this workspace means any randomness
//! is drawn from a per-item RNG seeded from the item (see
//! `RandomForest::fit_weighted`'s per-tree seeds) — results are
//! **bit-identical** for every worker count, including the sequential
//! `Pool::new(1)`. Tests assert this across 1, 2, and 8 workers.
//!
//! # Why not rayon
//!
//! crates.io is unreachable in the build environment, so external crates
//! cannot be fetched; `rand`, `proptest`, and `criterion` are already
//! in-workspace drop-ins for the same reason. This crate implements the
//! slice of rayon the workspace needs (a scoped, indexed, order-preserving
//! map over a bounded pool) in ~400 lines with no dependencies beyond the
//! in-workspace `obs`.
//!
//! # Scheduling
//!
//! Each `parallel_map` call becomes a *group*: the item range is split
//! into chunks (≈4 chunks per thread, so faster workers can steal from
//! slower ones) that are dealt round-robin onto per-worker deques.
//! Workers pop their own deque from the front and steal from the backs of
//! other deques when idle. The calling thread is a full participant: it
//! executes chunks of its own group while waiting, so `Pool::new(n)`
//! provides `n`-way parallelism with `n - 1` spawned workers and
//! `Pool::new(1)` is a plain sequential loop on the caller. A
//! `parallel_map` issued *from inside* a pool task runs inline on the
//! already-parallel worker (no deadlock, no oversubscription).
//!
//! # Observability
//!
//! `pool.queue.depth` (gauge) tracks queued chunks, `pool.tasks` (counter)
//! counts completed items, and the `pool.parallel_map` span feeds a
//! wall-time histogram per call, all through the workspace `obs` crate
//! (zero cost while `obs` is disabled).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable overriding the global pool's thread count.
pub const THREADS_ENV: &str = "SCOUTS_POOL_THREADS";

thread_local! {
    /// Set while this thread is executing a pool chunk; nested
    /// `parallel_map` calls observe it and run inline.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One `parallel_map` call: the lifetime-erased item runner plus the
/// completion latch that keeps the borrow alive until every item ran.
struct Group {
    /// Runs item `i`. Lifetime-erased from the `parallel_map` stack
    /// frame; soundness argument at [`Pool::parallel_map`].
    run: Box<dyn Fn(usize) + Send + Sync>,
    /// Items not yet completed (counted down per chunk).
    remaining: AtomicUsize,
    /// Did any item panic?
    panicked: AtomicBool,
    done_mx: Mutex<bool>,
    done_cv: Condvar,
    /// Distinguishes groups so the caller only helps its own.
    id: u64,
    /// Trace context captured on the calling thread; entered by every
    /// worker running this group's chunks so per-item spans parent to
    /// the caller's open span no matter which thread executes them.
    ctx: Option<obs::TraceContext>,
}

impl Group {
    /// Execute `[start, end)` and count it down, exactly once, even on
    /// panic. After a panic, later items are skipped (but still counted)
    /// so the latch always releases.
    fn run_chunk(&self, start: usize, end: usize) {
        let _trace = self.ctx.map(obs::trace::TraceContext::enter);
        let result = catch_unwind(AssertUnwindSafe(|| {
            for i in start..end {
                if self.panicked.load(Ordering::Relaxed) {
                    break;
                }
                (self.run)(i);
            }
        }));
        if result.is_err() {
            self.panicked.store(true, Ordering::Relaxed);
        }
        obs::counter("pool.tasks").add((end - start) as u64);
        let n = end - start;
        if self.remaining.fetch_sub(n, Ordering::AcqRel) == n {
            let mut done = self.done_mx.lock().unwrap();
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self.done_mx.lock().unwrap();
        while !*done {
            done = self.done_cv.wait(done).unwrap();
        }
    }

    fn is_done(&self) -> bool {
        *self.done_mx.lock().unwrap()
    }
}

/// A contiguous slice of one group's items, the unit of scheduling and
/// stealing.
struct Chunk {
    group: Arc<Group>,
    start: usize,
    end: usize,
}

impl Chunk {
    fn execute(self) {
        let entered = IN_POOL_TASK.with(|f| f.replace(true));
        self.group.run_chunk(self.start, self.end);
        IN_POOL_TASK.with(|f| f.set(entered));
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker; owners pop the front, thieves pop the back.
    deques: Vec<Mutex<VecDeque<Chunk>>>,
    /// Queued (not yet claimed) chunks, for sleep/wake decisions.
    queued: AtomicUsize,
    /// Guards `shutdown`; workers sleep on `wake` when idle.
    sleep_mx: Mutex<bool>,
    wake: Condvar,
}

impl Shared {
    /// Claim a chunk: own deque front first, then steal from others'
    /// backs, scanning from `home + 1` so thieves spread out.
    fn claim(&self, home: usize) -> Option<Chunk> {
        let n = self.deques.len();
        for off in 0..n {
            let i = (home + off) % n;
            let mut dq = self.deques[i].lock().unwrap();
            let chunk = if off == 0 {
                dq.pop_front()
            } else {
                dq.pop_back()
            };
            if let Some(c) = chunk {
                let q = self.queued.fetch_sub(1, Ordering::AcqRel) - 1;
                obs::gauge("pool.queue.depth").set(q as f64);
                return Some(c);
            }
        }
        None
    }

    /// Claim a chunk belonging to `group_id` only (caller self-help: the
    /// calling thread must not start executing *other* groups, or an
    /// unrelated long task could pin an unrelated caller's latch open).
    fn claim_for_group(&self, group_id: u64) -> Option<Chunk> {
        for dq in &self.deques {
            let mut dq = dq.lock().unwrap();
            if let Some(pos) = dq.iter().rposition(|c| c.group.id == group_id) {
                let c = dq.remove(pos).unwrap();
                let q = self.queued.fetch_sub(1, Ordering::AcqRel) - 1;
                obs::gauge("pool.queue.depth").set(q as f64);
                return Some(c);
            }
        }
        None
    }

    fn push_chunks(&self, chunks: Vec<Chunk>, cursor: &AtomicUsize) {
        let n = chunks.len();
        let start = cursor.fetch_add(n, Ordering::Relaxed);
        for (k, chunk) in chunks.into_iter().enumerate() {
            let dq = (start + k) % self.deques.len();
            self.deques[dq].lock().unwrap().push_back(chunk);
        }
        let q = self.queued.fetch_add(n, Ordering::AcqRel) + n;
        obs::gauge("pool.queue.depth").set(q as f64);
        // Wake every sleeper: chunks were fanned across deques.
        let _guard = self.sleep_mx.lock().unwrap();
        self.wake.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, home: usize) {
    IN_POOL_TASK.with(|f| f.set(true));
    loop {
        if let Some(chunk) = shared.claim(home) {
            chunk.execute();
            continue;
        }
        let guard = shared.sleep_mx.lock().unwrap();
        if *guard {
            return; // shutdown
        }
        if shared.queued.load(Ordering::Acquire) == 0 {
            // Timed wait only as a belt-and-braces against missed wakeups;
            // the queued check under `sleep_mx` prevents the classic race.
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap();
        }
    }
}

/// A bounded work-stealing thread pool. See the crate docs for the
/// determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    push_cursor: AtomicUsize,
    group_ids: AtomicUsize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// A pool providing `threads`-way parallelism (the calling thread
    /// participates, so `threads - 1` workers are spawned). `Pool::new(1)`
    /// spawns nothing and runs every `parallel_map` sequentially inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let n_workers = threads - 1;
        let shared = Arc::new(Shared {
            deques: (0..n_workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
            sleep_mx: Mutex::new(false),
            wake: Condvar::new(),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scouts-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
            push_cursor: AtomicUsize::new(0),
            group_ids: AtomicUsize::new(1),
        }
    }

    /// The process-wide pool: `SCOUTS_POOL_THREADS` if set, otherwise the
    /// machine's available parallelism.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// The pool's total parallelism (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items` in parallel, returning results in input
    /// order. `f` must be a pure function of `(index, item)` for the
    /// crate-level determinism contract to hold; the pool itself
    /// guarantees it never exposes scheduling to `f`.
    ///
    /// Panics in `f` are propagated (after every in-flight item of the
    /// call has settled, so borrows never escape).
    ///
    /// # Soundness
    ///
    /// The item runner borrows `items`, `f`, and the result slots from
    /// this stack frame and is lifetime-erased to be storable on worker
    /// deques. Three facts keep that sound: (1) every queued chunk is
    /// claimed and executed exactly once — nothing cancels or drops
    /// queued chunks; (2) this frame does not return before the latch
    /// counts every item down, panic or not; (3) the erased closure
    /// captures only shared references, so a worker dropping its
    /// `Arc<Group>` late runs no user code.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let sequential = n <= 1 || self.threads == 1 || IN_POOL_TASK.with(|flag| flag.get());
        if sequential {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let _span = obs::span!("pool.parallel_map");
        obs::observe("pool.parallel_map.items", n as f64);

        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let run = {
            let slots = &slots;
            let f = &f;
            move |i: usize| {
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            }
        };
        // Lifetime erasure: see "Soundness" above.
        let run: Box<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<
                Box<dyn Fn(usize) + Send + Sync + '_>,
                Box<dyn Fn(usize) + Send + Sync + 'static>,
            >(Box::new(run))
        };
        let group = Arc::new(Group {
            run,
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
            done_mx: Mutex::new(false),
            done_cv: Condvar::new(),
            id: self.group_ids.fetch_add(1, Ordering::Relaxed) as u64,
            ctx: obs::trace::capture(),
        });

        // ≈4 chunks per thread: coarse enough to amortize queue traffic,
        // fine enough that stealing balances uneven items.
        let chunk = n.div_ceil(self.threads * 4).max(1);
        let chunks: Vec<Chunk> = (0..n)
            .step_by(chunk)
            .map(|start| Chunk {
                group: Arc::clone(&group),
                start,
                end: (start + chunk).min(n),
            })
            .collect();
        self.shared.push_chunks(chunks, &self.push_cursor);

        // The caller works too — restricted to its own group so an
        // unrelated caller's latch can never be pinned open by us.
        while !group.is_done() {
            match self.shared.claim_for_group(group.id) {
                Some(chunk) => chunk.execute(),
                None => group.wait(),
            }
        }
        if group.panicked.load(Ordering::Relaxed) {
            panic!("pool task panicked");
        }
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("pool slot filled"))
            .collect()
    }

    /// Fill disjoint `stride`-spaced regions of `out` in parallel, one
    /// region per item: `f(i, &items[i], region_i)` receives
    /// `out[i·stride .. min((i+1)·stride, out.len())]` as a mutable
    /// slice (the last region may be ragged). This is the in-place
    /// sibling of [`Pool::parallel_map`] for batch kernels that write
    /// into a shared contiguous arena — no per-item result `Vec`s, no
    /// `Mutex` slots, no gather copy — with the same determinism
    /// contract: regions are a pure function of `(i, item)`, disjoint by
    /// construction, and scheduling is never exposed to `f`.
    ///
    /// `items` must cover `out` exactly: `items.len() == 0` requires
    /// `out` empty, otherwise `(items.len() − 1)·stride < out.len() <=
    /// items.len()·stride`.
    pub fn parallel_fill<T, R, F>(&self, items: &[T], out: &mut [R], stride: usize, f: F)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &mut [R]) + Sync,
    {
        if items.is_empty() {
            assert!(out.is_empty(), "no items to fill a non-empty output");
            return;
        }
        assert!(stride > 0, "stride must be positive");
        assert!(
            (items.len() - 1) * stride < out.len() && out.len() <= items.len() * stride,
            "items ({}) x stride ({stride}) must cover out ({}) exactly",
            items.len(),
            out.len()
        );
        // A raw-pointer wrapper makes the arena base shareable across
        // workers; each task reconstitutes only its own region.
        struct SendPtr<R>(*mut R);
        unsafe impl<R: Send> Send for SendPtr<R> {}
        unsafe impl<R: Send> Sync for SendPtr<R> {}
        let len = out.len();
        let base = SendPtr(out.as_mut_ptr());
        // Capture the wrapper by reference (not its raw-pointer field,
        // which edition-2021 disjoint capture would otherwise pull out,
        // losing the Sync impl).
        let base = &base;
        self.parallel_map(items, |i, item| {
            let start = (i * stride).min(len);
            let end = (start + stride).min(len);
            // SAFETY: regions [i·stride, (i+1)·stride) are pairwise
            // disjoint sub-slices of `out`, each touched by exactly one
            // task, and `parallel_map` does not return before every task
            // has settled — so no aliasing and no escape of the borrow.
            let region = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(i, item, region);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut shutdown = self.shared.sleep_mx.lock().unwrap();
            *shutdown = true;
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Thread count for the global pool: `SCOUTS_POOL_THREADS` (clamped to
/// `1..=256`) or the machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 256);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = pool.parallel_map(&items, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_worker_counts() {
        let items: Vec<u64> = (0..57).collect();
        let f = |_: usize, &v: &u64| v.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let baseline = Pool::new(1).parallel_map(&items, f);
        for threads in [2, 4, 8] {
            assert_eq!(Pool::new(threads).parallel_map(&items, f), baseline);
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.parallel_map(&empty, |_, &v| v).is_empty());
        assert_eq!(pool.parallel_map(&[41], |_, &v| v + 1), vec![42]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let pool = Pool::new(4);
        let out = pool.parallel_map(&[10usize, 20, 30], |_, &v| {
            // Nested map on the same pool must not deadlock.
            let inner: Vec<usize> = (0..v).collect();
            pool.parallel_map(&inner, |_, &w| w).iter().sum::<usize>()
        });
        assert_eq!(out, vec![45, 190, 435]);
    }

    #[test]
    fn concurrent_groups_do_not_interfere() {
        let pool = Arc::new(Pool::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let items: Vec<u64> = (0..200).map(|i| i + t * 1000).collect();
                let out = pool.parallel_map(&items, |_, &v| v + 1);
                assert_eq!(out, items.iter().map(|v| v + 1).collect::<Vec<_>>());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn panics_propagate_without_hanging() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map(&items, |_, &v| {
                if v == 33 {
                    panic!("boom");
                }
                v
            })
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.parallel_map(&[1, 2], |_, &v| v * 10), vec![10, 20]);
    }

    #[test]
    fn heavy_uneven_items_are_balanced() {
        // Items with wildly different costs; stealing must still return
        // everything in order.
        let pool = Pool::new(8);
        let items: Vec<u64> = (0..40)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let out = pool.parallel_map(&items, |i, &spins| {
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        let seq = Pool::new(1).parallel_map(&items, |i, &spins| {
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out, seq);
    }

    #[test]
    fn parallel_fill_covers_ragged_tails_identically() {
        // 7 regions of stride 5 over 33 slots: last region is ragged (3).
        let items: Vec<usize> = (0..7).collect();
        let fill = |pool: &Pool| {
            let mut out = vec![0u64; 33];
            pool.parallel_fill(&items, &mut out, 5, |i, &item, region| {
                assert_eq!(region.len(), if i == 6 { 3 } else { 5 });
                for (k, slot) in region.iter_mut().enumerate() {
                    *slot = (item as u64) * 100 + k as u64;
                }
            });
            out
        };
        let baseline = fill(&Pool::new(1));
        assert_eq!(baseline[5..10], [100, 101, 102, 103, 104]);
        assert_eq!(&baseline[30..], [600, 601, 602]);
        for threads in [2, 4, 8] {
            assert_eq!(fill(&Pool::new(threads)), baseline);
        }
    }

    #[test]
    fn parallel_fill_empty_is_a_noop() {
        let pool = Pool::new(4);
        let items: Vec<usize> = Vec::new();
        let mut out: Vec<u64> = Vec::new();
        pool.parallel_fill(&items, &mut out, 8, |_, _, _| unreachable!());
    }

    #[test]
    #[should_panic(expected = "must cover out")]
    fn parallel_fill_rejects_uncovered_output() {
        let pool = Pool::new(2);
        let mut out = vec![0u64; 20];
        pool.parallel_fill(&[1, 2], &mut out, 5, |_, _, _| {});
    }

    #[test]
    fn global_pool_is_shared_and_bounded() {
        let p1 = Pool::global();
        let p2 = Pool::global();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.threads() >= 1);
        let out = p1.parallel_map(&[5u32, 6, 7], |_, &v| v * v);
        assert_eq!(out, vec![25, 36, 49]);
    }
}
