//! `scoutctl` — command-line front end for the Scouts reproduction.
//!
//! ```text
//! scoutctl check-config <file>        validate a Scout configuration file
//! scoutctl simulate [opts]            generate a workload, print §3 stats
//! scoutctl train-eval [opts]          train the PhyNet Scout, print metrics
//! scoutctl classify [opts] <file|->   train, then classify incident text
//!
//! common options:
//!   --seed N               workload seed            (default 42)
//!   --faults-per-day F     fault density            (default 4)
//!   --config FILE          Scout config             (default built-in PhyNet)
//!   --team NAME            team the Scout answers for (default PhyNet)
//!   --at MINUTES           incident timestamp for classify (default: last
//!                          fault's window)
//! ```

mod args;
mod stormtraffic;

use args::{ArgError, Args};
use cloudsim::{SimTime, Team};
use incident::study::StudyReport;
use incident::{Workload, WorkloadConfig};
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig, Verdict};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scoutctl: {e}");
            eprintln!("run `scoutctl help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), ArgError> {
    // Expand the conventional short aliases before parsing.
    let raw: Vec<String> = raw
        .into_iter()
        .map(|a| match a.as_str() {
            "-h" => "--help".to_string(),
            "-V" => "--version".to_string(),
            other => other.to_string(),
        })
        .collect();
    let args = Args::parse(
        raw,
        &[
            "verbose",
            "help",
            "version",
            "lifecycle",
            "inject-regression",
            "no-snapshot",
        ],
    )?;
    // Help and version are answered before any command dispatch, so
    // `scoutctl --help` and `scoutctl <cmd> --help` both work.
    if args.flag("version") {
        println!("scoutctl {}", env!("CARGO_PKG_VERSION"));
        return Ok(());
    }
    if args.flag("help") || args.positional(0).is_none() || args.positional(0) == Some("help") {
        print!("{}", USAGE);
        return Ok(());
    }
    if args.flag("verbose") {
        eprintln!(
            "[scoutctl] {} positional argument(s)",
            args.positional_count()
        );
    }
    let observing = setup_obs(&args)?;
    let result = match args.positional(0) {
        None | Some("help") => {
            print!("{}", USAGE);
            Ok(())
        }
        Some("check-config") => check_config(&args),
        Some("simulate") => simulate(&args),
        Some("train-eval") => train_eval(&args),
        Some("classify") => classify(&args),
        Some("stats") => stats(&args),
        Some("lifecycle") => lifecycle_cmd(&args),
        Some("serve") => serve_cmd(&args),
        Some("loadgen") => loadgen(&args),
        Some("fleetgen") => fleetgen(&args),
        Some("stormgen") => stormgen(&args),
        Some("probe") => probe(&args),
        Some("flight") => flight_cmd(&args),
        Some("wal") => wal_cmd(&args),
        Some(other) => Err(ArgError(format!("unknown command '{other}'"))),
    };
    if observing {
        finish_obs(&args)?;
    }
    result
}

/// Install JSONL sinks and enable collection when any observability
/// option (`--trace`, `--metrics`, `--audit`) is present, or when the
/// command is `stats` (whose whole point is the metrics report).
fn setup_obs(args: &Args) -> Result<bool, ArgError> {
    let observing = args.get("trace").is_some()
        || args.get("metrics").is_some()
        || args.get("audit").is_some()
        || args.positional(0) == Some("stats");
    if !observing {
        return Ok(false);
    }
    let rotate_mb = args.get_parsed("rotate-mb", 0u64)?;
    let rotate_keep = args.get_parsed("rotate-keep", 3usize)?;
    if let Some(path) = args.get("trace") {
        let sink = jsonl_sink(path, rotate_mb, rotate_keep)
            .map_err(|e| ArgError(format!("cannot create trace file {path}: {e}")))?;
        obs::global().set_trace_sink(Some(sink));
    }
    if let Some(path) = args.get("audit") {
        let sink = jsonl_sink(path, rotate_mb, rotate_keep)
            .map_err(|e| ArgError(format!("cannot create audit file {path}: {e}")))?;
        obs::global().set_audit_sink(Some(sink));
    }
    obs::enable();
    Ok(true)
}

/// A plain JSONL sink, or a size-rotated one when `--rotate-mb` is set.
/// Rotated sinks reopen in append mode (truncating any torn final line a
/// crashed predecessor left) so a restarted server continues the same
/// trace/audit files instead of clobbering them.
fn jsonl_sink(
    path: &str,
    rotate_mb: u64,
    rotate_keep: usize,
) -> std::io::Result<Box<dyn obs::Sink>> {
    if rotate_mb > 0 {
        let sink = obs::RotatingJsonlSink::open_append(path, rotate_mb * 1024 * 1024, rotate_keep)?;
        Ok(Box::new(sink))
    } else {
        Ok(Box::new(obs::JsonlSink::create(path)?))
    }
}

/// Flush sinks and write the metrics JSONL report, if requested.
fn finish_obs(args: &Args) -> Result<(), ArgError> {
    obs::disable();
    let collector = obs::global();
    collector.flush();
    collector.set_trace_sink(None);
    collector.set_audit_sink(None);
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, obs::sink::render_metrics_jsonl(&collector.metrics))
            .map_err(|e| ArgError(format!("cannot write metrics file {path}: {e}")))?;
        eprintln!("[scoutctl] metrics written to {path}");
    }
    Ok(())
}

const USAGE: &str = "\
scoutctl — domain-customized incident routing (Scouts, SIGCOMM 2020)

commands:
  check-config <file>      validate a Scout configuration file
  simulate                 generate a synthetic workload, print §3 statistics
  train-eval               train a Scout on the workload, print accuracy
  classify <file|->        train a Scout, then classify incident text
  stats                    run the full pipeline, print the metrics summary
  lifecycle                replay the continual-learning loop against scripted
                           incident drift, print the promotion/rollback log
  serve                    run the online incident-routing HTTP server
  loadgen                  drive a running server, print throughput and latency
  fleetgen                 replay the multi-team incident trace through a
                           running fleet's /v1/route, print throughput and
                           routing accuracy (CI gate via --min-accuracy)
  stormgen                 replay an adversarial alert storm (duplicate
                           bursts, gray failures, cascades, mid-stream
                           monitoring deprecation) against /v1/route and
                           report how the storm-control layer held up
  probe                    send one request to a running server (CI smoke)
  flight                   fetch a running server's flight-recorder ring (JSONL)
  wal replay               reconstruct serving state from a write-ahead log

options:
  --help, -h               print this help
  --version, -V            print the scoutctl version
  --seed N                 workload seed (default 42)
  --faults-per-day F       fault density (default 4)
  --config FILE            Scout config file (default: built-in PhyNet)
  --team NAME              label team: PhyNet|Storage|Compute|… (default PhyNet)
  --at MINUTES             classify: incident time in minutes since epoch
  --save FILE              train-eval: save the trained Scout model
  --model FILE             classify: load a saved model instead of training

lifecycle options:
  --horizon-days D         replay horizon (default 240; the scripted drift
                           switches fault families at days 120 and 150)
  --train-days D           frozen model's training prefix (default 100)
  --tick-days D            controller tick interval (default 5)
  --inject-regression      force-publish a label-poisoned model mid-replay to
                           demonstrate probation and automatic rollback

serve options:
  --addr HOST:PORT         listen address (default 127.0.0.1:7777; port 0 = any)
  --lifecycle              attach the continual-learning controller: feedback
                           from POST /v1/feedback drives drift detection,
                           shadow-gated retrains, and rollback
  --feedback-cap N         bound on served predictions awaiting feedback and on
                           the controller's labeled stream (default 8192)
  --model-dir DIR          load every *.scout in DIR (team = file stem) instead
                           of training at startup; also enables
                           POST /v1/models/reload
  --batch-size N           max predict requests per inference batch (default 32)
  --batch-deadline-ms MS   how long an open batch waits for more (default 2)
  --queue-cap N            max outstanding requests before shedding (default 64)
  --max-connections N      max concurrent connections (default 128)
  --feat-cache-mb MB       per-model feature-chunk cache budget (default 64;
                           0 disables caching)
  --max-runtime-secs S     stop after S seconds (default: run until killed)
  --trace-sample N         flight-record 1 in N minted traces (default 64;
                           0 = never, 1 = every request; an incoming
                           X-Trace-Id header is always recorded)
  --flight-dir DIR         dump the flight-recorder ring into DIR on anomaly
                           (shed burst, deadline miss, rollback, SLO burn)
  --wal-dir DIR            event-source every serving-state mutation into a
                           write-ahead log under DIR; on startup, recover the
                           pre-crash state from it (latest snapshot + log tail,
                           torn final frame tolerated) and write the recovered
                           projection to DIR/recovered.json
  --wal-sync MODE          WAL durability: always (fsync per append), group
                           (batched fsync, the default), or os (no fsync)
  --wal-segment-mb MB      rotate WAL segments at MB megabytes (default 8)
  --wal-snapshot-every N   write a snapshot every N events (default 4096;
                           0 disables snapshots)
  --fleet-shards N         worker groups for the /v1/route fan-out (default:
                           SCOUTS_FLEET_SHARDS env, else 4); teams are
                           rendezvous-hashed so add/remove never reshuffles
  --fleet-suggestions K    top-k suggestions in /v1/route responses (default 3)
  --fleet-fail-teams A,B   inject per-team Scout failures (case-insensitive)
                           to exercise the degrade-gracefully path
  --synthetic-teams N      instead of one trained Scout, register N synthetic
                           per-team Scouts (nine trained base models, one
                           shared featurization pass, replicas beyond nine
                           reuse their base model) with the matching
                           dependency graph — the fleet the benches and
                           smoke tests route against
  --storm-control on|off   alert-storm control in front of /v1/route: dedup,
                           per-source throttling, Sev3 coalescing, per-team
                           circuit breakers (default on; byte-invisible to
                           non-storm traffic — off is the bench baseline)
  --storm-dedup-window-ms MS, --storm-rate N, --storm-burst N,
  --storm-batch N, --storm-breaker-threshold N
                           storm-control tuning (defaults: 60000 ms window,
                           50 alerts/s + burst 100 per source, batch 16,
                           breaker trips after 5 consecutive failures)

loadgen options:
  --addr HOST:PORT         server to drive (required)
  --requests N             total requests (default 200)
  --concurrency N          concurrent connections (default 4)
  --endpoint predict|route what to exercise (default predict)
  --team NAME              predict: team to query (default PhyNet)
  --text STRING            incident text to send
  --retries N              on 429/503, honor Retry-After and retry up to N
                           times (default 0)

fleetgen options:
  --addr HOST:PORT         fleet server to drive (required)
  --requests N             incidents to replay (default 200)
  --concurrency N          concurrent connections (default 4)
  --seed N, --faults-per-day F
                           regenerate the server's workload (must match the
                           serve invocation for ground-truth owners to line up)
  --min-accuracy F         exit non-zero if routing accuracy drops below F
  --max-unmapped N         exit non-zero if serve.route.unmapped exceeds N
  --retries N              on 429/503, honor Retry-After and retry up to N
  --storm SCENARIO         run an adversarial storm preset (same shaping core
                           as stormgen) concurrently with the measured replay:
                           duplicate-burst | gray-failure | cascade |
                           deprecation

stormgen options:
  --addr HOST:PORT         fleet server to storm (required)
  --scenario NAME          duplicate-burst (default) | gray-failure |
                           cascade | deprecation
  --amplification N        near-duplicate firings per root fault (default 100)
  --background N           interleaved non-storm control shots (default 40)
  --sources N              distinct alert sources (default 3)
  --roots N                root faults in the storm window (default 3)
  --retries N              on 429/503, honor Retry-After and retry up to N
  --deprecate-dataset NAME data set to kill mid-storm (default snmp-syslog;
                           deprecation scenario only)
  --max-5xx N              exit non-zero if server-error responses exceed N
                           (default 0 — storms must degrade, never error)

probe options:
  --addr HOST:PORT         server to probe (required)
  --path PATH              endpoint (default /healthz)
  --body JSON              send a POST with this body instead of a GET
  --expect-field NAME      fail unless the JSON response has this field
  --trace-id HEX           send X-Trace-Id (always sampled; echoed back)

flight options:
  --addr HOST:PORT         server whose flight ring to fetch (required)
  --out FILE               write the JSONL dump to FILE instead of stdout

wal replay options:
  --wal-dir DIR            the log to replay (required)
  --until N                stop after sequence number N (time-travel debugging)
  --no-snapshot            replay every event from genesis instead of starting
                           at the latest snapshot (verifies snapshot integrity
                           when diffed against a snapshot-based replay)

observability (any command):
  --trace FILE             write span events (JSONL) to FILE
  --metrics FILE           write final counter/gauge/histogram values (JSONL)
  --audit FILE             write one prediction-audit record (JSONL) per
                           Scout prediction
  --rotate-mb MB           rotate --trace/--audit files at MB megabytes
                           (default 0 = never rotate)
  --rotate-keep N          rotated generations to keep (default 3)
";

fn check_config(args: &Args) -> Result<(), ArgError> {
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("check-config needs a file path".into()))?;
    let source =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    match ScoutConfig::parse(&source) {
        Ok(cfg) => {
            println!(
                "OK: {} extraction patterns, {} monitoring declarations, {} exclusion rules",
                cfg.patterns.len(),
                cfg.monitoring.len(),
                cfg.excludes.len()
            );
            Ok(())
        }
        Err(e) => Err(ArgError(format!("{path}: {e}"))),
    }
}

fn load_world(args: &Args) -> Result<Workload, ArgError> {
    let seed = args.get_parsed("seed", 42u64)?;
    let faults_per_day = args.get_parsed("faults-per-day", 4.0f64)?;
    let mut config = WorkloadConfig {
        seed,
        ..WorkloadConfig::default()
    };
    config.faults.faults_per_day = faults_per_day;
    eprintln!("[scoutctl] generating workload (seed {seed}, {faults_per_day} faults/day)…");
    Ok(Workload::generate(config))
}

fn load_config(args: &Args) -> Result<ScoutConfig, ArgError> {
    match args.get("config") {
        None => Ok(ScoutConfig::phynet()),
        Some(path) => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            ScoutConfig::parse(&source).map_err(|e| ArgError(e.to_string()))
        }
    }
}

fn load_team(args: &Args) -> Result<Team, ArgError> {
    let name = args.get("team").unwrap_or("PhyNet");
    Team::ALL
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| ArgError(format!("unknown team '{name}'")))
}

fn simulate(args: &Args) -> Result<(), ArgError> {
    let world = load_world(args)?;
    let r = StudyReport::compute(&world);
    println!(
        "incidents: {} (from {} faults)",
        world.len(),
        world.faults.len()
    );
    println!(
        "mis-routed median slowdown: {:.1}x; PhyNet pass-through mis-route rate: {:.0}%",
        r.misrouted_slowdown,
        100.0 * r.phynet_passthrough_fraction
    );
    println!(
        "teams per PhyNet-resolved incident: mean {:.1}, max {}",
        r.phynet_teams_mean, r.phynet_teams_max
    );
    println!(
        "wasted investigation hours/day: {:.1}",
        r.wasted_hours_per_day
    );
    Ok(())
}

/// Train a Scout for `team` on the first two-thirds of the workload.
fn train_scout(
    world: &Workload,
    config: ScoutConfig,
    team: Team,
) -> (
    Scout,
    scout::scout::PreparedCorpus,
    Vec<usize>,
    MonitoringSystem<'_>,
) {
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let examples: Vec<Example> = world
        .incidents
        .iter()
        .map(|i| Example::new(i.text(), i.created_at, i.owner == team))
        .collect();
    let build = ScoutBuildConfig::default();
    // A throwaway chunk cache: examples near each other in time share
    // look-back chunks, and the featcache.* counters it feeds surface in
    // `scoutctl stats` / `--metrics` output.
    let feat_cache = featcache::FeatCache::new(64 * 1024 * 1024);
    let corpus = Scout::prepare_cached(&config, &build, &examples, &mon, Some(&feat_cache));
    let cutoff = SimTime::from_days(180);
    let train: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time < cutoff)
        .collect();
    let test: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time >= cutoff)
        .collect();
    let scout = Scout::train_prepared(config, build, &corpus, &train, &mon);
    (scout, corpus, test, mon)
}

/// Train and register `n` synthetic per-team Scouts in **one**
/// featurization pass: featurization is label-independent, so the
/// prepared corpus is relabeled per base team ("is this team
/// responsible?") and each base Scout trains from the shared features.
/// Replicas beyond the nine internal base teams reuse the base team's
/// trained model (round-tripped through the text format so every
/// registry entry is independent), named by the same scheme as
/// [`cloudsim::DependencyGraph::synthetic_fleet`].
fn register_synthetic_fleet(
    world: &Workload,
    config: ScoutConfig,
    n: usize,
    registry: &serve::ModelRegistry,
) -> Result<(), ArgError> {
    let bases: Vec<Team> = cloudsim::TeamRegistry::new().internal_teams().collect();
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let examples: Vec<Example> = world
        .incidents
        .iter()
        .map(|i| Example::new(i.text(), i.created_at, false))
        .collect();
    let owners: Vec<Team> = world.incidents.iter().map(|i| i.owner).collect();
    let build = ScoutBuildConfig::default();
    let feat_cache = featcache::FeatCache::new(64 * 1024 * 1024);
    eprintln!(
        "[scoutctl] featurizing {} incidents once for {n} synthetic Scouts…",
        examples.len()
    );
    let corpus = Scout::prepare_cached(&config, &build, &examples, &mon, Some(&feat_cache));
    let cutoff = SimTime::from_days(180);
    let active_bases = bases.len().min(n);
    let mut base_models: Vec<String> = Vec::with_capacity(active_bases);
    for base in bases.iter().take(active_bases) {
        let relabeled = corpus.relabeled(|i, _| owners[i] == *base);
        let train: Vec<usize> = relabeled
            .trainable_indices()
            .into_iter()
            .filter(|&i| relabeled.items[i].example.time < cutoff)
            .collect();
        let scout = Scout::train_prepared(config.clone(), build.clone(), &relabeled, &train, &mon);
        base_models.push(scout.to_text());
    }
    for i in 0..n {
        let base = bases[i % bases.len()];
        let name = cloudsim::synthetic_team_name(base, i / bases.len());
        let scout = Scout::from_text(&base_models[i % bases.len()])
            .map_err(|e| ArgError(format!("synthetic Scout round-trip failed: {e}")))?;
        registry
            .register(&name, scout, "synthetic-fleet")
            .expect("startup registration cannot hit a pin");
    }
    eprintln!("[scoutctl] registered {n} synthetic Scouts ({active_bases} trained base model(s))");
    Ok(())
}

fn train_eval(args: &Args) -> Result<(), ArgError> {
    let world = load_world(args)?;
    let config = load_config(args)?;
    let team = load_team(args)?;
    let (scout, corpus, test, mon) = train_scout(&world, config, team);
    let confusion = scout.evaluate(&corpus, &test, &mon);
    println!(
        "{team} Scout on the last 90 days ({} incidents): {}",
        test.len(),
        confusion.metrics()
    );
    if let Some(path) = args.get("save") {
        scout
            .save(std::path::Path::new(path))
            .map_err(|e| ArgError(format!("cannot save {path}: {e}")))?;
        println!("model saved to {path}");
    }
    Ok(())
}

/// Exercise the whole pipeline once — workload generation, Scout
/// training, held-out evaluation, and the scout-master simulations —
/// then print the collected metrics summary.
fn stats(args: &Args) -> Result<(), ArgError> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scoutmaster::{ImperfectParams, PerfectScoutSim};

    let world = load_world(args)?;
    let config = load_config(args)?;
    let team = load_team(args)?;
    let (scout, corpus, test, mon) = train_scout(&world, config, team);
    let confusion = scout.evaluate(&corpus, &test, &mon);
    println!(
        "{team} Scout on the last 90 days ({} incidents): {}",
        test.len(),
        confusion.metrics()
    );

    let pairs = || world.incidents.iter().zip(world.traces.iter());
    let pooled = PerfectScoutSim::pooled_reductions(pairs(), 2);
    if !pooled.is_empty() {
        let mean = pooled.iter().sum::<f64>() / pooled.len() as f64;
        println!(
            "perfect-scout sim (2 scouts): mean reduction {:.0}% over {} incident-assignments",
            100.0 * mean,
            pooled.len()
        );
    }
    let best = PerfectScoutSim::best_possible(pairs());
    if !best.is_empty() {
        let mean = best.iter().sum::<f64>() / best.len() as f64;
        println!("best-possible sim: mean reduction {:.0}%", 100.0 * mean);
    }
    let mut rng = SmallRng::seed_from_u64(args.get_parsed("seed", 42u64)?);
    let imp = PerfectScoutSim::imperfect(
        pairs(),
        ImperfectParams {
            alpha: 0.9,
            beta: 0.05,
            n_scouts: 2,
        },
        &mut rng,
    );
    println!(
        "imperfect-scout sim (α=0.90, β=0.05, 2 scouts): mean {:.0}%, p95 {:.0}%",
        100.0 * imp.mean,
        100.0 * imp.p95
    );
    println!();
    print!("{}", obs::global().summary());
    Ok(())
}

fn classify(args: &Args) -> Result<(), ArgError> {
    let source = args
        .positional(1)
        .ok_or_else(|| ArgError("classify needs a file path or '-'".into()))?;
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| ArgError(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(source)
            .map_err(|e| ArgError(format!("cannot read {source}: {e}")))?
    };
    let world = load_world(args)?;
    let config = load_config(args)?;
    let team = load_team(args)?;
    let default_at = world
        .incidents
        .last()
        .map(|i| i.created_at.minutes())
        .unwrap_or(0);
    let at = SimTime(args.get_parsed("at", default_at)?);
    let (scout, mon) = match args.get("model") {
        Some(path) => {
            let scout = Scout::load(std::path::Path::new(path))
                .map_err(|e| ArgError(format!("cannot load model {path}: {e}")))?;
            let mon =
                MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
            eprintln!("[scoutctl] loaded model from {path}");
            (scout, mon)
        }
        None => {
            let (scout, _, _, mon) = train_scout(&world, config, team);
            (scout, mon)
        }
    };
    let pred = scout.predict(&text, at, &mon);
    match pred.verdict {
        Verdict::Responsible => println!("verdict: ROUTE TO {team}"),
        Verdict::NotResponsible => println!("verdict: route away from {team}"),
        Verdict::Fallback => println!("verdict: no components found — use legacy routing"),
    }
    println!("model: {:?}, confidence {:.2}", pred.model, pred.confidence);
    println!();
    println!(
        "{}",
        pred.explanation
            .render(team.name(), pred.says_responsible(), pred.confidence)
    );
    Ok(())
}

// ---------- continual learning ----------

/// `scoutctl lifecycle`: replay the closed continual-learning loop
/// against `cloudsim`'s scripted drift. A model frozen before the drift
/// serves a drifting incident stream; every resolution is fed back to
/// the controller, which detects the degradation, retrains, shadow-
/// gates, promotes, and (with `--inject-regression`) rolls a poisoned
/// operator override back. Prints the event log plus a final
/// frozen-vs-adaptive comparison.
fn lifecycle_cmd(args: &Args) -> Result<(), ArgError> {
    use incident::Incident;
    use lifecycle::{Feedback, LifecycleConfig, LifecycleController, LifecycleEvent};
    use ml::forest::ForestConfig;
    use serve::ModelRegistry;
    use std::sync::Arc;

    let seed = args.get_parsed("seed", 42u64)?;
    let faults_per_day = args.get_parsed("faults-per-day", 2.5f64)?;
    let horizon_days = args.get_parsed("horizon-days", 240u64)?;
    let train_days = args.get_parsed("train-days", 100u64)?.min(horizon_days);
    let tick_days = args.get_parsed("tick-days", 5u64)?.max(1);
    let team = load_team(args)?;
    let scout_config = load_config(args)?;

    let mut config = WorkloadConfig {
        seed,
        ..WorkloadConfig::default()
    };
    config.faults.faults_per_day = faults_per_day;
    config.faults.horizon = cloudsim::SimDuration::days(horizon_days);
    config.faults.drift = true;
    eprintln!(
        "[scoutctl] generating drifting workload (seed {seed}, {faults_per_day} faults/day, {horizon_days} days)…"
    );
    let world = Workload::generate(config);
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let build = ScoutBuildConfig {
        forest: ForestConfig {
            n_trees: 8,
            ..ForestConfig::default()
        },
        cluster_train_cap: 10,
        ..ScoutBuildConfig::default()
    };

    let train_prefix = |label: &dyn Fn(&Incident) -> bool| -> Scout {
        let cutoff = SimTime::from_days(train_days);
        let examples: Vec<Example> = world
            .incidents
            .iter()
            .filter(|i| i.created_at < cutoff)
            .map(|i| Example::new(i.text(), i.created_at, label(i)))
            .collect();
        let corpus = Scout::prepare(&scout_config, &build, &examples, &mon);
        let train = corpus.trainable_indices();
        Scout::train_prepared(scout_config.clone(), build.clone(), &corpus, &train, &mon)
    };

    eprintln!("[scoutctl] training the frozen {team} model on days 0..{train_days}…");
    let frozen = train_prefix(&|i| i.owner == team);
    // A second copy of the frozen model for the end-of-replay
    // comparison (Scout is deliberately not Clone).
    let frozen_text = frozen.to_text();
    let frozen = Scout::from_text(&frozen_text).expect("model text round-trips");
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry
        .register(
            team.name(),
            Scout::from_text(&frozen_text).expect("model text round-trips"),
            "frozen-pre-drift",
        )
        .expect("fresh registry has no pins");
    println!("day {:>6.1}  serving frozen model v{v1}", train_days as f64);

    let mut controller = LifecycleController::new(
        LifecycleConfig::new(team.name(), scout_config.clone(), build.clone()),
        Arc::clone(&registry),
    );

    let end = SimTime::from_days(horizon_days);
    let inject_at = SimTime::from_days((train_days + horizon_days) / 2);
    let mut injected = false;
    let mut chunk_start = SimTime::from_days(train_days);
    let mut ordinal = 0u64;
    let mut replayed = 0usize;
    while chunk_start < end {
        let chunk_end = SimTime((chunk_start.0 + tick_days * 1440).min(end.0));
        if args.flag("inject-regression") && !injected && chunk_start >= inject_at {
            injected = true;
            let poisoned = train_prefix(&|i| i.owner != team);
            let v = registry
                .register(team.name(), poisoned, "operator-override")
                .expect("no pins in this replay");
            println!(
                "day {:>6.1}  injecting label-poisoned model v{v} (operator override)",
                chunk_start.0 as f64 / 1440.0
            );
        }
        let entry = registry.get(team.name()).expect("model always registered");
        let batch: Vec<&Incident> = world
            .incidents
            .iter()
            .filter(|i| i.created_at >= chunk_start && i.created_at < chunk_end)
            .collect();
        let texts: Vec<String> = batch.iter().map(|i| i.text()).collect();
        let inputs: Vec<(&str, SimTime)> = texts
            .iter()
            .zip(&batch)
            .map(|(t, i)| (t.as_str(), i.created_at))
            .collect();
        let preds = entry
            .scout
            .predict_many_cached(&inputs, &mon, Some(&entry.feat_cache));
        replayed += batch.len();
        for ((incident, text), pred) in batch.iter().zip(texts).zip(&preds) {
            ordinal += 1;
            controller.ingest(Feedback {
                incident: ordinal,
                text,
                time: incident.created_at,
                predicted: pred.says_responsible(),
                label: incident.owner == team,
                model_version: entry.version,
            });
        }
        for event in controller.tick(chunk_end, &mon) {
            println!("{event}");
        }
        chunk_start = chunk_end;
    }

    println!(
        "replayed {replayed} incidents over days {train_days}..{horizon_days} (tick {tick_days}d)"
    );
    let final_version = registry.version_of(team.name()).unwrap_or(0);
    println!("final serving version: v{final_version}");

    let first_promotion = controller.events().iter().find_map(|e| match e {
        LifecycleEvent::Promoted { at, .. } => Some(*at),
        _ => None,
    });
    match first_promotion {
        None => println!("no promotion occurred"),
        Some(promoted_at) => {
            let adaptive = controller.store().confusion_in(promoted_at, end);
            let batch: Vec<&Incident> = world
                .incidents
                .iter()
                .filter(|i| i.created_at >= promoted_at && i.created_at < end)
                .collect();
            let texts: Vec<String> = batch.iter().map(|i| i.text()).collect();
            let inputs: Vec<(&str, SimTime)> = texts
                .iter()
                .zip(&batch)
                .map(|(t, i)| (t.as_str(), i.created_at))
                .collect();
            let mut frozen_conf = ml::metrics::Confusion::default();
            for (incident, pred) in batch
                .iter()
                .zip(frozen.predict_many_cached(&inputs, &mon, None))
            {
                frozen_conf.record(incident.owner == team, pred.says_responsible());
            }
            println!(
                "post-promotion (day {:.1} on, {} incidents): adaptive mcc {:.3} vs frozen mcc {:.3}",
                promoted_at.0 as f64 / 1440.0,
                adaptive.total(),
                adaptive.mcc(),
                frozen_conf.mcc()
            );
        }
    }
    Ok(())
}

// ---------- online serving ----------

/// Open (and recover) the serve WAL from `--wal-*` flags. Writes the
/// recovered projection to `DIR/recovered.json` before any new event is
/// appended, so crash-recovery harnesses can diff it against an offline
/// replay of the same prefix; stamps a fresh log with `Event::Init`.
fn open_wal(
    args: &Args,
    dir: &str,
    feedback_cap: usize,
) -> Result<std::sync::Arc<wal::Wal>, ArgError> {
    let mut cfg = wal::WalConfig::new(dir);
    cfg.sync = match args.get("wal-sync").unwrap_or("group") {
        "always" => wal::SyncPolicy::Always,
        "group" => wal::SyncPolicy::group_default(),
        "os" => wal::SyncPolicy::Os,
        other => {
            return Err(ArgError(format!(
                "unknown --wal-sync '{other}' (expected always|group|os)"
            )))
        }
    };
    cfg.segment_bytes = args.get_parsed("wal-segment-mb", 8u64)? * 1024 * 1024;
    cfg.snapshot_every = args.get_parsed("wal-snapshot-every", 4096u64)?;
    let w = wal::Wal::open(cfg).map_err(|e| ArgError(format!("cannot open WAL in {dir}: {e}")))?;
    let recovered = w.render_state();
    std::fs::write(
        std::path::Path::new(dir).join("recovered.json"),
        format!("{recovered}\n"),
    )
    .map_err(|e| ArgError(format!("cannot write {dir}/recovered.json: {e}")))?;
    if w.seq() == 0 {
        w.append(&wal::Event::Init {
            served_cap: feedback_cap as u64,
            feedback_cap: feedback_cap as u64,
        })
        .map_err(|e| ArgError(format!("WAL init append: {e}")))?;
        eprintln!("[scoutctl] WAL started fresh in {dir}");
    } else {
        eprintln!(
            "[scoutctl] WAL recovered to seq {} from {dir} (state in recovered.json)",
            w.seq()
        );
    }
    Ok(std::sync::Arc::new(w))
}

/// `scoutctl wal replay`: reconstruct the serving state a log describes,
/// print the canonical single-line JSON projection. `--until N` stops
/// after sequence `N` (time travel); `--no-snapshot` forces a
/// from-genesis replay even when snapshots exist.
fn wal_cmd(args: &Args) -> Result<(), ArgError> {
    match args.positional(1) {
        Some("replay") => {
            let dir = args
                .get("wal-dir")
                .ok_or_else(|| ArgError("wal replay needs --wal-dir DIR".into()))?;
            let until = match args.get("until") {
                Some(_) => Some(args.get_parsed("until", 0u64)?),
                None => None,
            };
            let proj = wal::replay_dir(std::path::Path::new(dir), until, !args.flag("no-snapshot"))
                .map_err(|e| ArgError(format!("replay of {dir} failed: {e}")))?;
            println!("{}", proj.render());
            Ok(())
        }
        Some(other) => Err(ArgError(format!(
            "unknown wal subcommand '{other}' (expected replay)"
        ))),
        None => Err(ArgError("wal needs a subcommand: replay".into())),
    }
}

/// `scoutctl serve`: start the online incident-routing server.
fn serve_cmd(args: &Args) -> Result<(), ArgError> {
    use serve::{Engine, ModelRegistry, ServeConfig, Server};
    use std::io::Write as _;
    use std::sync::Arc;

    let addr = args.get("addr").unwrap_or("127.0.0.1:7777");
    let world = Arc::new(load_world(args)?);
    let feat_cache_mb = args.get_parsed("feat-cache-mb", 64usize)?;
    let registry = Arc::new(ModelRegistry::with_feat_cache_bytes(
        feat_cache_mb * 1024 * 1024,
    ));
    let feedback_cap = args.get_parsed("feedback-cap", serve::feedback::DEFAULT_SERVED_CAP)?;
    // Open the WAL (and recover from it) BEFORE any model publish: the
    // restore seeds the registry's version counter and epoch, and the
    // journal must be attached so startup promotions land in the log.
    let wal_handle = match args.get("wal-dir") {
        None => None,
        Some(dir) => Some(open_wal(args, dir, feedback_cap)?),
    };
    let mut engine =
        Engine::new(Arc::clone(&registry), Arc::clone(&world)).with_served_cap(feedback_cap);
    if let Some(w) = &wal_handle {
        engine = engine.with_wal(Arc::clone(w));
    }
    let model_dir = args.get("model-dir").map(std::path::PathBuf::from);
    match &model_dir {
        Some(dir) => {
            let published = registry
                .load_dir(dir)
                .map_err(|e| ArgError(e.to_string()))?;
            for (team, version) in &published {
                eprintln!(
                    "[scoutctl] loaded {team} Scout (v{version}) from {}",
                    dir.display()
                );
            }
        }
        None => {
            let synthetic = args.get_parsed("synthetic-teams", 0usize)?;
            if synthetic > 0 {
                register_synthetic_fleet(&world, load_config(args)?, synthetic, &registry)?;
                engine = engine.with_master(scoutmaster::FleetMaster::with_graph(
                    cloudsim::DependencyGraph::synthetic_fleet(synthetic),
                ));
            } else {
                let config = load_config(args)?;
                let team = load_team(args)?;
                eprintln!("[scoutctl] no --model-dir: training a {team} Scout at startup…");
                let (scout, _, _, _) = train_scout(&world, config, team);
                let version = registry
                    .register(team.name(), scout, "trained-at-startup")
                    .expect("startup registration cannot hit a pin");
                eprintln!("[scoutctl] registered {team} Scout (v{version})");
            }
        }
    }
    if let Some(dir) = model_dir {
        engine = engine.with_model_dir(dir);
    }
    // Fleet routing plane: CLI overrides the SCOUTS_FLEET_SHARDS env
    // default; `--fleet-fail-teams` injects per-team faults for smoke
    // tests of the degrade-gracefully path.
    let mut fleet = serve::FleetConfig::default();
    fleet.shards = args.get_parsed("fleet-shards", fleet.shards)?;
    fleet.suggestions = args.get_parsed("fleet-suggestions", fleet.suggestions)?;
    if let Some(list) = args.get("fleet-fail-teams") {
        fleet.fail_teams = list
            .split(',')
            .map(|t| t.trim().to_string())
            .filter(|t| !t.is_empty())
            .collect();
    }
    eprintln!(
        "[scoutctl] fleet routing plane: {} shard(s), top-{} suggestions",
        fleet.effective_shards(),
        fleet.suggestions
    );
    engine = engine.with_fleet(fleet);
    // Storm control in front of /v1/route: dedup, per-source throttle,
    // Sev3 coalescing, per-team circuit breakers. On by default (it is
    // byte-invisible to non-storm traffic); `--storm-control off` is
    // the baseline the storm bench compares against.
    match args.get("storm-control").unwrap_or("on") {
        "off" => eprintln!("[scoutctl] storm control off (baseline mode)"),
        "on" => {
            let mut sc = storm::StormConfig::default();
            sc.dedup.window_ms = args.get_parsed("storm-dedup-window-ms", sc.dedup.window_ms)?;
            sc.throttle.rate_per_sec = args.get_parsed("storm-rate", sc.throttle.rate_per_sec)?;
            sc.throttle.burst = args.get_parsed("storm-burst", sc.throttle.burst)?;
            sc.batch.max_batch = args.get_parsed("storm-batch", sc.batch.max_batch)?;
            sc.breaker.failure_threshold =
                args.get_parsed("storm-breaker-threshold", sc.breaker.failure_threshold)?;
            eprintln!(
                "[scoutctl] storm control on: dedup window {} ms, {}..{} alerts/s per source, Sev3 batch {}, breaker threshold {}",
                sc.dedup.window_ms,
                sc.throttle.rate_per_sec,
                sc.throttle.burst,
                sc.batch.max_batch,
                sc.breaker.failure_threshold
            );
            engine = engine.with_storm(std::sync::Arc::new(storm::StormControl::new(sc)));
        }
        other => {
            return Err(ArgError(format!(
                "--storm-control must be 'on' or 'off', got '{other}'"
            )))
        }
    }
    // Keep the handle alive for the server's lifetime: dropping it stops
    // the controller worker.
    let _lifecycle = if args.flag("lifecycle") {
        let team = load_team(args)?;
        let mut cfg = lifecycle::LifecycleConfig::new(
            team.name(),
            load_config(args)?,
            ScoutBuildConfig::default(),
        );
        cfg.store_cap = feedback_cap;
        let handle = lifecycle::LifecycleHandle::start_with_wal(
            cfg,
            Arc::clone(&registry),
            Arc::new(world.topology.clone()),
            Arc::new(world.faults.clone()),
            MonitoringConfig::default(),
            wal_handle.as_ref().map(Arc::clone),
        );
        engine = engine.with_feedback_hook(handle.clone());
        eprintln!("[scoutctl] lifecycle controller attached ({team})");
        Some(handle)
    } else {
        None
    };
    let config = ServeConfig {
        batch_size: args.get_parsed("batch-size", 32usize)?,
        batch_deadline: std::time::Duration::from_millis(
            args.get_parsed("batch-deadline-ms", 2u64)?,
        ),
        queue_cap: args.get_parsed("queue-cap", 64usize)?,
        max_connections: args.get_parsed("max-connections", 128usize)?,
        trace_sample: args.get_parsed("trace-sample", 64u64)?,
        flight_dir: args.get("flight-dir").map(std::path::PathBuf::from),
    };
    let server = Server::start(engine, addr, config)
        .map_err(|e| ArgError(format!("cannot bind {addr}: {e}")))?;
    // The smoke scripts scrape this exact line for the bound port, so it
    // must reach the pipe even when stdout is block-buffered.
    println!("listening on http://{}", server.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| ArgError(format!("stdout: {e}")))?;
    match args.get_parsed("max-runtime-secs", 0u64)? {
        0 => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
        secs => {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            server.shutdown();
            Ok(())
        }
    }
}

/// `scoutctl loadgen`: drive a running server and report throughput/latency.
fn loadgen(args: &Args) -> Result<(), ArgError> {
    use serve::Client;

    let addr = args
        .get("addr")
        .ok_or_else(|| ArgError("loadgen needs --addr HOST:PORT".into()))?
        .to_string();
    let requests = args.get_parsed("requests", 200usize)?.max(1);
    let concurrency = args.get_parsed("concurrency", 4usize)?.max(1);
    let retries = args.get_parsed("retries", 0u32)?;
    let team = args.get("team").unwrap_or("PhyNet");
    let text = args
        .get("text")
        .unwrap_or("Link flaps on switch agg-3 in c2.dc1; BGP sessions resetting");
    let path = match args.get("endpoint").unwrap_or("predict") {
        "predict" => format!("/v1/scouts/{team}/predict"),
        "route" => "/v1/route".to_string(),
        other => return Err(ArgError(format!("unknown --endpoint '{other}'"))),
    };
    let body = obs::json::Obj::new().str("text", text).finish();

    let started = std::time::Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        let n = requests / concurrency + usize::from(worker < requests % concurrency);
        let (addr, path, body) = (addr.clone(), path.clone(), body.clone());
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
            let mut latencies_ms = Vec::with_capacity(n);
            for _ in 0..n {
                let t = std::time::Instant::now();
                let resp = client
                    .post_json_retry(&path, &body, retries, std::time::Duration::from_secs(2))
                    .map_err(|e| e.to_string())?;
                if !resp.is_success() {
                    return Err(format!(
                        "server answered {}: {}",
                        resp.status,
                        resp.body_text()
                    ));
                }
                latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
            }
            Ok(latencies_ms)
        }));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    for h in handles {
        latencies.extend(
            h.join()
                .map_err(|_| ArgError("worker panicked".into()))?
                .map_err(ArgError)?,
        );
    }
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{} requests over {} connection(s) in {:.2}s: {:.0} req/s; latency p50 {:.2} ms, p99 {:.2} ms",
        latencies.len(),
        concurrency,
        wall,
        latencies.len() as f64 / wall,
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    Ok(())
}

/// `scoutctl fleetgen`: trace-driven multi-team replay against a running
/// fleet server. Regenerates the same synthetic workload the server
/// booted with (same `--seed`/`--faults-per-day`), replays a burst of
/// incidents — each with its ground-truth owning team — through
/// `POST /v1/route` at the requested concurrency, and reports routing
/// throughput, latency, fleet-level accuracy, and the top-k suggestion
/// hit rate. `--min-accuracy` / `--max-unmapped` turn the report into a
/// CI gate (non-zero exit on violation).
///
/// Accuracy is judged at *base-team* granularity (replica Scouts of one
/// base team share a model, so `PhyNet-3` answering for a PhyNet
/// incident is correct): an incident whose owner has a registered Scout
/// counts as a hit when the decision is `send_to` that owner's base;
/// an incident whose owner has no Scout counts as a hit when the fleet
/// falls back to legacy routing.
fn fleetgen(args: &Args) -> Result<(), ArgError> {
    use serve::Client;
    use std::collections::BTreeSet;

    let addr = args
        .get("addr")
        .ok_or_else(|| ArgError("fleetgen needs --addr HOST:PORT".into()))?
        .to_string();
    let requests = args.get_parsed("requests", 200usize)?.max(1);
    let concurrency = args.get_parsed("concurrency", 4usize)?.max(1);
    let min_accuracy = args.get_parsed("min-accuracy", 0.0f64)?;
    let retries = args.get_parsed("retries", 0u32)?;
    let max_unmapped = match args.get("max-unmapped") {
        None => None,
        Some(_) => Some(args.get_parsed("max-unmapped", 0u64)?),
    };
    // `--storm SCENARIO`: run an adversarial storm (same traffic-shaping
    // core as stormgen) concurrently with the measured replay — the
    // accuracy and latency below are then "under storm" numbers.
    let storm_preset = match args.get("storm") {
        None => None,
        Some(slug) => Some(cloudsim::StormScenario::from_slug(slug).ok_or_else(|| {
            let valid: Vec<&str> = cloudsim::StormScenario::ALL
                .iter()
                .map(|s| s.slug())
                .collect();
            ArgError(format!(
                "unknown --storm '{slug}'; valid: {}",
                valid.join(", ")
            ))
        })?),
    };

    // Which base teams have a registered Scout? The server knows.
    let mut client = Client::connect(&addr).map_err(|e| ArgError(e.to_string()))?;
    let ready = client.get("/readyz").map_err(|e| ArgError(e.to_string()))?;
    if !ready.is_success() {
        return Err(ArgError(format!("/readyz answered {}", ready.status)));
    }
    let ready_text = ready.body_text();
    let ready_json = obs::json::Value::parse(&ready_text)
        .ok_or_else(|| ArgError("/readyz response is not valid JSON".into()))?;
    let scouted: BTreeSet<String> = ready_json
        .get("teams")
        .and_then(obs::json::Value::as_arr)
        .map(|teams| {
            teams
                .iter()
                .filter_map(obs::json::Value::as_str)
                .map(|t| cloudsim::base_team_name(t).to_string())
                .collect()
        })
        .unwrap_or_default();
    if scouted.is_empty() {
        return Err(ArgError("/readyz lists no registered teams".into()));
    }

    // The replay burst: an even-stride, chronological sample of the
    // regenerated trace, each incident carrying its ground-truth owner.
    let world = load_world(args)?;
    let total = world.incidents.len();
    if total == 0 {
        return Err(ArgError("the workload generated no incidents".into()));
    }
    let picks: Vec<usize> = (0..requests).map(|k| k * total / requests).collect();

    struct Shot {
        latency_ms: f64,
        hit: bool,
        topk_hit: bool,
        fallback: bool,
    }

    let world = std::sync::Arc::new(world);
    let scouted = std::sync::Arc::new(scouted);
    let started = std::time::Instant::now();

    // The storm pressure thread fires its whole plan alongside the
    // measured workers; 429/503 are expected under storm and tolerated.
    let storm_handle = storm_preset.map(|scenario| {
        use stormtraffic::{build_plan, PlanAction, StormTrafficConfig};
        let config = StormTrafficConfig {
            scenario,
            amplification: args.get_parsed("amplification", 100usize).unwrap_or(100),
            background: 0,
            ..StormTrafficConfig::default()
        };
        let plan = build_plan(&world, &config);
        eprintln!(
            "[scoutctl] storm preset {}: {} concurrent adversarial shots",
            scenario.slug(),
            plan.shot_count()
        );
        let addr = addr.clone();
        std::thread::spawn(move || -> Result<(u64, u64), String> {
            let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
            let (mut suppressed, mut throttled) = (0u64, 0u64);
            for action in &plan.actions {
                let PlanAction::Route(shot) = action else {
                    continue;
                };
                let body = obs::json::Obj::new()
                    .str("text", &shot.text)
                    .str("source", &shot.source)
                    .uint("severity", shot.severity as u64)
                    .uint("time_minutes", shot.time_minutes)
                    .finish();
                let resp = client
                    .post_json("/v1/route", &body)
                    .map_err(|e| e.to_string())?;
                match resp.status {
                    200 if resp.body_text().contains("\"suppressed\":true") => suppressed += 1,
                    429 => throttled += 1,
                    _ => {}
                }
            }
            Ok((suppressed, throttled))
        })
    });

    let mut handles = Vec::new();
    for worker in 0..concurrency {
        let slice: Vec<usize> = picks
            .iter()
            .copied()
            .skip(worker)
            .step_by(concurrency)
            .collect();
        let (addr, world, scouted) = (addr.clone(), world.clone(), scouted.clone());
        handles.push(std::thread::spawn(move || -> Result<Vec<Shot>, String> {
            let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
            let mut shots = Vec::with_capacity(slice.len());
            for idx in slice {
                let incident = &world.incidents[idx];
                let body = obs::json::Obj::new()
                    .str("text", &incident.text())
                    .uint("time_minutes", incident.created_at.0)
                    .finish();
                let t = std::time::Instant::now();
                let resp = client
                    .post_json_retry(
                        "/v1/route",
                        &body,
                        retries,
                        std::time::Duration::from_secs(2),
                    )
                    .map_err(|e| e.to_string())?;
                let latency_ms = t.elapsed().as_secs_f64() * 1e3;
                if !resp.is_success() {
                    return Err(format!(
                        "server answered {}: {}",
                        resp.status,
                        resp.body_text()
                    ));
                }
                let text = resp.body_text();
                let value = obs::json::Value::parse(&text)
                    .ok_or_else(|| format!("route response is not valid JSON: {text}"))?;
                let decision = value
                    .get("decision")
                    .and_then(obs::json::Value::as_str)
                    .ok_or_else(|| format!("route response has no decision: {text}"))?;
                let owner = incident.owner.name();
                let owner_scouted = scouted.contains(owner);
                let fallback = decision == "fallback";
                let hit = if owner_scouted {
                    value
                        .get("team")
                        .and_then(obs::json::Value::as_str)
                        .is_some_and(|t| cloudsim::base_team_name(t) == owner)
                } else {
                    fallback
                };
                let topk_hit = if owner_scouted {
                    value
                        .get("suggestions")
                        .and_then(obs::json::Value::as_arr)
                        .is_some_and(|s| {
                            s.iter()
                                .filter_map(|v| v.get("team").and_then(obs::json::Value::as_str))
                                .any(|t| cloudsim::base_team_name(t) == owner)
                        })
                } else {
                    fallback
                };
                shots.push(Shot {
                    latency_ms,
                    hit,
                    topk_hit,
                    fallback,
                });
            }
            Ok(shots)
        }));
    }
    let mut shots: Vec<Shot> = Vec::with_capacity(requests);
    for h in handles {
        shots.extend(
            h.join()
                .map_err(|_| ArgError("worker panicked".into()))?
                .map_err(ArgError)?,
        );
    }
    if let Some(h) = storm_handle {
        let (suppressed, throttled) = h
            .join()
            .map_err(|_| ArgError("storm thread panicked".into()))?
            .map_err(ArgError)?;
        println!("storm pressure: {suppressed} suppressed, {throttled} throttled");
    }
    let wall = started.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = shots.iter().map(|s| s.latency_ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let hits = shots.iter().filter(|s| s.hit).count();
    let topk_hits = shots.iter().filter(|s| s.topk_hit).count();
    let fallbacks = shots.iter().filter(|s| s.fallback).count();
    let accuracy = hits as f64 / shots.len() as f64;
    println!(
        "fleetgen: {} incidents over {} connection(s) in {:.2}s: {:.0} req/s; latency p50 {:.2} ms, p99 {:.2} ms",
        shots.len(),
        concurrency,
        wall,
        shots.len() as f64 / wall,
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    println!(
        "routing accuracy {:.1}% ({hits}/{} correct, {fallbacks} fallback); top-k hit rate {:.1}%",
        100.0 * accuracy,
        shots.len(),
        100.0 * topk_hits as f64 / shots.len() as f64,
    );

    // The unmapped-drop counter: with the string-keyed master every
    // registered team is routable, so a fleet built from the dependency
    // graph should report zero.
    let metrics = client
        .get("/metrics.json")
        .map_err(|e| ArgError(e.to_string()))?;
    let unmapped = metrics
        .body_text()
        .lines()
        .filter_map(obs::json::Value::parse)
        .find(|v| v.get("name").and_then(obs::json::Value::as_str) == Some("serve.route.unmapped"))
        .and_then(|v| v.get("value").and_then(obs::json::Value::as_f64))
        .unwrap_or(0.0) as u64;
    println!("unmapped answers: {unmapped}");
    if let Some(max) = max_unmapped {
        if unmapped > max {
            return Err(ArgError(format!(
                "unmapped answers {unmapped} exceed --max-unmapped {max}"
            )));
        }
    }
    if accuracy < min_accuracy {
        return Err(ArgError(format!(
            "routing accuracy {:.3} below --min-accuracy {min_accuracy}",
            accuracy
        )));
    }
    Ok(())
}

/// `scoutctl stormgen`: replay an adversarial alert-storm plan against a
/// running fleet server and report how the storm-control layer held up —
/// suppressed duplicates, throttled sources, coalesced batches, breaker
/// trips, and the latency of the background (non-storm) control group.
/// `--max-5xx` (default 0) turns the report into a CI gate: the storm
/// layer's whole point is that a storm degrades into 2xx/4xx, never 5xx.
fn stormgen(args: &Args) -> Result<(), ArgError> {
    use serve::Client;
    use stormtraffic::{build_plan, PlanAction, ShotKind, StormTrafficConfig};

    let addr = args
        .get("addr")
        .ok_or_else(|| ArgError("stormgen needs --addr HOST:PORT".into()))?
        .to_string();
    let scenario_slug = args.get("scenario").unwrap_or("duplicate-burst");
    let scenario = cloudsim::StormScenario::from_slug(scenario_slug).ok_or_else(|| {
        let valid: Vec<&str> = cloudsim::StormScenario::ALL
            .iter()
            .map(|s| s.slug())
            .collect();
        ArgError(format!(
            "unknown --scenario '{scenario_slug}'; valid: {}",
            valid.join(", ")
        ))
    })?;
    let config = StormTrafficConfig {
        scenario,
        amplification: args.get_parsed("amplification", 100usize)?.max(1),
        background: args.get_parsed("background", 40usize)?,
        sources: args.get_parsed("sources", 3usize)?.max(1),
        roots: args.get_parsed("roots", 3usize)?.max(1),
        seed: args.get_parsed("seed", 42u64)?,
        deprecate_dataset: args
            .get("deprecate-dataset")
            .unwrap_or("snmp-syslog")
            .to_string(),
    };
    let retries = args.get_parsed("retries", 0u32)?;
    let max_5xx = args.get_parsed("max-5xx", 0u64)?;
    let world = load_world(args)?;
    let plan = build_plan(&world, &config);
    eprintln!(
        "[scoutctl] storm plan: {} ({} shots, amplification {}x)",
        scenario.slug(),
        plan.shot_count(),
        config.amplification
    );

    let mut client = Client::connect(&addr).map_err(|e| ArgError(e.to_string()))?;
    let started = std::time::Instant::now();
    let (mut ok, mut suppressed, mut throttled, mut shed, mut fivexx) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut background_ms: Vec<f64> = Vec::new();
    for action in &plan.actions {
        match action {
            PlanAction::Deprecate { dataset } => {
                let body = obs::json::Obj::new().str("dataset", dataset).finish();
                let resp = client
                    .post_json("/v1/monitoring/deprecate", &body)
                    .map_err(|e| ArgError(e.to_string()))?;
                if !resp.is_success() {
                    return Err(ArgError(format!(
                        "deprecate answered {}: {}",
                        resp.status,
                        resp.body_text()
                    )));
                }
                eprintln!("[scoutctl] deprecated data set {dataset} mid-storm");
            }
            PlanAction::Route(shot) => {
                let body = obs::json::Obj::new()
                    .str("text", &shot.text)
                    .str("source", &shot.source)
                    .uint("severity", shot.severity as u64)
                    .uint("time_minutes", shot.time_minutes)
                    .finish();
                let t = std::time::Instant::now();
                let resp = client
                    .post_json_retry(
                        "/v1/route",
                        &body,
                        retries,
                        std::time::Duration::from_secs(2),
                    )
                    .map_err(|e| ArgError(e.to_string()))?;
                let latency = t.elapsed().as_secs_f64() * 1e3;
                match resp.status {
                    200 => {
                        ok += 1;
                        if resp.body_text().contains("\"suppressed\":true") {
                            suppressed += 1;
                        }
                        if shot.kind == ShotKind::Background {
                            background_ms.push(latency);
                        }
                    }
                    429 => throttled += 1,
                    503 | 504 => shed += 1,
                    s if s >= 500 => fivexx += 1,
                    _ => fivexx += 1,
                }
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();
    background_ms.sort_by(|a, b| a.total_cmp(b));
    println!(
        "stormgen {}: {} shots in {:.2}s ({:.0} req/s): {ok} ok ({suppressed} suppressed), {throttled} throttled, {shed} shed, {fivexx} 5xx/other",
        plan.scenario.slug(),
        plan.shot_count(),
        wall,
        plan.shot_count() as f64 / wall,
    );
    if !background_ms.is_empty() {
        println!(
            "background (non-storm) latency: p50 {:.2} ms, p99 {:.2} ms over {} shots",
            percentile(&background_ms, 50.0),
            percentile(&background_ms, 99.0),
            background_ms.len(),
        );
    }

    // The server-side view: what did the storm layer actually do?
    let metrics = client
        .get("/metrics.json")
        .map_err(|e| ArgError(e.to_string()))?;
    let metric = |name: &str| -> u64 {
        metrics
            .body_text()
            .lines()
            .filter_map(obs::json::Value::parse)
            .find(|v| v.get("name").and_then(obs::json::Value::as_str) == Some(name))
            .and_then(|v| v.get("value").and_then(obs::json::Value::as_f64))
            .unwrap_or(0.0) as u64
    };
    println!(
        "server storm counters: dedup.suppressed {} throttle.dropped {} batch.coalesced {} breaker.open {} breaker.rejected {}",
        metric("storm.dedup.suppressed"),
        metric("storm.throttle.dropped"),
        metric("storm.batch.coalesced"),
        metric("storm.breaker.open"),
        metric("storm.breaker.rejected"),
    );
    if fivexx > max_5xx {
        return Err(ArgError(format!(
            "{fivexx} server-error responses exceed --max-5xx {max_5xx}: a storm must degrade, not error"
        )));
    }
    Ok(())
}

/// Percentile of an already-sorted sample (nearest-rank on n-1).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `scoutctl flight`: fetch a running server's flight-recorder ring
/// (`GET /v1/debug/flight`) and print it — or write it to `--out` — as
/// JSONL, newest event last.
fn flight_cmd(args: &Args) -> Result<(), ArgError> {
    use serve::Client;

    let addr = args
        .get("addr")
        .ok_or_else(|| ArgError("flight needs --addr HOST:PORT".into()))?;
    let mut client = Client::connect(addr).map_err(|e| ArgError(e.to_string()))?;
    let resp = client
        .get("/v1/debug/flight")
        .map_err(|e| ArgError(e.to_string()))?;
    if !resp.is_success() {
        return Err(ArgError(format!(
            "/v1/debug/flight answered {}",
            resp.status
        )));
    }
    let text = resp.body_text();
    let events = text.lines().filter(|l| !l.trim().is_empty()).count();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, text.as_bytes())
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            eprintln!("[scoutctl] {events} flight event(s) written to {path}");
        }
        None => {
            print!("{text}");
            eprintln!("[scoutctl] {events} flight event(s)");
        }
    }
    Ok(())
}

/// `scoutctl probe`: one request, human-readable result, non-zero exit on
/// failure. Lets CI smoke-test the server without curl.
fn probe(args: &Args) -> Result<(), ArgError> {
    use serve::client::status_line;
    use serve::Client;

    let addr = args
        .get("addr")
        .ok_or_else(|| ArgError("probe needs --addr HOST:PORT".into()))?;
    let path = args.get("path").unwrap_or("/healthz");
    let mut client = Client::connect(addr).map_err(|e| ArgError(e.to_string()))?;
    // An explicit trace id makes the request always-sampled, so its
    // spans are recoverable from `scoutctl flight` afterwards.
    let trace_id = args.get("trace-id");
    let headers: Vec<(&str, &str)> = trace_id.iter().map(|id| ("X-Trace-Id", *id)).collect();
    let resp = match args.get("body") {
        Some(body) => client.request("POST", path, &headers, body.as_bytes()),
        None => client.request("GET", path, &headers, b""),
    }
    .map_err(|e| ArgError(e.to_string()))?;
    let text = resp.body_text();
    println!("{} {path}: {}", status_line(resp.status), text.trim());
    if trace_id.is_some() {
        if let Some(echoed) = resp.header("X-Trace-Id") {
            eprintln!("trace {echoed}");
        }
    }
    if !resp.is_success() {
        return Err(ArgError(format!("{path} answered {}", resp.status)));
    }
    if let Some(field) = args.get("expect-field") {
        let value = obs::json::Value::parse(&text)
            .ok_or_else(|| ArgError(format!("{path} response is not valid JSON")))?;
        if value.get(field).is_none() {
            return Err(ArgError(format!(
                "{path} response has no field {field:?}: {}",
                text.trim()
            )));
        }
    }
    Ok(())
}
