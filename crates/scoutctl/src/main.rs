//! `scoutctl` — command-line front end for the Scouts reproduction.
//!
//! ```text
//! scoutctl check-config <file>        validate a Scout configuration file
//! scoutctl simulate [opts]            generate a workload, print §3 stats
//! scoutctl train-eval [opts]          train the PhyNet Scout, print metrics
//! scoutctl classify [opts] <file|->   train, then classify incident text
//!
//! common options:
//!   --seed N               workload seed            (default 42)
//!   --faults-per-day F     fault density            (default 4)
//!   --config FILE          Scout config             (default built-in PhyNet)
//!   --team NAME            team the Scout answers for (default PhyNet)
//!   --at MINUTES           incident timestamp for classify (default: last
//!                          fault's window)
//! ```

mod args;

use args::{ArgError, Args};
use cloudsim::{SimTime, Team};
use incident::study::StudyReport;
use incident::{Workload, WorkloadConfig};
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig, Verdict};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scoutctl: {e}");
            eprintln!("run `scoutctl help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw, &["verbose"])?;
    if args.flag("verbose") {
        eprintln!(
            "[scoutctl] {} positional argument(s)",
            args.positional_count()
        );
    }
    let observing = setup_obs(&args)?;
    let result = match args.positional(0) {
        None | Some("help") | Some("--help") => {
            print!("{}", USAGE);
            Ok(())
        }
        Some("check-config") => check_config(&args),
        Some("simulate") => simulate(&args),
        Some("train-eval") => train_eval(&args),
        Some("classify") => classify(&args),
        Some("stats") => stats(&args),
        Some(other) => Err(ArgError(format!("unknown command '{other}'"))),
    };
    if observing {
        finish_obs(&args)?;
    }
    result
}

/// Install JSONL sinks and enable collection when any observability
/// option (`--trace`, `--metrics`, `--audit`) is present, or when the
/// command is `stats` (whose whole point is the metrics report).
fn setup_obs(args: &Args) -> Result<bool, ArgError> {
    let observing = args.get("trace").is_some()
        || args.get("metrics").is_some()
        || args.get("audit").is_some()
        || args.positional(0) == Some("stats");
    if !observing {
        return Ok(false);
    }
    if let Some(path) = args.get("trace") {
        let sink = obs::JsonlSink::create(path)
            .map_err(|e| ArgError(format!("cannot create trace file {path}: {e}")))?;
        obs::global().set_trace_sink(Some(Box::new(sink)));
    }
    if let Some(path) = args.get("audit") {
        let sink = obs::JsonlSink::create(path)
            .map_err(|e| ArgError(format!("cannot create audit file {path}: {e}")))?;
        obs::global().set_audit_sink(Some(Box::new(sink)));
    }
    obs::enable();
    Ok(true)
}

/// Flush sinks and write the metrics JSONL report, if requested.
fn finish_obs(args: &Args) -> Result<(), ArgError> {
    obs::disable();
    let collector = obs::global();
    collector.flush();
    collector.set_trace_sink(None);
    collector.set_audit_sink(None);
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, obs::sink::render_metrics_jsonl(&collector.metrics))
            .map_err(|e| ArgError(format!("cannot write metrics file {path}: {e}")))?;
        eprintln!("[scoutctl] metrics written to {path}");
    }
    Ok(())
}

const USAGE: &str = "\
scoutctl — domain-customized incident routing (Scouts, SIGCOMM 2020)

commands:
  check-config <file>      validate a Scout configuration file
  simulate                 generate a synthetic workload, print §3 statistics
  train-eval               train a Scout on the workload, print accuracy
  classify <file|->        train a Scout, then classify incident text
  stats                    run the full pipeline, print the metrics summary

options:
  --seed N                 workload seed (default 42)
  --faults-per-day F       fault density (default 4)
  --config FILE            Scout config file (default: built-in PhyNet)
  --team NAME              label team: PhyNet|Storage|Compute|… (default PhyNet)
  --at MINUTES             classify: incident time in minutes since epoch
  --save FILE              train-eval: save the trained Scout model
  --model FILE             classify: load a saved model instead of training

observability (any command):
  --trace FILE             write span events (JSONL) to FILE
  --metrics FILE           write final counter/gauge/histogram values (JSONL)
  --audit FILE             write one prediction-audit record (JSONL) per
                           Scout prediction
";

fn check_config(args: &Args) -> Result<(), ArgError> {
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("check-config needs a file path".into()))?;
    let source =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    match ScoutConfig::parse(&source) {
        Ok(cfg) => {
            println!(
                "OK: {} extraction patterns, {} monitoring declarations, {} exclusion rules",
                cfg.patterns.len(),
                cfg.monitoring.len(),
                cfg.excludes.len()
            );
            Ok(())
        }
        Err(e) => Err(ArgError(format!("{path}: {e}"))),
    }
}

fn load_world(args: &Args) -> Result<Workload, ArgError> {
    let seed = args.get_parsed("seed", 42u64)?;
    let faults_per_day = args.get_parsed("faults-per-day", 4.0f64)?;
    let mut config = WorkloadConfig {
        seed,
        ..WorkloadConfig::default()
    };
    config.faults.faults_per_day = faults_per_day;
    eprintln!("[scoutctl] generating workload (seed {seed}, {faults_per_day} faults/day)…");
    Ok(Workload::generate(config))
}

fn load_config(args: &Args) -> Result<ScoutConfig, ArgError> {
    match args.get("config") {
        None => Ok(ScoutConfig::phynet()),
        Some(path) => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            ScoutConfig::parse(&source).map_err(|e| ArgError(e.to_string()))
        }
    }
}

fn load_team(args: &Args) -> Result<Team, ArgError> {
    let name = args.get("team").unwrap_or("PhyNet");
    Team::ALL
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| ArgError(format!("unknown team '{name}'")))
}

fn simulate(args: &Args) -> Result<(), ArgError> {
    let world = load_world(args)?;
    let r = StudyReport::compute(&world);
    println!(
        "incidents: {} (from {} faults)",
        world.len(),
        world.faults.len()
    );
    println!(
        "mis-routed median slowdown: {:.1}x; PhyNet pass-through mis-route rate: {:.0}%",
        r.misrouted_slowdown,
        100.0 * r.phynet_passthrough_fraction
    );
    println!(
        "teams per PhyNet-resolved incident: mean {:.1}, max {}",
        r.phynet_teams_mean, r.phynet_teams_max
    );
    println!(
        "wasted investigation hours/day: {:.1}",
        r.wasted_hours_per_day
    );
    Ok(())
}

/// Train a Scout for `team` on the first two-thirds of the workload.
fn train_scout(
    world: &Workload,
    config: ScoutConfig,
    team: Team,
) -> (
    Scout,
    scout::scout::PreparedCorpus,
    Vec<usize>,
    MonitoringSystem<'_>,
) {
    let mon = MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
    let examples: Vec<Example> = world
        .incidents
        .iter()
        .map(|i| Example::new(i.text(), i.created_at, i.owner == team))
        .collect();
    let build = ScoutBuildConfig::default();
    let corpus = Scout::prepare(&config, &build, &examples, &mon);
    let cutoff = SimTime::from_days(180);
    let train: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time < cutoff)
        .collect();
    let test: Vec<usize> = corpus
        .trainable_indices()
        .into_iter()
        .filter(|&i| corpus.items[i].example.time >= cutoff)
        .collect();
    let scout = Scout::train_prepared(config, build, &corpus, &train, &mon);
    (scout, corpus, test, mon)
}

fn train_eval(args: &Args) -> Result<(), ArgError> {
    let world = load_world(args)?;
    let config = load_config(args)?;
    let team = load_team(args)?;
    let (scout, corpus, test, mon) = train_scout(&world, config, team);
    let confusion = scout.evaluate(&corpus, &test, &mon);
    println!(
        "{team} Scout on the last 90 days ({} incidents): {}",
        test.len(),
        confusion.metrics()
    );
    if let Some(path) = args.get("save") {
        scout
            .save(std::path::Path::new(path))
            .map_err(|e| ArgError(format!("cannot save {path}: {e}")))?;
        println!("model saved to {path}");
    }
    Ok(())
}

/// Exercise the whole pipeline once — workload generation, Scout
/// training, held-out evaluation, and the scout-master simulations —
/// then print the collected metrics summary.
fn stats(args: &Args) -> Result<(), ArgError> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scoutmaster::{ImperfectParams, PerfectScoutSim};

    let world = load_world(args)?;
    let config = load_config(args)?;
    let team = load_team(args)?;
    let (scout, corpus, test, mon) = train_scout(&world, config, team);
    let confusion = scout.evaluate(&corpus, &test, &mon);
    println!(
        "{team} Scout on the last 90 days ({} incidents): {}",
        test.len(),
        confusion.metrics()
    );

    let pairs = || world.incidents.iter().zip(world.traces.iter());
    let pooled = PerfectScoutSim::pooled_reductions(pairs(), 2);
    if !pooled.is_empty() {
        let mean = pooled.iter().sum::<f64>() / pooled.len() as f64;
        println!(
            "perfect-scout sim (2 scouts): mean reduction {:.0}% over {} incident-assignments",
            100.0 * mean,
            pooled.len()
        );
    }
    let best = PerfectScoutSim::best_possible(pairs());
    if !best.is_empty() {
        let mean = best.iter().sum::<f64>() / best.len() as f64;
        println!("best-possible sim: mean reduction {:.0}%", 100.0 * mean);
    }
    let mut rng = SmallRng::seed_from_u64(args.get_parsed("seed", 42u64)?);
    let imp = PerfectScoutSim::imperfect(
        pairs(),
        ImperfectParams {
            alpha: 0.9,
            beta: 0.05,
            n_scouts: 2,
        },
        &mut rng,
    );
    println!(
        "imperfect-scout sim (α=0.90, β=0.05, 2 scouts): mean {:.0}%, p95 {:.0}%",
        100.0 * imp.mean,
        100.0 * imp.p95
    );
    println!();
    print!("{}", obs::global().summary());
    Ok(())
}

fn classify(args: &Args) -> Result<(), ArgError> {
    let source = args
        .positional(1)
        .ok_or_else(|| ArgError("classify needs a file path or '-'".into()))?;
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| ArgError(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(source)
            .map_err(|e| ArgError(format!("cannot read {source}: {e}")))?
    };
    let world = load_world(args)?;
    let config = load_config(args)?;
    let team = load_team(args)?;
    let default_at = world
        .incidents
        .last()
        .map(|i| i.created_at.minutes())
        .unwrap_or(0);
    let at = SimTime(args.get_parsed("at", default_at)?);
    let (scout, mon) = match args.get("model") {
        Some(path) => {
            let scout =
                Scout::load(std::path::Path::new(path)).map_err(|e| ArgError(e.to_string()))?;
            let mon =
                MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default());
            eprintln!("[scoutctl] loaded model from {path}");
            (scout, mon)
        }
        None => {
            let (scout, _, _, mon) = train_scout(&world, config, team);
            (scout, mon)
        }
    };
    let pred = scout.predict(&text, at, &mon);
    match pred.verdict {
        Verdict::Responsible => println!("verdict: ROUTE TO {team}"),
        Verdict::NotResponsible => println!("verdict: route away from {team}"),
        Verdict::Fallback => println!("verdict: no components found — use legacy routing"),
    }
    println!("model: {:?}, confidence {:.2}", pred.model, pred.confidence);
    println!();
    println!(
        "{}",
        pred.explanation
            .render(team.name(), pred.says_responsible(), pred.confidence)
    );
    Ok(())
}
