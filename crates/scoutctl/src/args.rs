//! A small, dependency-free command-line argument parser.
//!
//! Supports `--key value`, `--key=value`, boolean `--flag`, and positional
//! arguments, with typed accessors and an error type that renders usage
//! hints.

use std::collections::HashMap;
use std::fmt;

/// Parsed arguments: positionals in order plus `--key` options.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A CLI parsing/validation error.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (without the program name). `known_flags` lists
    /// option names that take no value.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        known_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(rest) = arg.strip_prefix("--") {
                if rest.is_empty() {
                    // `--` terminates option parsing.
                    out.positionals.extend(iter);
                    break;
                }
                if let Some((k, v)) = rest.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if known_flags.contains(&rest) {
                    out.flags.push(rest.to_string());
                } else {
                    let v = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{rest} needs a value")))?;
                    out.options.insert(rest.to_string(), v);
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positionals.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| s.to_string()), &["verbose"]).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["simulate", "--seed", "7", "--faults-per-day=3.5"]);
        assert_eq!(a.positional(0), Some("simulate"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_parsed::<f64>("faults-per-day", 0.0).unwrap(), 3.5);
        assert_eq!(a.get_parsed::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn flags_take_no_value() {
        let a = parse(&["run", "--verbose", "--seed", "1"]);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("seed"), Some("1"));
    }

    #[test]
    fn double_dash_stops_parsing() {
        let a = parse(&["classify", "--", "--not-an-option"]);
        assert_eq!(a.positional(1), Some("--not-an-option"));
    }

    #[test]
    fn registered_flags_do_not_consume_values() {
        // `--help` used to error with "--help needs a value" because it was
        // not registered as a flag; commands register it now.
        let a = Args::parse(["--help".to_string()], &["verbose", "help", "version"]).unwrap();
        assert!(a.flag("help"));
        assert!(!a.flag("version"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(["--seed".to_string()], &[]).unwrap_err();
        assert!(e.0.contains("--seed"));
    }

    #[test]
    fn bad_typed_value_is_an_error() {
        let a = parse(&["--seed", "banana"]);
        assert!(a.get_parsed::<u64>("seed", 0).is_err());
    }
}
