//! The shared traffic-shaping core behind `scoutctl stormgen` and
//! `scoutctl fleetgen --storm`.
//!
//! A [`StormPlan`] is a deterministic, replayable request schedule
//! against a fleet server's `/v1/route`: each [`cloudsim::StormScenario`]
//! turns a storm-shaped fault schedule (from
//! [`cloudsim::FaultCatalog::generate_storm`]) into concrete shots —
//! alert text, source, wire severity, simulated time — plus, for the
//! deprecation scenario, the mid-stream control action itself.
//!
//! Near-duplicate amplification only applies perturbations the storm
//! layer's fingerprint normalization is *defined* to erase: case flips,
//! punctuation churn, and appended digit runs (timestamps, retry
//! counters). Anything else would turn a duplicate storm into distinct
//! incidents and silently stop exercising the dedup stage.

use cloudsim::{FaultCatalog, Severity, StormScenario, StormScheduleConfig};
use incident::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Whether a shot is part of the storm or the background control group
/// (the traffic whose latency must stay inside the SLO while the storm
/// rages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShotKind {
    /// Storm traffic: duplicates, gray drizzle, cascade firings.
    Storm,
    /// Well-behaved background traffic, unique per shot.
    Background,
}

/// One `/v1/route` request in the plan.
#[derive(Debug, Clone)]
pub struct RouteShot {
    /// Alert text (possibly a near-duplicate rendering).
    pub text: String,
    /// Alert source, the throttle and dedup key component.
    pub source: String,
    /// Wire severity (1 = highest, 3 = lowest).
    pub severity: u8,
    /// Simulated incident time, minutes since epoch.
    pub time_minutes: u64,
    /// Storm or background.
    pub kind: ShotKind,
}

/// One step of the plan, in replay order.
#[derive(Debug, Clone)]
pub enum PlanAction {
    /// POST `/v1/route`.
    Route(RouteShot),
    /// POST `/v1/monitoring/deprecate` — the mid-stream sensor loss.
    Deprecate {
        /// Data-set name (`monitoring::Dataset::name`).
        dataset: String,
    },
}

/// A fully materialized storm workload.
#[derive(Debug)]
pub struct StormPlan {
    /// The scenario this plan realizes.
    pub scenario: StormScenario,
    /// Shots and control actions, in replay order.
    pub actions: Vec<PlanAction>,
}

impl StormPlan {
    /// Number of `/v1/route` shots (excludes control actions).
    pub fn shot_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, PlanAction::Route(_)))
            .count()
    }
}

/// Plan-shaping knobs.
#[derive(Debug, Clone)]
pub struct StormTrafficConfig {
    /// Scenario to realize.
    pub scenario: StormScenario,
    /// Near-duplicate firings per duplicate-burst root (the "100x").
    pub amplification: usize,
    /// Background (non-storm) shots interleaved through the plan.
    pub background: usize,
    /// Distinct alert sources the storm traffic fans out from.
    pub sources: usize,
    /// Root faults per scenario.
    pub roots: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Data set to deprecate mid-plan (deprecation scenario only).
    pub deprecate_dataset: String,
}

impl Default for StormTrafficConfig {
    fn default() -> Self {
        StormTrafficConfig {
            scenario: StormScenario::DuplicateBurst,
            amplification: 100,
            background: 40,
            sources: 3,
            roots: 3,
            seed: 42,
            deprecate_dataset: "snmp-syslog".to_string(),
        }
    }
}

/// Build the deterministic replay plan for `config` against `world`.
pub fn build_plan(world: &Workload, config: &StormTrafficConfig) -> StormPlan {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5702);
    let catalog = FaultCatalog::new(&world.topology);
    let storm_cfg = StormScheduleConfig {
        scenario: config.scenario,
        roots: config.roots.max(1),
        ..StormScheduleConfig::default()
    };
    let faults = {
        let mut frng = SmallRng::seed_from_u64(config.seed ^ 0x5702_FA17);
        catalog.generate_storm(&storm_cfg, move || frng.gen::<f64>())
    };

    // Template text per storm fault: an incident of the same kind from
    // the replayed trace (any incident as a last resort — a workload is
    // never empty when a server is up).
    let template_for = |fault: &cloudsim::Fault| -> String {
        world
            .incidents
            .iter()
            .find(|i| world.faults[i.fault_id as usize].kind == fault.kind)
            .or_else(|| world.incidents.first())
            .map(|i| i.text())
            .unwrap_or_else(|| format!("{} in fleet", fault.kind.slug()))
    };
    let sources = config.sources.max(1);
    let source_name = |n: usize| format!("watchdog-{}", n % sources);

    let mut storm_shots: Vec<RouteShot> = Vec::new();
    match config.scenario {
        StormScenario::DuplicateBurst => {
            // Each root refires `amplification` times as near-duplicates
            // from ONE source (dedup keys on (content, source)).
            for (fi, fault) in faults.iter().enumerate() {
                let template = template_for(fault);
                let source = source_name(fi);
                for k in 0..config.amplification.max(1) {
                    storm_shots.push(RouteShot {
                        text: perturb(&template, &mut rng),
                        source: source.clone(),
                        severity: wire_severity(fault.severity),
                        time_minutes: fault.start.0 + k as u64 / 10,
                        kind: ShotKind::Storm,
                    });
                }
            }
        }
        StormScenario::GrayFailure => {
            // Distinct low-severity incidents in a sustained drizzle:
            // every shot unique (throttle + Sev3 coalescing, not dedup).
            let per_fault = config.amplification.clamp(1, 50);
            for (fi, fault) in faults.iter().enumerate() {
                let template = template_for(fault);
                for k in 0..per_fault {
                    // A unique alpha token per shot keeps fingerprints
                    // distinct — this scenario must NOT dedup away.
                    let text = format!("{template}\nprobe window {}", unique_token(fi, k));
                    storm_shots.push(RouteShot {
                        text,
                        source: source_name(fi * per_fault + k),
                        severity: 3,
                        time_minutes: fault.start.0 + k as u64,
                        kind: ShotKind::Storm,
                    });
                }
            }
        }
        StormScenario::Cascade | StormScenario::Deprecation => {
            // One firing per fault, multi-team, in schedule order.
            let repeats = config.amplification.clamp(1, 20);
            for (fi, fault) in faults.iter().enumerate() {
                let template = template_for(fault);
                for k in 0..repeats {
                    let text = format!("{template}\nsymptom {}", unique_token(fi, k));
                    storm_shots.push(RouteShot {
                        text,
                        source: format!("monitor-{}", fault.owner.name().to_ascii_lowercase()),
                        severity: wire_severity(fault.severity),
                        time_minutes: fault.start.0 + k as u64,
                        kind: ShotKind::Storm,
                    });
                }
            }
        }
    }
    storm_shots.sort_by_key(|a| a.time_minutes);

    // Background control group: unique well-formed incidents from the
    // replayed trace, spread evenly through the storm.
    let background: Vec<RouteShot> = (0..config.background)
        .filter_map(|k| {
            let total = world.incidents.len();
            if total == 0 {
                return None;
            }
            let incident = &world.incidents[k * total / config.background.max(1)];
            Some(RouteShot {
                text: format!(
                    "{}\ncontrol {}",
                    incident.text(),
                    unique_token(usize::MAX, k)
                ),
                source: format!("background-{k}"),
                severity: 2,
                time_minutes: incident.created_at.0,
                kind: ShotKind::Background,
            })
        })
        .collect();

    // Interleave: a background shot every `stride` storm shots, then the
    // deprecation action (if any) at the midpoint.
    let mut actions: Vec<PlanAction> = Vec::with_capacity(storm_shots.len() + background.len() + 1);
    let stride = (storm_shots.len() / background.len().max(1)).max(1);
    let mut bg = background.into_iter();
    for (i, shot) in storm_shots.into_iter().enumerate() {
        if i % stride == 0 {
            if let Some(b) = bg.next() {
                actions.push(PlanAction::Route(b));
            }
        }
        actions.push(PlanAction::Route(shot));
    }
    for b in bg {
        actions.push(PlanAction::Route(b));
    }
    if config.scenario == StormScenario::Deprecation {
        let mid = actions.len() / 2;
        actions.insert(
            mid,
            PlanAction::Deprecate {
                dataset: config.deprecate_dataset.clone(),
            },
        );
    }
    StormPlan {
        scenario: config.scenario,
        actions,
    }
}

fn wire_severity(sev: Severity) -> u8 {
    match sev {
        Severity::Sev1 => 1,
        Severity::Sev2 => 2,
        Severity::Sev3 => 3,
    }
}

/// A unique, purely alphabetic token for (group, index) — stable, and a
/// *content* change under fingerprint normalization.
fn unique_token(group: usize, k: usize) -> String {
    let mut n = group.wrapping_mul(7919).wrapping_add(k).wrapping_mul(2) + 1;
    let mut out = String::from("uq");
    for _ in 0..8 {
        out.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
    }
    out
}

/// A near-duplicate rendering of `text`: random case flips, punctuation
/// churn, and appended digit runs — exactly the perturbations the dedup
/// fingerprint normalizes away.
fn perturb(text: &str, rng: &mut SmallRng) -> String {
    let mut out = String::with_capacity(text.len() + 16);
    for ch in text.chars() {
        if ch.is_ascii_alphabetic() && rng.gen_bool(0.3) {
            if ch.is_ascii_lowercase() {
                out.push(ch.to_ascii_uppercase());
            } else {
                out.push(ch.to_ascii_lowercase());
            }
        } else if (ch == ' ' || ch == ',') && rng.gen_bool(0.2) {
            out.push_str(" - ");
        } else {
            out.push(ch);
        }
    }
    // Firing debris: a retry counter and a timestamp-ish digit run.
    out.push_str(&format!(
        " {} {}",
        rng.gen_range(0u32..1_000_000),
        rng.gen_range(0u32..86_400)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incident::WorkloadConfig;
    use std::sync::OnceLock;

    fn world() -> &'static Workload {
        static WORLD: OnceLock<Workload> = OnceLock::new();
        WORLD.get_or_init(|| Workload::generate(WorkloadConfig::small(7)))
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = StormTrafficConfig::default();
        let a = build_plan(world(), &cfg);
        let b = build_plan(world(), &cfg);
        assert_eq!(a.actions.len(), b.actions.len());
        for (x, y) in a.actions.iter().zip(&b.actions) {
            match (x, y) {
                (PlanAction::Route(x), PlanAction::Route(y)) => {
                    assert_eq!(x.text, y.text);
                    assert_eq!(x.source, y.source);
                }
                (PlanAction::Deprecate { dataset: x }, PlanAction::Deprecate { dataset: y }) => {
                    assert_eq!(x, y)
                }
                _ => panic!("plans disagree on action kind"),
            }
        }
    }

    #[test]
    fn duplicate_burst_amplifies_with_normalization_invariant_perturbations() {
        let cfg = StormTrafficConfig {
            amplification: 25,
            background: 5,
            ..StormTrafficConfig::default()
        };
        let plan = build_plan(world(), &cfg);
        let storm: Vec<&RouteShot> = plan
            .actions
            .iter()
            .filter_map(|a| match a {
                PlanAction::Route(s) if s.kind == ShotKind::Storm => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(storm.len(), 25 * cfg.roots);
        // All firings of one (source) collapse to few fingerprints: the
        // perturbations must be invisible to normalization.
        let fps: std::collections::BTreeSet<u64> = storm
            .iter()
            .map(|s| storm::fingerprint(&s.text, &s.source))
            .collect();
        assert!(
            fps.len() <= cfg.roots,
            "{} fingerprints from {} roots — perturbation leaked content",
            fps.len(),
            cfg.roots
        );
    }

    #[test]
    fn gray_failure_shots_stay_distinct_and_low_severity() {
        let cfg = StormTrafficConfig {
            scenario: StormScenario::GrayFailure,
            amplification: 10,
            background: 0,
            ..StormTrafficConfig::default()
        };
        let plan = build_plan(world(), &cfg);
        let mut fps = std::collections::BTreeSet::new();
        for action in &plan.actions {
            if let PlanAction::Route(s) = action {
                assert_eq!(s.severity, 3);
                assert!(
                    fps.insert(storm::fingerprint(&s.text, &s.source)),
                    "gray shots must not collide"
                );
            }
        }
    }

    #[test]
    fn deprecation_plan_contains_the_control_action_mid_stream() {
        let cfg = StormTrafficConfig {
            scenario: StormScenario::Deprecation,
            ..StormTrafficConfig::default()
        };
        let plan = build_plan(world(), &cfg);
        let pos = plan
            .actions
            .iter()
            .position(|a| matches!(a, PlanAction::Deprecate { .. }))
            .expect("deprecation plan has a Deprecate action");
        assert!(
            pos > 0 && pos < plan.actions.len() - 1,
            "mid-stream, not at an edge"
        );
    }
}
