//! End-to-end tests of the `scoutctl` binary (spawned as a subprocess).

use std::process::{Command, Output};

fn scoutctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scoutctl"))
        .args(args)
        .output()
        .expect("scoutctl runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage() {
    let o = scoutctl(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("check-config"));
    assert!(stdout(&o).contains("classify"));
}

#[test]
fn unknown_command_fails_with_hint() {
    let o = scoutctl(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
}

#[test]
fn check_config_accepts_valid_and_rejects_invalid() {
    let dir = std::env::temp_dir().join("scoutctl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();

    let good = dir.join("good.scoutcfg");
    std::fs::write(
        &good,
        "let cluster = <c\\d+\\.dc\\d+>;\n\
         MONITORING cpu = CREATE_MONITORING(cpu-usage, {cluster}, TIME_SERIES);\n",
    )
    .unwrap();
    let o = scoutctl(&["check-config", good.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("OK"));

    let bad = dir.join("bad.scoutcfg");
    std::fs::write(
        &bad,
        "MONITORING x = CREATE_MONITORING(nope, {cluster}, EVENT);\n",
    )
    .unwrap();
    let o = scoutctl(&["check-config", bad.to_str().unwrap()]);
    assert!(!o.status.success());
}

#[test]
fn simulate_reports_study_statistics() {
    let o = scoutctl(&["simulate", "--faults-per-day", "0.5", "--seed", "9"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("incidents:"));
    assert!(out.contains("slowdown"));
}

#[test]
fn train_save_then_classify_with_model() {
    let dir = std::env::temp_dir().join("scoutctl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("phynet-test.scout");

    let o = scoutctl(&[
        "train-eval",
        "--faults-per-day",
        "0.6",
        "--seed",
        "3",
        "--save",
        model.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("precision"));
    assert!(model.exists());

    let incident = dir.join("incident.txt");
    std::fs::write(
        &incident,
        "Packet drops near tor-0.c0.dc0 in cluster c0.dc0; rack unreachable.",
    )
    .unwrap();
    let o = scoutctl(&[
        "classify",
        incident.to_str().unwrap(),
        "--faults-per-day",
        "0.6",
        "--seed",
        "3",
        "--model",
        model.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("verdict:"), "{out}");
    assert!(out.contains("confidence"), "{out}");
}

#[test]
fn classify_without_components_falls_back() {
    let dir = std::env::temp_dir().join("scoutctl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let incident = dir.join("vague.txt");
    std::fs::write(&incident, "something is broken somewhere, please help").unwrap();
    let o = scoutctl(&[
        "classify",
        incident.to_str().unwrap(),
        "--faults-per-day",
        "0.6",
        "--seed",
        "3",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("legacy routing"), "{}", stdout(&o));
}

#[test]
fn lifecycle_replays_the_continual_learning_loop() {
    // A deliberately small world: this test checks the command's
    // plumbing and grep-able output, not the promotion behavior (the
    // lifecycle crate's e2e tests cover that at full scale).
    let o = scoutctl(&[
        "lifecycle",
        "--faults-per-day",
        "1",
        "--seed",
        "5",
        "--horizon-days",
        "140",
        "--train-days",
        "60",
        "--tick-days",
        "10",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("serving frozen model v1"), "{out}");
    assert!(out.contains("replayed "), "{out}");
    assert!(out.contains("final serving version: v"), "{out}");
}

#[test]
fn help_lists_lifecycle_surface() {
    let o = scoutctl(&["help"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("lifecycle"), "{out}");
    assert!(out.contains("--inject-regression"), "{out}");
    assert!(out.contains("--feedback-cap"), "{out}");
}
