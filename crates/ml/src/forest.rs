//! Random forests (§5.2.1): bagged CART trees with feature subsampling,
//! class weights, and the explanation machinery the paper's operators
//! required (§8 "Explanations are crucial").

use crate::flat::{FlatForest, TILE};
use crate::matrix::FeatureMatrix;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Forest configuration.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growing parameters. `max_features = None` here means √d
    /// (the usual forest default), chosen at fit time.
    pub tree: TreeConfig,
    /// Optional per-class weight multipliers (class-imbalance handling).
    /// When set, the length must equal `n_classes` at fit time — a
    /// shorter vector used to hand every class ≥ 8 a silent weight of
    /// 1.0, which skewed what the forest learned without any error.
    pub class_weight: Option<Vec<f64>>,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 16,
                min_samples_leaf: 2,
                ..Default::default()
            },
            class_weight: None,
            bootstrap_fraction: 1.0,
        }
    }
}

/// A fitted random forest.
///
/// Prediction runs on a node-major [`FlatForest`] built once at fit /
/// load time; the original [`DecisionTree`]s are kept for persistence
/// and the explanation walk ([`RandomForest::feature_contributions`]).
/// Flat and enum walks are bit-identical (see [`crate::flat`]).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    flat: FlatForest,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Fit with uniform sample weights.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        config: ForestConfig,
        rng: &mut R,
    ) -> RandomForest {
        let w = vec![1.0; x.len()];
        RandomForest::fit_weighted(x, y, &w, n_classes, config, rng)
    }

    /// Fit with per-sample weights (the §8 down-weighting/up-weighting
    /// hook). Class weights from the config are multiplied on top.
    /// Trains on the global thread pool; see
    /// [`RandomForest::fit_weighted_on`].
    pub fn fit_weighted<R: Rng>(
        x: &[Vec<f64>],
        y: &[usize],
        weights: &[f64],
        n_classes: usize,
        config: ForestConfig,
        rng: &mut R,
    ) -> RandomForest {
        RandomForest::fit_weighted_on(pool::Pool::global(), x, y, weights, n_classes, config, rng)
    }

    /// [`RandomForest::fit_weighted`] on an explicit pool. Trees are
    /// seeded up front from the caller's RNG and trained as independent
    /// pool tasks, so the fitted forest is bit-identical for every
    /// worker count (the determinism tests assert 1 ≡ 2 ≡ 8 workers).
    pub fn fit_weighted_on<R: Rng>(
        pool: &pool::Pool,
        x: &[Vec<f64>],
        y: &[usize],
        weights: &[f64],
        n_classes: usize,
        config: ForestConfig,
        rng: &mut R,
    ) -> RandomForest {
        let _span = obs::span!("ml.forest.fit");
        assert!(!x.is_empty(), "cannot fit on an empty data set");
        assert!(
            config.n_trees > 0,
            "a forest needs at least one tree (predict_proba averages over trees)"
        );
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), weights.len());
        obs::counter("ml.forest.fits").inc();
        obs::observe("ml.forest.fit.examples", x.len() as f64);
        let n_features = x[0].len();
        let mut tree_cfg = config.tree;
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some((n_features as f64).sqrt().ceil() as usize);
        }
        let w: Vec<f64> = match &config.class_weight {
            None => weights.to_vec(),
            Some(cw) => {
                assert_eq!(
                    cw.len(),
                    n_classes,
                    "class_weight length {} does not match n_classes {}",
                    cw.len(),
                    n_classes
                );
                weights
                    .iter()
                    .zip(y)
                    .map(|(&wi, &yi)| wi * cw[yi])
                    .collect()
            }
        };

        let n_boot = ((x.len() as f64) * config.bootstrap_fraction)
            .round()
            .max(1.0) as usize;
        // Seed per-tree RNGs up front so training is deterministic given
        // the caller's RNG (and independent of pool scheduling), then
        // train trees as independent, bounded pool tasks.
        let seeds: Vec<u64> = (0..config.n_trees).map(|_| rng.gen()).collect();
        let trees: Vec<DecisionTree> = pool.parallel_map(&seeds, |_, &seed| {
            let mut trng = SmallRng::seed_from_u64(seed);
            // Weighted bootstrap: sample indices uniformly and keep
            // their weights.
            let idx: Vec<usize> = (0..n_boot).map(|_| trng.gen_range(0..x.len())).collect();
            let bx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            let bw: Vec<f64> = idx.iter().map(|&i| w[i]).collect();
            DecisionTree::fit(&bx, &by, &bw, n_classes, tree_cfg, &mut trng)
        });

        let flat = FlatForest::from_trees(&trees);
        RandomForest {
            trees,
            flat,
            n_classes,
            n_features,
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The trees (persistence).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Reassemble a forest from trees (persistence). Zero-tree forests
    /// are rejected — an empty average would be all-`NaN` probabilities
    /// and a bogus argmax route, so a truncated persisted model must
    /// fail loudly at load, not at predict.
    pub fn from_trees(trees: Vec<DecisionTree>) -> Result<RandomForest, String> {
        let first = trees.first().ok_or("a forest needs at least one tree")?;
        let (n_classes, n_features) = (first.n_classes(), first.n_features());
        if trees
            .iter()
            .any(|t| t.n_classes() != n_classes || t.n_features() != n_features)
        {
            return Err("trees disagree on shape".into());
        }
        let flat = FlatForest::from_trees(&trees);
        Ok(RandomForest {
            trees,
            flat,
            n_classes,
            n_features,
        })
    }

    /// The node-major flattened tables prediction runs on.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Probability estimate: average of the trees' leaf distributions.
    /// Runs on the flattened tables; bit-identical to
    /// [`RandomForest::predict_proba_walk`].
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.n_classes];
        self.predict_proba_into(x, &mut p);
        p
    }

    /// [`RandomForest::predict_proba`] into a caller-provided buffer of
    /// length `n_classes` — the alloc-free form for hot loops.
    pub fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        obs::counter("ml.forest.predictions").inc();
        self.flat.predict_proba_into(x, out);
    }

    /// The reference enum-tree walk `predict_proba` ran on before the
    /// forest was flattened. Kept as the bit-identity oracle for the
    /// property tests and the legacy side of `benches/forest.rs`.
    pub fn predict_proba_walk(&self, x: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.n_classes];
        for t in &self.trees {
            for (acc, &v) in p.iter_mut().zip(t.predict_proba(x)) {
                *acc += v;
            }
        }
        for v in &mut p {
            *v /= self.trees.len() as f64;
        }
        p
    }

    /// Probability estimates for a batch, computed on the global thread
    /// pool. Order-preserving and bit-identical to mapping
    /// [`RandomForest::predict_proba`] sequentially.
    pub fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let m = FeatureMatrix::from_rows(xs);
        let scores = self.predict_proba_matrix_on(pool::Pool::global(), &m);
        (0..scores.rows()).map(|i| scores.row(i).to_vec()).collect()
    }

    /// The legacy per-sample-pooled batch path (enum walk per row). Kept
    /// for the bench's before/after comparison.
    pub fn predict_proba_batch_walk(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let _span = obs::span!("ml.forest.predict_batch");
        pool::Pool::global().parallel_map(xs, |_, x| RandomForest::predict_proba_walk(self, x))
    }

    /// Batch scoring over a columnar [`FeatureMatrix`]: the output is
    /// filled in place by pool workers, each handling a large multi-tile
    /// chunk of rows. Chunks are deliberately coarse (a couple per
    /// worker, not one per [`TILE`]): inside a chunk the flattened
    /// tables are walked tree-outer, so each tree's node table is
    /// pulled from memory once per chunk and reused across every tile —
    /// per-tile tasks would re-stream the whole forest for every
    /// [`TILE`] rows. Per-row bytes are independent of both the
    /// chunking and the worker count (each row's accumulation is
    /// self-contained), so the result is bit-identical to the
    /// sequential per-sample walk.
    pub fn predict_proba_matrix_on(&self, pool: &pool::Pool, x: &FeatureMatrix) -> FeatureMatrix {
        let _span = obs::span!("ml.forest.predict_batch");
        obs::counter("ml.forest.predictions").add(x.rows() as u64);
        let rows = x.rows();
        let mut out = FeatureMatrix::zeros(rows, self.n_classes);
        let n_tiles = rows.div_ceil(TILE);
        let chunk_tiles = n_tiles.div_ceil(pool.threads() * 2).max(1);
        let chunk_rows = chunk_tiles * TILE;
        let chunks: Vec<usize> = (0..n_tiles.div_ceil(chunk_tiles)).collect();
        let stride = chunk_rows * self.n_classes;
        pool.parallel_fill(&chunks, out.data_mut(), stride, |_, &c, region| {
            let lo = c * chunk_rows;
            let hi = (lo + chunk_rows).min(rows);
            self.flat.score_rows_into(x, lo..hi, region);
        });
        out
    }

    /// [`RandomForest::predict_proba_matrix_on`] on the global pool.
    pub fn predict_proba_matrix(&self, x: &FeatureMatrix) -> FeatureMatrix {
        self.predict_proba_matrix_on(pool::Pool::global(), x)
    }

    /// Class predictions for a batch (pooled; see
    /// [`RandomForest::predict_proba_batch`]).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        self.predict_proba_batch(xs)
            .iter()
            .map(|p| crate::argmax(p))
            .collect()
    }

    /// Prediction confidence: the probability of the predicted class. The
    /// paper reports this alongside every routing decision (§4).
    pub fn confidence(&self, x: &[f64]) -> f64 {
        let p = self.predict_proba(x);
        p[crate::argmax(&p)]
    }

    /// Per-prediction feature contributions for `class`, averaged over
    /// trees (Palczewska et al. \[57\]). `bias + Σ contributions =
    /// P(class|x)`.
    pub fn feature_contributions(&self, x: &[f64], class: usize) -> (f64, Vec<f64>) {
        let mut bias = 0.0;
        let mut contrib = vec![0.0; self.n_features];
        for t in &self.trees {
            let (b, c) = t.feature_contributions(x, class);
            bias += b;
            for (acc, v) in contrib.iter_mut().zip(c) {
                *acc += v;
            }
        }
        let n = self.trees.len() as f64;
        bias /= n;
        for v in &mut contrib {
            *v /= n;
        }
        (bias, contrib)
    }

    /// Mean-decrease-impurity importances averaged over trees, normalized.
    pub fn feature_importances(&self, x: &[Vec<f64>], y: &[usize]) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            for (acc, v) in imp.iter_mut().zip(t.feature_importances(x, y)) {
                *acc += v;
            }
        }
        let s: f64 = imp.iter().sum();
        if s > 0.0 {
            for v in &mut imp {
                *v /= s;
            }
        }
        imp
    }
}

impl Classifier for RandomForest {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        RandomForest::predict_proba(self, x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        RandomForest::predict_batch(self, xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    /// Noisy two-moon-ish data: label depends on a nonlinear combination.
    fn nonlinear(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i as f64 * 0.7919).fract() * 4.0 - 2.0;
            let b = (i as f64 * 0.3571).fract() * 4.0 - 2.0;
            let label = usize::from(a * a + b * b < 2.0);
            x.push(vec![a, b, (i as f64 * 0.11).fract()]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = nonlinear(400);
        let forest = RandomForest::fit(&x, &y, 2, ForestConfig::default(), &mut rng());
        let preds = forest.predict_batch(&x);
        let acc = preds.iter().zip(&y).filter(|(p, y)| p == y).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_distributions() {
        let (x, y) = nonlinear(200);
        let forest = RandomForest::fit(&x, &y, 2, ForestConfig::default(), &mut rng());
        for xi in x.iter().take(30) {
            let p = RandomForest::predict_proba(&forest, xi);
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let conf = forest.confidence(xi);
            assert!(conf >= 0.5, "binary confidence is at least 0.5, got {conf}");
        }
    }

    #[test]
    fn contributions_reconstruct_forest_probability() {
        let (x, y) = nonlinear(200);
        let forest = RandomForest::fit(&x, &y, 2, ForestConfig::default(), &mut rng());
        for xi in x.iter().take(10) {
            let (bias, contrib) = forest.feature_contributions(xi, 1);
            let total = bias + contrib.iter().sum::<f64>();
            assert!((total - RandomForest::predict_proba(&forest, xi)[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_feature_gets_little_importance() {
        let (x, y) = nonlinear(400);
        let forest = RandomForest::fit(&x, &y, 2, ForestConfig::default(), &mut rng());
        let imp = forest.feature_importances(&x, &y);
        assert!(
            imp[2] < imp[0] && imp[2] < imp[1],
            "noise importance {imp:?}"
        );
    }

    #[test]
    fn class_weights_bias_toward_minority() {
        // 95:5 imbalance; identical features except a weak signal.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let minority = i % 20 == 0;
            let v = if minority { 0.6 } else { 0.4 };
            x.push(vec![v + ((i * 13) % 10) as f64 * 0.03]);
            y.push(usize::from(minority));
        }
        let cfg = ForestConfig {
            class_weight: Some(vec![1.0, 20.0]),
            ..Default::default()
        };
        let weighted = RandomForest::fit(&x, &y, 2, cfg, &mut rng());
        let recall = |f: &RandomForest| {
            let preds = f.predict_batch(&x);
            let tp = preds
                .iter()
                .zip(&y)
                .filter(|&(&p, &l)| p == 1 && l == 1)
                .count();
            tp as f64 / y.iter().filter(|&&l| l == 1).count() as f64
        };
        assert!(
            recall(&weighted) > 0.9,
            "weighted recall {}",
            recall(&weighted)
        );
    }

    #[test]
    #[should_panic(expected = "class_weight length 3 does not match n_classes 2")]
    fn class_weight_length_mismatch_is_an_error() {
        let (x, y) = nonlinear(20);
        let cfg = ForestConfig {
            class_weight: Some(vec![1.0, 2.0, 3.0]),
            ..Default::default()
        };
        RandomForest::fit(&x, &y, 2, cfg, &mut rng());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = nonlinear(100);
        let f1 = RandomForest::fit(&x, &y, 2, ForestConfig::default(), &mut rng());
        let f2 = RandomForest::fit(&x, &y, 2, ForestConfig::default(), &mut rng());
        for xi in x.iter().take(20) {
            assert_eq!(
                RandomForest::predict_proba(&f1, xi),
                RandomForest::predict_proba(&f2, xi)
            );
        }
    }

    #[test]
    fn sample_weights_flow_through() {
        let x = vec![vec![0.0], vec![0.0]];
        let y = vec![0, 1];
        let w = vec![0.05, 5.0];
        let cfg = ForestConfig {
            n_trees: 21,
            ..Default::default()
        };
        let forest = RandomForest::fit_weighted(&x, &y, &w, 2, cfg, &mut rng());
        assert_eq!(forest.predict(&[0.0]), 1);
    }
}
