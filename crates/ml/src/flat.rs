//! Node-major flattened forests: the cache-linear predict core.
//!
//! [`crate::tree::DecisionTree`] stores ~64-byte `Node` enums whose leaf
//! distributions live in per-node heap `Vec<f64>`s, so the enum walk
//! pays a pointer chase and a branch per level, per tree, per sample —
//! and each visit touches several scattered heap lines. [`FlatForest`]
//! re-lays every tree of a fitted forest, in preorder, into node-major
//! tables:
//!
//! * `nodes: Vec<PackedNode>` — one 32-byte-aligned record per node
//!   (two per cache line, never straddling one) holding the threshold,
//!   both child indices, and the split feature, so a descent step reads
//!   exactly one node line. **Leaves carry a `NaN` threshold and point
//!   both children at themselves**: the descent predicate `!(x ≤ NaN)`
//!   is always true, so a parked row self-loops with no leaf test;
//! * `dist_off: Vec<u32>` — per-node offset into the distribution arena
//!   (meaningful at leaves only, read once per tree per row);
//! * `dist: Vec<f64>` — all leaf distributions, `n_classes` apiece, in
//!   one arena;
//! * `roots`/`depth: Vec<u32>` — per-tree root index and maximum depth.
//!
//! A descent step selects its child *by load* —
//! `children[usize::from(!(x ≤ t))]`, both slots on the node's own
//! cache line — because split directions are data-dependent coin flips:
//! a conditional branch mispredicts constantly, and shift/multiply
//! selects cost more than the load (both measured 2-3x slower here).
//! The self-looping leaves mean a tree of depth *d* is fully descended
//! by exactly *d* steps. [`FlatForest::score_rows_into`] exploits that
//! with level-synchronous ("lockstep") descent: a micro-batch of
//! [`TILE`] rows advances through one tree a level at a time, so up to
//! [`TILE`] independent node fetches are in flight between dependent
//! steps. A per-row walk is a serial load chain (each level's address
//! depends on the previous level's load) and is memory-*latency*-bound
//! on big forests; lockstep turns the same walk
//! memory-*throughput*-bound. Trees are **outermost**: one tree scores
//! every tile of the caller's row range before the next tree starts, so
//! each tree's tables are pulled from memory once per range and stay
//! cache-resident across tiles.
//!
//! # Determinism
//!
//! The flat walk makes exactly the split decisions the enum walk makes:
//! the descent goes left precisely when the enum walk's `x[f] <= t` is
//! true — including for `NaN` features, which both send right (a
//! left-on-`!(x > t)` formulation would *not*: `x > t` is also false
//! for `NaN` and would mis-route left). Extra lockstep steps after a
//! row parks on a shallow leaf are self-loops and change nothing. Per
//! sample, leaf distributions accumulate in tree order and divide by
//! the tree count at the end — the same floating-point operations, in
//! the same order, as [`crate::RandomForest::predict_proba_walk`] — and
//! per-row results never depend on tile boundaries or worker count. So
//! flat and enum paths are bit-identical (proptest-enforced in
//! `tests/flat_prop.rs`).

use crate::matrix::FeatureMatrix;
use crate::tree::{DecisionTree, Node};
use std::ops::Range;

/// Rows per micro-batch in [`FlatForest::score_rows_into`]: the width of
/// the lockstep descent front. Big enough to keep many independent node
/// fetches in flight between dependent descent steps, small enough that
/// a tile's node cursors and feature rows stay L1-resident (measured
/// fastest among 32/64/128/256 on the forest bench).
pub const TILE: usize = 128;

/// One flattened node: everything a descent step reads, padded to 32
/// bytes — two to a cache line, never straddling one. The next node
/// comes from a *load* (`children[go_right]`, both slots on the node's
/// own line), not a conditional branch or arithmetic select — split
/// directions are data-dependent coin flips, so a branch mispredicts
/// constantly, and shift/multiply selects put extra latency on every
/// step (both were measured 2-3x slower here).
#[derive(Debug, Clone, Copy)]
#[repr(C, align(32))]
struct PackedNode {
    /// Split threshold; `NaN` for leaves, so every comparison sends the
    /// row right — into the leaf's self-loop.
    threshold: f64,
    /// `[left, right]` child indices; both the node's own index for
    /// leaves (the self-loop that makes fixed-step descent work).
    children: [u32; 2],
    /// Split feature (0 for leaves — read but unused).
    feature: u16,
}

impl PackedNode {
    #[inline]
    fn new(threshold: f64, left: u32, right: u32, feature: u16) -> PackedNode {
        PackedNode {
            threshold,
            children: [left, right],
            feature,
        }
    }

    /// Split feature index (0 for leaves).
    #[inline]
    fn feature(self) -> usize {
        usize::from(self.feature)
    }

    /// The child for this node's split decision on `xv`: `xv <= t` goes
    /// left (the enum walk's predicate); anything else — NaN features,
    /// and the NaN thresholds that mark leaves — goes right, by loading
    /// the other child slot.
    // The negated form is the point: `!(xv <= t)` must be true for NaN
    // `xv` (and the NaN thresholds that mark leaves), exactly like the
    // enum walk's `if x <= t {...} else {...}` falling to the else arm.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn child(self, xv: f64) -> u32 {
        self.children[usize::from(!(xv <= self.threshold))]
    }
}

/// A forest flattened into node-major tables.
#[derive(Debug, Clone)]
pub struct FlatForest {
    n_classes: usize,
    n_features: usize,
    nodes: Vec<PackedNode>,
    dist_off: Vec<u32>,
    dist: Vec<f64>,
    roots: Vec<u32>,
    depth: Vec<u32>,
}

/// Re-emit `src[i]` (and its subtree) into `flat` in preorder, so the
/// left child always lands at its parent's index + 1. Returns the new
/// index and tracks the subtree's maximum depth. Recursion depth equals
/// tree depth, which fit and load both bound.
fn emit(flat: &mut FlatForest, src: &[Node], i: usize, level: u32, max_depth: &mut u32) -> u32 {
    *max_depth = (*max_depth).max(level);
    let me = flat.nodes.len() as u32;
    match &src[i] {
        Node::Leaf { proba } => {
            flat.nodes.push(PackedNode::new(f64::NAN, me, me, 0));
            flat.dist_off.push(flat.dist.len() as u32);
            flat.dist.extend_from_slice(proba);
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
            ..
        } => {
            assert!(*feature < flat.n_features);
            // Children are patched in after each subtree is emitted.
            flat.nodes
                .push(PackedNode::new(*threshold, 0, 0, *feature as u16));
            flat.dist_off.push(0);
            let l = emit(flat, src, *left, level + 1, max_depth);
            debug_assert_eq!(l, me + 1, "preorder: left child follows parent");
            let r = emit(flat, src, *right, level + 1, max_depth);
            flat.nodes[me as usize] = PackedNode::new(*threshold, l, r, *feature as u16);
        }
    }
    me
}

impl FlatForest {
    /// Flatten fitted trees. The trees' own invariants (validated at fit
    /// and load time: child indices in range and strictly after their
    /// parent, features below `n_features`, distributions of `n_classes`
    /// values) are what make the unchecked descent below sound.
    pub fn from_trees(trees: &[DecisionTree]) -> FlatForest {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        let n_classes = trees[0].n_classes();
        let n_features = trees[0].n_features();
        assert!(
            n_features < usize::from(u16::MAX),
            "feature indices must fit in u16"
        );
        let total: usize = trees.iter().map(|t| t.nodes().len()).sum();
        let mut flat = FlatForest {
            n_classes,
            n_features,
            nodes: Vec::with_capacity(total),
            dist_off: Vec::with_capacity(total),
            dist: Vec::new(),
            roots: Vec::with_capacity(trees.len()),
            depth: Vec::with_capacity(trees.len()),
        };
        for tree in trees {
            assert_eq!(tree.n_classes(), n_classes);
            assert_eq!(tree.n_features(), n_features);
            let root = flat.nodes.len() as u32;
            flat.roots.push(root);
            let mut max_depth = 0u32;
            emit(&mut flat, tree.nodes(), 0, 0, &mut max_depth);
            flat.depth.push(max_depth);
        }
        flat
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Number of classes per distribution.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Walk one tree for one row, returning the leaf's node index. Exits
    /// early on the leaf self-loop, so single-row latency tracks the
    /// row's actual leaf depth, not the tree's maximum.
    ///
    /// # Safety (of the internal `get_unchecked`s)
    ///
    /// `x` has been checked against `n_features` by the caller; node and
    /// child indices were validated in range at flatten time, and every
    /// child of a split comes strictly after its parent, so the walk
    /// terminates.
    #[inline]
    fn descend(&self, x: &[f64], mut node: u32) -> u32 {
        debug_assert_eq!(x.len(), self.n_features);
        loop {
            let nd = unsafe { *self.nodes.get_unchecked(node as usize) };
            let xv = unsafe { *x.get_unchecked(nd.feature()) };
            let next = nd.child(xv);
            if next == node {
                return node;
            }
            node = next;
        }
    }

    /// One descent step for one row: advance `*cursor` one level and
    /// return a nonzero value iff the cursor actually moved (zero means
    /// it is parked on a leaf's self-loop).
    ///
    /// # Safety (of the internal `get_unchecked`s)
    ///
    /// Node indices stay within the flattened table (children are
    /// in-range by construction, leaves self-loop); `row` points at a
    /// full `n_features`-wide row, and every split's feature is below
    /// `n_features`.
    #[inline(always)]
    fn step(&self, cursor: &mut u32, row: *const f64) -> u32 {
        unsafe {
            let n = *cursor;
            let nd = *self.nodes.get_unchecked(n as usize);
            let xv = *row.add(nd.feature());
            let next = nd.child(xv);
            *cursor = next;
            n ^ next
        }
    }

    /// Lockstep descent of one full [`TILE`] of rows through one tree:
    /// fixed-size arrays give the front a constant trip count, so the
    /// compiler unrolls all [`TILE`] independent steps per level.
    #[inline]
    fn lockstep(&self, root: u32, depth: u32, node: &mut [u32; TILE], rows: &[*const f64; TILE]) {
        node.fill(root);
        for _ in 0..depth {
            for (cursor, &row) in node.iter_mut().zip(rows) {
                self.step(cursor, row);
            }
        }
    }

    /// Leaf distribution of `node` (which must be a leaf).
    #[inline]
    fn leaf_dist(&self, node: u32) -> &[f64] {
        let off = self.dist_off[node as usize] as usize;
        &self.dist[off..off + self.n_classes]
    }

    /// Average-of-trees class probabilities for one row, written into
    /// `out` (length `n_classes`). Bit-identical to the enum walk.
    pub fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n_features, "feature vector length");
        assert_eq!(out.len(), self.n_classes);
        out.fill(0.0);
        for &root in &self.roots {
            let leaf = self.descend(x, root);
            for (acc, &v) in out.iter_mut().zip(self.leaf_dist(leaf)) {
                *acc += v;
            }
        }
        let n = self.roots.len() as f64;
        for v in out {
            *v /= n;
        }
    }

    /// Score `rows` of `x` into `out` (row-major, `rows.len() ×
    /// n_classes`): [`TILE`]-row micro-batches descend each tree in
    /// lockstep (level-synchronous, at most `depth[t]` steps, leaves
    /// self-looping). Trees are **outermost**: one tree scores every
    /// tile of the range before the next tree starts, so each tree's
    /// node table is pulled from memory once per batch and stays
    /// cache-resident across tiles — with the loops the other way
    /// round, every tile re-streams the whole forest (megabytes) and
    /// evicts it before the next tile arrives. Per-row accumulation is
    /// still in tree order, and per-row results are independent of the
    /// tile split, so any partition of a batch across pool workers
    /// reassembles to the same bytes.
    pub fn score_rows_into(&self, x: &FeatureMatrix, rows: Range<usize>, out: &mut [f64]) {
        assert_eq!(x.cols(), self.n_features, "matrix width");
        assert!(rows.end <= x.rows());
        assert_eq!(out.len(), rows.len() * self.n_classes);
        out.fill(0.0);
        let nc = self.n_classes;
        let cols = x.cols();
        let xbase = x.data().as_ptr();
        // Row base pointers, hoisted once for the whole range so the
        // descent loop never multiplies by `cols`.
        let xrow: Vec<*const f64> = (rows.start..rows.end)
            .map(|r| unsafe { xbase.add(r * cols) })
            .collect();
        let mut node = [0u32; TILE];
        for (t, &root) in self.roots.iter().enumerate() {
            let depth = self.depth[t];
            let mut tile_lo = 0usize;
            while tile_lo < xrow.len() {
                let tile = TILE.min(xrow.len() - tile_lo);
                let tile_rows = &xrow[tile_lo..tile_lo + tile];
                node[..tile].fill(root);
                if tile == TILE {
                    // Full tile: constant trip count, so the lockstep
                    // front unrolls completely.
                    let tile_rows: &[*const f64; TILE] = tile_rows.try_into().unwrap();
                    self.lockstep(root, depth, &mut node, tile_rows);
                } else {
                    for _ in 0..depth {
                        // The lockstep front: `tile` independent
                        // one-level steps, so their node/feature loads
                        // overlap instead of forming one serial chain
                        // per row.
                        let mut moved = 0u32;
                        for (cursor, &row) in node[..tile].iter_mut().zip(tile_rows) {
                            moved |= self.step(cursor, row);
                        }
                        // Every row in the tile has parked on its leaf
                        // (self-loops only): the remaining levels,
                        // padding out to this tree's maximum depth, are
                        // no-ops.
                        if moved == 0 {
                            break;
                        }
                    }
                }
                for (k, &leaf) in node[..tile].iter().enumerate() {
                    // Safety: `leaf` is a valid node index (descent
                    // invariant), its distribution spans `nc` arena
                    // slots by construction, and `tile_lo + k <
                    // rows.len()` with `out.len() == rows.len() * nc`
                    // (asserted above). The checked form costs ~15% of
                    // the whole pass: one bounds-checked slice per
                    // (row, tree) pair.
                    unsafe {
                        let off = *self.dist_off.get_unchecked(leaf as usize) as usize;
                        let o = (tile_lo + k) * nc;
                        for c in 0..nc {
                            *out.get_unchecked_mut(o + c) += *self.dist.get_unchecked(off + c);
                        }
                    }
                }
                tile_lo += tile;
            }
        }
        let n = self.roots.len() as f64;
        for v in out {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestConfig, RandomForest};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i as f64 * 0.7919).fract() * 4.0 - 2.0;
            let b = (i as f64 * 0.3571).fract() * 4.0 - 2.0;
            x.push(vec![a, b]);
            y.push(usize::from(a * b > 0.0));
        }
        (x, y)
    }

    #[test]
    fn packed_node_is_one_half_cache_line() {
        assert_eq!(std::mem::size_of::<PackedNode>(), 32);
        assert_eq!(std::mem::align_of::<PackedNode>(), 32);
    }

    #[test]
    fn flat_matches_enum_walk_bitwise() {
        let (x, y) = fixture();
        let forest = RandomForest::fit(
            &x,
            &y,
            2,
            ForestConfig {
                n_trees: 17,
                ..ForestConfig::default()
            },
            &mut SmallRng::seed_from_u64(3),
        );
        let mut out = [0.0; 2];
        for xi in &x {
            forest.flat().predict_proba_into(xi, &mut out);
            assert_eq!(out.as_slice(), forest.predict_proba_walk(xi).as_slice());
        }
    }

    #[test]
    fn tiled_scoring_is_tile_independent() {
        let (x, y) = fixture();
        let forest = RandomForest::fit(
            &x,
            &y,
            2,
            ForestConfig {
                n_trees: 9,
                ..ForestConfig::default()
            },
            &mut SmallRng::seed_from_u64(4),
        );
        let m = FeatureMatrix::from_rows(&x);
        // Whole-range scoring vs. awkward sub-ranges crossing TILE edges.
        let mut whole = vec![0.0; x.len() * 2];
        forest.flat().score_rows_into(&m, 0..x.len(), &mut whole);
        for range in [0..1, 5..37, 31..33, 64..200, 0..200] {
            let mut part = vec![0.0; range.len() * 2];
            forest.flat().score_rows_into(&m, range.clone(), &mut part);
            assert_eq!(part, whole[range.start * 2..range.end * 2].to_vec());
        }
    }

    #[test]
    fn nan_features_route_like_the_enum_walk() {
        let (x, y) = fixture();
        let forest = RandomForest::fit(
            &x,
            &y,
            2,
            ForestConfig {
                n_trees: 7,
                ..ForestConfig::default()
            },
            &mut SmallRng::seed_from_u64(5),
        );
        let mut out = [0.0; 2];
        for bad in [
            vec![f64::NAN, 0.3],
            vec![0.7, f64::NAN],
            vec![f64::NAN, f64::NAN],
            vec![f64::INFINITY, f64::NEG_INFINITY],
        ] {
            forest.flat().predict_proba_into(&bad, &mut out);
            assert_eq!(out.as_slice(), forest.predict_proba_walk(&bad).as_slice());
        }
    }
}
