//! Accuracy metrics: the paper reports precision, recall and F1 (§7).

/// A binary confusion matrix. The "positive" class is label 1 by
/// convention — for Scouts, "this team is responsible".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Positive predicted positive.
    pub tp: usize,
    /// Negative predicted positive.
    pub fp: usize,
    /// Positive predicted negative.
    pub fn_: usize,
    /// Negative predicted negative.
    pub tn: usize,
}

impl Confusion {
    /// Tally predictions against labels (both 0/1).
    pub fn from_predictions(labels: &[usize], preds: &[usize]) -> Confusion {
        assert_eq!(
            labels.len(),
            preds.len(),
            "label/prediction length mismatch"
        );
        let mut c = Confusion::default();
        for (&y, &p) in labels.iter().zip(preds) {
            match (y, p) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (1, 0) => c.fn_ += 1,
                (0, 0) => c.tn += 1,
                _ => panic!("binary confusion needs 0/1 labels, got ({y}, {p})"),
            }
        }
        c
    }

    /// Record one (label, prediction) outcome.
    pub fn record(&mut self, label: bool, predicted: bool) {
        match (label, predicted) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total number of samples tallied.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// TP / (TP + FP). 1.0 when nothing was predicted positive (vacuous
    /// trustworthiness, matching common tooling).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// TP / (TP + FN). 1.0 when there were no positives to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Matthews correlation coefficient, in `[-1, 1]`.
    ///
    /// The drift monitor's primary signal: unlike F1 it uses all four
    /// confusion cells, so it stays informative under the heavy class
    /// imbalance of per-team incident streams (a model that answers
    /// "not responsible" to everything scores 0, not a high F1's
    /// complement). Returns 0.0 whenever any marginal is empty — the
    /// chance-level convention.
    pub fn mcc(&self) -> f64 {
        let (tp, fp, fn_, tn) = (
            self.tp as f64,
            self.fp as f64,
            self.fn_ as f64,
            self.tn as f64,
        );
        let denom = (tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_);
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom.sqrt()
        }
    }

    /// The headline numbers as a struct.
    pub fn metrics(&self) -> BinaryMetrics {
        BinaryMetrics {
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
            mcc: self.mcc(),
        }
    }
}

/// Precision / recall / F1 / MCC bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Matthews correlation coefficient (imbalance-robust, in `[-1, 1]`).
    pub mcc: f64,
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "precision {:.1}%, recall {:.1}%, F1 {:.2}, MCC {:.2}",
            self.precision * 100.0,
            self.recall * 100.0,
            self.f1,
            self.mcc
        )
    }
}

/// Convenience: confusion from labels and predictions.
pub fn confusion(labels: &[usize], preds: &[usize]) -> Confusion {
    Confusion::from_predictions(labels, preds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_correct() {
        let c = confusion(&[1, 1, 0, 0, 1, 0], &[1, 0, 1, 0, 1, 0]);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 2
            }
        );
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn metrics_match_hand_computation() {
        let c = Confusion {
            tp: 90,
            fp: 10,
            fn_: 5,
            tn: 95,
        };
        assert!((c.precision() - 0.9).abs() < 1e-12);
        assert!((c.recall() - 90.0 / 95.0).abs() < 1e-12);
        let p = 0.9;
        let r = 90.0 / 95.0;
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        assert!((c.accuracy() - 185.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let none_predicted = Confusion {
            tp: 0,
            fp: 0,
            fn_: 3,
            tn: 7,
        };
        assert_eq!(none_predicted.precision(), 1.0);
        assert_eq!(none_predicted.recall(), 0.0);
        assert_eq!(none_predicted.f1(), 0.0);
        let no_positives = Confusion {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 10,
        };
        assert_eq!(no_positives.recall(), 1.0);
        assert_eq!(Confusion::default().accuracy(), 1.0);
    }

    #[test]
    fn record_matches_batch() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(false, true);
        c.record(true, false);
        c.record(false, false);
        assert_eq!(c, confusion(&[1, 0, 1, 0], &[1, 1, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "binary confusion")]
    fn rejects_non_binary() {
        confusion(&[2], &[0]);
    }

    #[test]
    fn mcc_matches_hand_computation() {
        let c = Confusion {
            tp: 90,
            fp: 10,
            fn_: 5,
            tn: 95,
        };
        let expected = (90.0 * 95.0 - 10.0 * 5.0) / (100.0f64 * 95.0 * 105.0 * 100.0).sqrt();
        assert!((c.mcc() - expected).abs() < 1e-12);
        assert!((c.metrics().mcc - expected).abs() < 1e-12);
    }

    #[test]
    fn mcc_is_bounded_and_signed() {
        // Perfect classifier → +1.
        let perfect = Confusion {
            tp: 10,
            fp: 0,
            fn_: 0,
            tn: 10,
        };
        assert!((perfect.mcc() - 1.0).abs() < 1e-12);
        // Perfectly inverted classifier → -1.
        let inverted = Confusion {
            tp: 0,
            fp: 10,
            fn_: 10,
            tn: 0,
        };
        assert!((inverted.mcc() + 1.0).abs() < 1e-12);
        // Prediction independent of label → 0 (here: always positive on a
        // balanced stream).
        let constant = Confusion {
            tp: 5,
            fp: 5,
            fn_: 0,
            tn: 0,
        };
        assert_eq!(constant.mcc(), 0.0);
    }

    #[test]
    fn mcc_degenerate_margins_are_chance_level() {
        assert_eq!(Confusion::default().mcc(), 0.0);
        // No positives in the stream at all.
        let no_pos = Confusion {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 25,
        };
        assert_eq!(no_pos.mcc(), 0.0);
    }

    #[test]
    fn mcc_robust_to_imbalance_where_f1_is_not() {
        // 95:5 imbalance; classifier says "positive" for everything.
        // Recall is perfect and F1 looks mediocre-but-nonzero, while MCC
        // correctly reports zero information.
        let all_positive = Confusion {
            tp: 5,
            fp: 95,
            fn_: 0,
            tn: 0,
        };
        assert!(all_positive.f1() > 0.09);
        assert_eq!(all_positive.mcc(), 0.0);
    }
}
