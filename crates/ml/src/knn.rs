//! k-nearest-neighbours classification (Table 4's strongest non-forest
//! baseline in the paper, F1 = 0.95).

use crate::Classifier;

/// A fitted (memorized) k-NN classifier with Euclidean distance.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    k: usize,
    n_classes: usize,
}

impl KnnClassifier {
    /// Memorize the training set.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, k: usize) -> KnnClassifier {
        assert!(!x.is_empty(), "k-NN needs at least one training sample");
        assert_eq!(x.len(), y.len());
        assert!(k >= 1);
        KnnClassifier {
            x: x.to_vec(),
            y: y.to_vec(),
            k,
            n_classes,
        }
    }

    /// The `k` in use (clamped to the training-set size at query time).
    pub fn k(&self) -> usize {
        self.k
    }

    fn neighbor_votes(&self, q: &[f64]) -> Vec<f64> {
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (squared_distance(xi, q), yi))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut votes = vec![0.0; self.n_classes];
        for &(_, yi) in &dists[..k] {
            votes[yi] += 1.0 / k as f64;
        }
        votes
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KnnClassifier {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.neighbor_votes(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let y = vec![0, 0, 1];
        let knn = KnnClassifier::fit(&x, &y, 2, 1);
        assert_eq!(knn.predict(&[0.1, 0.1]), 0);
        assert_eq!(knn.predict(&[4.9, 5.2]), 1);
    }

    #[test]
    fn k_votes_smooth_noise() {
        // One mislabeled point surrounded by correct ones.
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![0.15], vec![5.0]];
        let y = vec![0, 0, 0, 1, 1];
        let knn = KnnClassifier::fit(&x, &y, 2, 3);
        assert_eq!(knn.predict(&[0.12]), 0, "majority of 3 neighbours wins");
    }

    #[test]
    fn probabilities_are_vote_fractions() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![0, 1, 0];
        let knn = KnnClassifier::fit(&x, &y, 2, 3);
        let p = knn.predict_proba(&[0.05]);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_train_set_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let knn = KnnClassifier::fit(&x, &y, 2, 10);
        let p = knn.predict_proba(&[0.4]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
