//! Arena-backed row-major feature matrix.
//!
//! The predict hot path used to carry features as `Vec<Vec<f64>>` — one
//! heap allocation per incident, scattered across the heap, so batch
//! scoring pointer-chased a fresh cache line per row. [`FeatureMatrix`]
//! is the columnar replacement: one contiguous `Vec<f64>` arena holding
//! `rows × cols` values, sized once (by `FeatureLayout::len` on the
//! scout path), with rows exposed as contiguous slices that featurizers
//! fill **in place** and the flattened forest streams through linearly.

/// A dense `rows × cols` matrix in one contiguous row-major allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    /// An all-zero `rows × cols` matrix (one allocation).
    pub fn zeros(rows: usize, cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Copy a ragged-vector matrix into the arena. Every row must have
    /// the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> FeatureMatrix {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows cannot form a matrix");
            data.extend_from_slice(r);
        }
        FeatureMatrix {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice (in-place fill).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole arena, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The whole arena, mutable (for striped parallel fills).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous_views() {
        let mut m = FeatureMatrix::zeros(3, 4);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[0.0; 4]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&m.data()[4..8], m.row(1));
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "ragged rows cannot form a matrix")]
    fn ragged_rows_are_rejected() {
        FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
