//! One-class novelty detection standing in for OneClassSVM (§5.3 footnote,
//! Appendix B's model-selector comparison).
//!
//! Full one-class SVM training requires a quadratic-programming solver; this
//! reproduction uses the kernel mean-embedding density score instead: a
//! point's score is its average kernel similarity to the training set, and
//! the decision threshold is set at the ν-quantile of training scores so
//! that, like the SVM's ν parameter, roughly a fraction ν of training data
//! falls outside the boundary. This preserves the two behaviours the paper
//! exercises: an **aggressive** RBF kernel that declares many points novel
//! when retraining lags, and a **conservative** polynomial kernel that
//! rarely does (Appendix B, Fig. 8). The substitution is recorded in
//! DESIGN.md.

/// Kernel choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Radial basis function with bandwidth `gamma` — the paper's
    /// "aggressive" kernel.
    Rbf {
        /// Bandwidth; higher = more local = more points look novel.
        gamma: f64,
    },
    /// Polynomial `(x·y / scale + 1)^degree` — the paper's "conservative"
    /// kernel.
    Poly {
        /// Polynomial degree.
        degree: u32,
        /// Dot-product normalization.
        scale: f64,
    },
}

impl Kernel {
    /// Evaluate `k(a, b)`.
    pub fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Poly { degree, scale } => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                (dot / scale + 1.0).powi(degree as i32)
            }
        }
    }
}

/// A fitted one-class model: "is this sample like the training data?"
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    train: Vec<Vec<f64>>,
    kernel: Kernel,
    threshold: f64,
}

impl OneClassSvm {
    /// Fit on (unlabeled) inlier data. `nu ∈ (0, 1)` is the target
    /// training outlier fraction.
    pub fn fit(x: &[Vec<f64>], kernel: Kernel, nu: f64) -> OneClassSvm {
        assert!(!x.is_empty(), "one-class model needs training data");
        assert!((0.0..1.0).contains(&nu), "nu must be in (0,1)");
        let mut model = OneClassSvm {
            train: x.to_vec(),
            kernel,
            threshold: f64::NEG_INFINITY,
        };
        let mut scores: Vec<f64> = x.iter().map(|xi| model.score(xi)).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((scores.len() as f64) * nu).floor() as usize;
        model.threshold = scores[idx.min(scores.len() - 1)];
        model
    }

    /// Mean kernel similarity to the training set (higher = more normal).
    pub fn score(&self, x: &[f64]) -> f64 {
        let s: f64 = self.train.iter().map(|t| self.kernel.eval(t, x)).sum();
        s / self.train.len() as f64
    }

    /// Is `x` an inlier (similar to training data)?
    pub fn is_inlier(&self, x: &[f64]) -> bool {
        self.score(x) >= self.threshold
    }

    /// Is `x` novel? The Scout model selector routes novel incidents to
    /// CPD+ instead of the supervised forest.
    pub fn is_novel(&self, x: &[f64]) -> bool {
        !self.is_inlier(x)
    }

    /// The fitted decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let j = (i as f64 * 0.7919).fract() - 0.5;
                let k = (i as f64 * 0.3571).fract() - 0.5;
                vec![center + j, center + k]
            })
            .collect()
    }

    #[test]
    fn far_points_are_novel_rbf() {
        let train = blob(0.0, 100);
        let model = OneClassSvm::fit(&train, Kernel::Rbf { gamma: 1.0 }, 0.05);
        assert!(model.is_inlier(&[0.1, -0.1]));
        assert!(model.is_novel(&[8.0, 8.0]));
    }

    #[test]
    fn nu_controls_training_outlier_fraction() {
        let train = blob(0.0, 200);
        for nu in [0.05, 0.25] {
            let model = OneClassSvm::fit(&train, Kernel::Rbf { gamma: 0.5 }, nu);
            let outliers =
                train.iter().filter(|t| model.is_novel(t)).count() as f64 / train.len() as f64;
            assert!(
                (outliers - nu).abs() < 0.06,
                "nu {nu}: training outlier fraction {outliers}"
            );
        }
    }

    #[test]
    fn rbf_is_more_aggressive_than_poly() {
        // Points moderately outside the blob: the local RBF flags them,
        // the global polynomial shrugs.
        let train = blob(1.0, 100);
        let rbf = OneClassSvm::fit(&train, Kernel::Rbf { gamma: 2.0 }, 0.05);
        let poly = OneClassSvm::fit(
            &train,
            Kernel::Poly {
                degree: 2,
                scale: 2.0,
            },
            0.05,
        );
        let probes = blob(2.2, 40);
        let rbf_novel = probes.iter().filter(|p| rbf.is_novel(p)).count();
        let poly_novel = probes.iter().filter(|p| poly.is_novel(p)).count();
        assert!(
            rbf_novel > poly_novel,
            "rbf {rbf_novel} vs poly {poly_novel} novel calls"
        );
    }

    #[test]
    fn kernel_evaluations_are_sane() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert!(
            (rbf.eval(&a, &a) - 1.0).abs() < 1e-12,
            "rbf self-similarity is 1"
        );
        assert!(rbf.eval(&a, &b) < 1.0);
        let poly = Kernel::Poly {
            degree: 2,
            scale: 1.0,
        };
        assert!(
            (poly.eval(&a, &b) - 1.0).abs() < 1e-12,
            "orthogonal → (0+1)^2"
        );
    }
}
