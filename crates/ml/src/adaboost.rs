//! AdaBoost (SAMME) over depth-1 decision stumps — a Table-4 baseline
//! (F1 = 0.96) and a candidate model-selector algorithm in Fig. 8.

use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::Rng;

/// A fitted AdaBoost ensemble.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    stumps: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Fit `n_rounds` weighted stumps with the SAMME update.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        n_rounds: usize,
        rng: &mut R,
    ) -> AdaBoost {
        assert!(!x.is_empty());
        assert_eq!(x.len(), y.len());
        assert!(n_classes >= 2);
        let n = x.len();
        let mut w = vec![1.0 / n as f64; n];
        let mut stumps = Vec::new();
        let stump_cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        for _ in 0..n_rounds {
            let stump = DecisionTree::fit(x, y, &w, n_classes, stump_cfg, rng);
            let preds: Vec<usize> = x.iter().map(|xi| stump.predict(xi)).collect();
            let err: f64 = w
                .iter()
                .zip(preds.iter().zip(y))
                .filter(|(_, (p, y))| p != y)
                .map(|(&wi, _)| wi)
                .sum();
            let k = n_classes as f64;
            // SAMME: a weak learner must beat random guessing (1 - 1/K).
            if err >= 1.0 - 1.0 / k {
                break;
            }
            let alpha = if err <= 1e-12 {
                // Perfect stump: cap the weight and stop boosting.
                stumps.push((stump, 10.0));
                break;
            } else {
                ((1.0 - err) / err).ln() + (k - 1.0).ln()
            };
            for (wi, (p, yi)) in w.iter_mut().zip(preds.iter().zip(y)) {
                if p != yi {
                    *wi *= alpha.exp();
                }
            }
            let total: f64 = w.iter().sum();
            for wi in &mut w {
                *wi /= total;
            }
            stumps.push((stump, alpha));
        }
        if stumps.is_empty() {
            // Degenerate input (e.g. one class): keep a single stump so
            // predictions remain defined.
            let stump = DecisionTree::fit(x, y, &w, n_classes, stump_cfg, rng);
            stumps.push((stump, 1.0));
        }
        AdaBoost { stumps, n_classes }
    }

    /// Number of boosting rounds retained.
    pub fn n_rounds(&self) -> usize {
        self.stumps.len()
    }

    /// The weighted stumps (persistence).
    pub fn stumps(&self) -> &[(DecisionTree, f64)] {
        &self.stumps
    }

    /// Reassemble from weighted stumps (persistence).
    pub fn from_stumps(stumps: Vec<(DecisionTree, f64)>) -> Result<AdaBoost, String> {
        let first = stumps.first().ok_or("adaboost needs at least one stump")?;
        let n_classes = first.0.n_classes();
        if stumps.iter().any(|(t, _)| t.n_classes() != n_classes) {
            return Err("stumps disagree on class count".into());
        }
        Ok(AdaBoost { stumps, n_classes })
    }
}

impl Classifier for AdaBoost {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut score = vec![0.0; self.n_classes];
        let mut total = 0.0;
        for (stump, alpha) in &self.stumps {
            score[stump.predict(x)] += alpha;
            total += alpha;
        }
        if total > 0.0 {
            for s in &mut score {
                *s /= total;
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn boosting_solves_what_one_stump_cannot() {
        // Interval structure: class 1 in the middle band. A single
        // threshold cannot express it; boosting can.
        let x: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 120.0]).collect();
        let y: Vec<usize> = x
            .iter()
            .map(|v| usize::from(v[0] > 0.3 && v[0] < 0.7))
            .collect();
        let model = AdaBoost::fit(&x, &y, 2, 50, &mut rng());
        let acc = model
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(model.n_rounds() > 1, "needed more than one stump");
    }

    #[test]
    fn perfect_stump_short_circuits() {
        let x = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
        let y = vec![0, 0, 1, 1];
        let model = AdaBoost::fit(&x, &y, 2, 50, &mut rng());
        assert_eq!(model.n_rounds(), 1);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(model.predict(xi), yi);
        }
    }

    #[test]
    fn probabilities_form_distribution() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let model = AdaBoost::fit(&x, &y, 2, 20, &mut rng());
        for xi in &x {
            let p = model.predict_proba(xi);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_class_input_stays_defined() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        let model = AdaBoost::fit(&x, &y, 2, 10, &mut rng());
        assert_eq!(model.predict(&[1.5]), 0);
    }
}
