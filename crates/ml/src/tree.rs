//! CART decision trees with sample weights — the building block of the
//! random forest and the AdaBoost stumps.

use rand::seq::SliceRandom;
use rand::Rng;

/// Tree-growing configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum weighted fraction of samples required in each child.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` = all features.
    /// Random forests pass √d here.
    pub max_features: Option<usize>,
    /// Minimum impurity decrease to accept a split.
    pub min_impurity_decrease: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 16,
            min_samples_leaf: 1,
            max_features: None,
            min_impurity_decrease: 0.0,
        }
    }
}

/// A node in the fitted tree. Every node stores its class distribution so
/// that feature contributions (Palczewska et al.) can be computed by
/// walking the decision path.
#[derive(Debug, Clone)]
pub enum Node {
    /// Terminal node.
    Leaf {
        /// Class-probability estimate at this leaf.
        proba: Vec<f64>,
    },
    /// Internal split on `feature <= threshold`.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold: `x[feature] <= threshold` goes left.
        threshold: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
        /// Class distribution of the samples reaching this node.
        proba: Vec<f64>,
    },
}

impl Node {
    /// Class distribution at this node.
    pub fn proba(&self) -> &[f64] {
        match self {
            Node::Leaf { proba } | Node::Split { proba, .. } => proba,
        }
    }
}

/// A fitted CART classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTree {
    /// Fit a tree on `(x, y)` with per-sample `weights`.
    ///
    /// `y` must contain dense labels `0..n_classes`. Weights scale each
    /// sample's influence on impurity and leaf distributions — the hook the
    /// Scout framework uses for down-weighting old incidents and
    /// up-weighting past mistakes (§8).
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[usize],
        weights: &[f64],
        n_classes: usize,
        config: TreeConfig,
        rng: &mut R,
    ) -> DecisionTree {
        assert!(!x.is_empty(), "cannot fit on an empty data set");
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), weights.len());
        debug_assert!(
            y.iter().all(|&c| c < n_classes),
            "labels must be < n_classes"
        );
        let n_features = x[0].len();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
            n_features,
        };
        let indices: Vec<usize> = (0..x.len()).collect();
        tree.build(x, y, weights, indices, 0, config, rng);
        tree
    }

    /// Recursively grow; returns the new node's index.
    #[allow(clippy::too_many_arguments)] // recursive internal: x/y/w always travel together
    fn build<R: Rng>(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        w: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: TreeConfig,
        rng: &mut R,
    ) -> usize {
        let proba = class_distribution(y, w, &indices, self.n_classes);
        let node_gini = gini(&proba);
        let stop = depth >= config.max_depth
            || indices.len() < 2 * config.min_samples_leaf
            || node_gini <= 1e-12;
        let split = if stop {
            None
        } else {
            self.best_split(x, y, w, &indices, config, rng)
        };

        match split {
            None => {
                self.nodes.push(Node::Leaf { proba });
                self.nodes.len() - 1
            }
            Some(BestSplit {
                feature, threshold, ..
            }) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x[i][feature] <= threshold);
                // Reserve our slot before children so child indices are known.
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    proba: proba.clone(),
                }); // placeholder
                let left = self.build(x, y, w, li, depth + 1, config, rng);
                let right = self.build(x, y, w, ri, depth + 1, config, rng);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    proba,
                };
                me
            }
        }
    }

    fn best_split<R: Rng>(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        w: &[f64],
        indices: &[usize],
        config: TreeConfig,
        rng: &mut R,
    ) -> Option<BestSplit> {
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if let Some(k) = config.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(self.n_features));
        }

        let total_w: f64 = indices.iter().map(|&i| w[i]).sum();
        let parent_counts = weighted_counts(y, w, indices, self.n_classes);
        let parent_gini = gini_from_counts(&parent_counts, total_w);

        let mut best: Option<BestSplit> = None;
        let mut sorted = indices.to_vec();
        for &f in &features {
            sorted.sort_unstable_by(|&a, &b| {
                x[a][f]
                    .partial_cmp(&x[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0.0; self.n_classes];
            let mut left_w = 0.0;
            for pos in 0..sorted.len() - 1 {
                let i = sorted[pos];
                left_counts[y[i]] += w[i];
                left_w += w[i];
                let (xv, xn) = (x[i][f], x[sorted[pos + 1]][f]);
                if xv == xn {
                    continue; // cannot split between equal values
                }
                if pos + 1 < config.min_samples_leaf
                    || sorted.len() - pos - 1 < config.min_samples_leaf
                {
                    continue;
                }
                let right_w = total_w - left_w;
                if left_w <= 0.0 || right_w <= 0.0 {
                    continue;
                }
                let right_counts: Vec<f64> = parent_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&p, &l)| p - l)
                    .collect();
                let g = (left_w * gini_from_counts(&left_counts, left_w)
                    + right_w * gini_from_counts(&right_counts, right_w))
                    / total_w;
                let decrease = parent_gini - g;
                if decrease >= config.min_impurity_decrease
                    && best.as_ref().is_none_or(|b| decrease > b.decrease)
                {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (xv + xn),
                        decrease,
                    });
                }
            }
        }
        best
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena, in construction order (persistence).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reassemble a tree from its parts (persistence). Validates child
    /// indices and leaf arities.
    pub fn from_parts(
        nodes: Vec<Node>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<DecisionTree, String> {
        if nodes.is_empty() {
            return Err("a tree needs at least one node".into());
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.proba().len() != n_classes {
                return Err(format!("node {i}: probability arity mismatch"));
            }
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = node
            {
                if *feature >= n_features {
                    return Err(format!("node {i}: feature out of range"));
                }
                // Children must come after the parent (construction order),
                // which also guarantees the walk terminates.
                if *left <= i || *right <= i || *left >= nodes.len() || *right >= nodes.len() {
                    return Err(format!("node {i}: invalid child indices"));
                }
            }
        }
        Ok(DecisionTree {
            nodes,
            n_classes,
            n_features,
        })
    }

    /// Class-probability estimate for `x`.
    ///
    /// This enum walk is the *reference* traversal: `x[feature] <=
    /// threshold` goes left, anything else — including a `NaN` feature,
    /// for which the comparison is false — goes right. The flattened
    /// forest ([`crate::flat::FlatForest`]) must preserve exactly this
    /// routing (its branchless predicate is `!(x <= t)`, not `x > t`,
    /// which would send `NaN` the other way).
    pub fn predict_proba(&self, x: &[f64]) -> &[f64] {
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { proba } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The argmax class for `x`.
    pub fn predict(&self, x: &[f64]) -> usize {
        crate::argmax(self.predict_proba(x))
    }

    /// The decision path for `x`: the sequence of visited nodes.
    pub fn decision_path(&self, x: &[f64]) -> Vec<&Node> {
        let mut path = Vec::new();
        let mut node = 0;
        loop {
            path.push(&self.nodes[node]);
            match &self.nodes[node] {
                Node::Leaf { .. } => return path,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Per-prediction feature contributions for `class` (Palczewska et al.,
    /// the paper's \[57\]): at each split along the decision path, the
    /// change in class probability is credited to the split feature.
    /// Returns `(bias, contributions)` where `bias` is the root probability
    /// and `bias + Σ contributions = P(class | x)`.
    pub fn feature_contributions(&self, x: &[f64], class: usize) -> (f64, Vec<f64>) {
        let path = self.decision_path(x);
        let mut contrib = vec![0.0; self.n_features];
        let bias = path[0].proba()[class];
        for pair in path.windows(2) {
            if let Node::Split { feature, .. } = pair[0] {
                contrib[*feature] += pair[1].proba()[class] - pair[0].proba()[class];
            }
        }
        (bias, contrib)
    }

    /// Mean-decrease-impurity feature importance, normalized to sum to 1.
    pub fn feature_importances(&self, x: &[Vec<f64>], y: &[usize]) -> Vec<f64> {
        // Recompute node weights by dropping the training data through the
        // tree (the tree does not store per-node sample weights).
        let mut reach = vec![0.0f64; self.nodes.len()];
        for (xi, _) in x.iter().zip(y) {
            let mut node = 0;
            loop {
                reach[node] += 1.0;
                match &self.nodes[node] {
                    Node::Leaf { .. } => break,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                        ..
                    } => {
                        node = if xi[*feature] <= *threshold {
                            *left
                        } else {
                            *right
                        };
                    }
                }
            }
        }
        let total = x.len() as f64;
        let mut imp = vec![0.0; self.n_features];
        for (ni, node) in self.nodes.iter().enumerate() {
            if let Node::Split {
                feature,
                left,
                right,
                proba,
                ..
            } = node
            {
                let wn = reach[ni] / total;
                let wl = reach[*left] / total;
                let wr = reach[*right] / total;
                let dec = wn * gini(proba)
                    - wl * gini(self.nodes[*left].proba())
                    - wr * gini(self.nodes[*right].proba());
                imp[*feature] += dec.max(0.0);
            }
        }
        let s: f64 = imp.iter().sum();
        if s > 0.0 {
            for v in &mut imp {
                *v /= s;
            }
        }
        imp
    }
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    decrease: f64,
}

fn weighted_counts(y: &[usize], w: &[f64], indices: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = vec![0.0; n_classes];
    for &i in indices {
        counts[y[i]] += w[i];
    }
    counts
}

fn class_distribution(y: &[usize], w: &[f64], indices: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = weighted_counts(y, w, indices, n_classes);
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    } else {
        // All-zero weights: fall back to uniform.
        counts = vec![1.0 / n_classes as f64; n_classes];
    }
    counts
}

/// Gini impurity of a probability distribution.
fn gini(proba: &[f64]) -> f64 {
    1.0 - proba.iter().map(|p| p * p).sum::<f64>()
}

fn gini_from_counts(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|c| (c / total) * (c / total))
        .sum::<f64>()
}

impl crate::Classifier for DecisionTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        DecisionTree::predict_proba(self, x).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// Two well-separated Gaussian-ish blobs.
    fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f64 * 0.7919).fract();
            let u = (i as f64 * 0.3571).fract();
            if i % 2 == 0 {
                x.push(vec![t, u]);
                y.push(0);
            } else {
                x.push(vec![t + 2.0, u + 2.0]);
                y.push(1);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_data_is_learned_perfectly() {
        let (x, y) = blobs(200);
        let w = vec![1.0; x.len()];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng());
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(tree.predict(xi), yi);
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let w = vec![1.0; 4];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng());
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(tree.predict(xi), yi, "xor point {xi:?}");
        }
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let (x, y) = blobs(50);
        let w = vec![1.0; x.len()];
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, &w, 2, cfg, &mut rng());
        assert_eq!(tree.node_count(), 1);
        let p = tree.predict_proba(&x[0]);
        assert!((p[0] - 0.5).abs() < 0.01, "balanced classes at root");
    }

    #[test]
    fn sample_weights_shift_the_decision() {
        // Same point appears with both labels; weight decides.
        let x = vec![vec![0.0], vec![0.0]];
        let y = vec![0, 1];
        let heavy_one = vec![0.1, 10.0];
        let tree = DecisionTree::fit(&x, &y, &heavy_one, 2, TreeConfig::default(), &mut rng());
        assert_eq!(tree.predict(&[0.0]), 1);
        let heavy_zero = vec![10.0, 0.1];
        let tree = DecisionTree::fit(&x, &y, &heavy_zero, 2, TreeConfig::default(), &mut rng());
        assert_eq!(tree.predict(&[0.0]), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blobs(100);
        let w = vec![1.0; x.len()];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng());
        for xi in &x {
            let p = tree.predict_proba(xi);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn contributions_reconstruct_probability() {
        let (x, y) = blobs(100);
        let w = vec![1.0; x.len()];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng());
        for xi in x.iter().take(20) {
            let (bias, contrib) = tree.feature_contributions(xi, 1);
            let total = bias + contrib.iter().sum::<f64>();
            assert!((total - tree.predict_proba(xi)[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn importances_find_the_informative_feature() {
        // Feature 0 carries the label; feature 1 is noise.
        let n = 200;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let noise = ((i * 37) % 100) as f64 / 100.0;
            x.push(vec![(i % 2) as f64, noise]);
            y.push(i % 2);
        }
        let w = vec![1.0; n];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng());
        let imp = tree.feature_importances(&x, &y);
        assert!(imp[0] > 0.9, "informative feature dominates: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = blobs(100);
        let w = vec![1.0; x.len()];
        let cfg = TreeConfig {
            min_samples_leaf: 40,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, &w, 2, cfg, &mut rng());
        // With 100 samples and min leaf 40, at most one split is possible.
        assert!(tree.node_count() <= 3);
    }
}
