//! Nonparametric change-point detection — the core of the paper's CPD+
//! fallback model (§5.2.2).
//!
//! Implements the e-divisive procedure of Matteson & James \[51\]: the
//! energy-distance statistic locates the split that maximizes the evidence
//! of a distribution change; a permutation test decides significance; the
//! procedure recurses into both segments until nothing significant remains.
//! Nonparametric matters here: the paper chose CPD precisely because new
//! incident types have no training data to fit a parametric model to.

use rand::seq::SliceRandom;
use rand::Rng;

/// Detection configuration.
#[derive(Debug, Clone, Copy)]
pub struct CpdConfig {
    /// Minimum samples on each side of a change point.
    pub min_segment: usize,
    /// Number of permutations for the significance test.
    pub n_permutations: usize,
    /// Significance level: a change point is kept when fewer than
    /// `significance × n_permutations` permuted series beat its statistic.
    pub significance: f64,
}

impl Default for CpdConfig {
    /// Tuned for the Scout's 24-sample (2-hour) windows.
    fn default() -> Self {
        CpdConfig {
            min_segment: 4,
            n_permutations: 99,
            significance: 0.05,
        }
    }
}

/// Fast variant: z-normalize the window and compare the best split's
/// energy statistic against a fixed critical value instead of running a
/// permutation test. `O(n³)` once per series with no permutation factor —
/// the right tool when change-point *counts* feed a downstream model that
/// can absorb calibration error (CPD+'s cluster path, §5.2.2), where the
/// permutation variant would cost ~40× more across a cluster's devices.
///
/// `threshold` is in normalized-energy units; [`FAST_THRESHOLD`] holds a
/// value calibrated so pure noise rarely exceeds it.
pub fn detect_change_points_fast(series: &[f64], min_segment: usize, threshold: f64) -> Vec<usize> {
    obs::counter("ml.cpd.fast_detections").inc();
    let n = series.len();
    if n < 2 * min_segment {
        return Vec::new();
    }
    // Z-normalize so the threshold is scale-free.
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return Vec::new(); // constant series
    }
    let normed: Vec<f64> = series.iter().map(|v| (v - mean) / sd).collect();
    let mut out = Vec::new();
    fast_recursive(&normed, 0, min_segment, threshold, &mut out);
    out.sort_unstable();
    out
}

/// Critical value for [`detect_change_points_fast`], calibrated on
/// standard-normal noise windows of the Scout's typical length (24
/// samples): noise exceeds it <5% of the time, a 3σ mid-window shift
/// always does.
pub const FAST_THRESHOLD: f64 = 5.0;

fn fast_recursive(
    segment: &[f64],
    offset: usize,
    min_segment: usize,
    threshold: f64,
    out: &mut Vec<usize>,
) {
    if segment.len() < 2 * min_segment {
        return;
    }
    let Some((tau, q)) = best_split(segment, min_segment) else {
        return;
    };
    if q < threshold {
        return;
    }
    out.push(offset + tau);
    fast_recursive(&segment[..tau], offset, min_segment, threshold, out);
    fast_recursive(&segment[tau..], offset + tau, min_segment, threshold, out);
}

/// Detect change points in `series`; returns sorted sample indices, each
/// marking the first sample of a new regime.
pub fn detect_change_points<R: Rng>(series: &[f64], config: &CpdConfig, rng: &mut R) -> Vec<usize> {
    let _span = obs::span!("ml.cpd.detect");
    let mut found = Vec::new();
    split_recursive(series, 0, config, rng, &mut found);
    found.sort_unstable();
    found
}

fn split_recursive<R: Rng>(
    segment: &[f64],
    offset: usize,
    config: &CpdConfig,
    rng: &mut R,
    out: &mut Vec<usize>,
) {
    if segment.len() < 2 * config.min_segment {
        return;
    }
    let Some((tau, q_obs)) = best_split(segment, config.min_segment) else {
        return;
    };
    // Permutation test: how often does a random shuffle look this divided?
    let mut beats = 0usize;
    let mut shuffled = segment.to_vec();
    for _ in 0..config.n_permutations {
        shuffled.shuffle(rng);
        if let Some((_, q)) = best_split(&shuffled, config.min_segment) {
            if q >= q_obs {
                beats += 1;
            }
        }
    }
    let p_value = (beats + 1) as f64 / (config.n_permutations + 1) as f64;
    if p_value > config.significance {
        return;
    }
    out.push(offset + tau);
    split_recursive(&segment[..tau], offset, config, rng, out);
    split_recursive(&segment[tau..], offset + tau, config, rng, out);
}

/// The split index maximizing the scaled energy statistic, with its value.
fn best_split(segment: &[f64], min_segment: usize) -> Option<(usize, f64)> {
    let n = segment.len();
    if n < 2 * min_segment {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for tau in min_segment..=(n - min_segment) {
        let q = energy_statistic(&segment[..tau], &segment[tau..]);
        if best.is_none_or(|(_, bq)| q > bq) {
            best = Some((tau, q));
        }
    }
    best
}

/// Scaled sample energy distance `Q(A, B)` between two segments (α = 1).
/// Larger = stronger evidence the segments come from different
/// distributions.
fn energy_statistic(a: &[f64], b: &[f64]) -> f64 {
    let (n, m) = (a.len() as f64, b.len() as f64);
    let cross = mean_abs_cross(a, b);
    let within_a = mean_abs_within(a);
    let within_b = mean_abs_within(b);
    let e = 2.0 * cross - within_a - within_b;
    (n * m / (n + m)) * e
}

fn mean_abs_cross(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for &x in a {
        for &y in b {
            s += (x - y).abs();
        }
    }
    s / (a.len() as f64 * b.len() as f64)
}

fn mean_abs_within(a: &[f64]) -> f64 {
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += (a[i] - a[j]).abs();
        }
    }
    2.0 * s / (n as f64 * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    /// Deterministic wiggle around `level`.
    fn noisy(level: f64, n: usize, phase: usize) -> Vec<f64> {
        (0..n)
            .map(|i| level + 0.1 * (((i + phase) as f64) * 1.7).sin())
            .collect()
    }

    #[test]
    fn detects_an_obvious_level_shift() {
        let mut series = noisy(0.0, 12, 0);
        series.extend(noisy(5.0, 12, 5));
        let cps = detect_change_points(&series, &CpdConfig::default(), &mut rng());
        assert_eq!(cps, vec![12]);
    }

    #[test]
    fn quiet_series_has_no_change_points() {
        let series = noisy(1.0, 24, 0);
        let cps = detect_change_points(&series, &CpdConfig::default(), &mut rng());
        assert!(cps.is_empty(), "found {cps:?}");
    }

    #[test]
    fn detects_two_changes() {
        let mut series = noisy(0.0, 10, 0);
        series.extend(noisy(4.0, 10, 3));
        series.extend(noisy(-3.0, 10, 7));
        let cps = detect_change_points(&series, &CpdConfig::default(), &mut rng());
        assert_eq!(cps.len(), 2, "found {cps:?}");
        assert!((cps[0] as i64 - 10).abs() <= 1);
        assert!((cps[1] as i64 - 20).abs() <= 1);
    }

    #[test]
    fn short_series_is_rejected_gracefully() {
        let series = vec![0.0, 10.0, 0.0];
        let cps = detect_change_points(&series, &CpdConfig::default(), &mut rng());
        assert!(cps.is_empty());
        assert!(detect_change_points(&[], &CpdConfig::default(), &mut rng()).is_empty());
    }

    #[test]
    fn respects_min_segment() {
        let mut series = noisy(0.0, 20, 0);
        series.extend(noisy(5.0, 4, 0));
        let cfg = CpdConfig {
            min_segment: 6,
            ..Default::default()
        };
        let cps = detect_change_points(&series, &cfg, &mut rng());
        for &cp in &cps {
            assert!(cp >= 6 && cp <= series.len() - 6);
        }
    }

    #[test]
    fn energy_statistic_is_symmetric_and_nonnegative_for_shifts() {
        let a = noisy(0.0, 8, 0);
        let b = noisy(3.0, 8, 2);
        let q1 = energy_statistic(&a, &b);
        let q2 = energy_statistic(&b, &a);
        assert!((q1 - q2).abs() < 1e-12);
        assert!(q1 > 0.0);
        // Identical segments: statistic near zero.
        let q3 = energy_statistic(&a, &a);
        assert!(q3.abs() < 1e-9);
    }

    #[test]
    fn fast_variant_detects_shifts_and_ignores_noise() {
        // Shift: must fire.
        let mut series = noisy(0.0, 12, 0);
        series.extend(noisy(3.0, 12, 5));
        let cps = detect_change_points_fast(&series, 4, FAST_THRESHOLD);
        assert_eq!(cps.len(), 1, "found {cps:?}");
        assert!((cps[0] as i64 - 12).abs() <= 1);
        // Deterministic pseudo-noise windows: low false-positive rate.
        let mut fp = 0;
        for seed in 0..100u64 {
            let mut s = seed.wrapping_mul(2654435761).max(1);
            let noise: Vec<f64> = (0..24)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    // Sum of 4 uniforms, roughly normal.
                    let u = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64;
                    (u(s) + u(s.wrapping_mul(3)) + u(s.wrapping_mul(5)) + u(s.wrapping_mul(7))
                        - 2.0)
                        / (4.0f64 / 12.0).sqrt()
                })
                .collect();
            if !detect_change_points_fast(&noise, 4, FAST_THRESHOLD).is_empty() {
                fp += 1;
            }
        }
        assert!(fp <= 15, "noise false positives: {fp}/100");
        // Constant series: no division by zero, no change points.
        assert!(detect_change_points_fast(&[5.0; 24], 4, FAST_THRESHOLD).is_empty());
    }

    #[test]
    fn variance_change_is_also_detected() {
        // Energy distance sees more than mean shifts.
        let calm: Vec<f64> = (0..14).map(|i| 0.02 * ((i as f64) * 1.3).sin()).collect();
        let wild: Vec<f64> = (0..14).map(|i| 3.0 * ((i as f64) * 2.9).sin()).collect();
        let mut series = calm;
        series.extend(wild);
        let cps = detect_change_points(&series, &CpdConfig::default(), &mut rng());
        assert!(!cps.is_empty(), "variance change missed");
    }
}
