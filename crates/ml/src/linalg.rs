//! Minimal dense linear algebra for QDA: LU decomposition with partial
//! pivoting, solving, inversion and log-determinants.

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension.
    pub n: usize,
    /// Row-major storage, `n * n` entries.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Construct from rows (must be square).
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let n = rows.len();
        assert!(rows.iter().all(|r| r.len() == n), "matrix must be square");
        Matrix {
            n,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// LU decomposition with partial pivoting. Returns `None` for singular
    /// matrices.
    pub fn lu(&self) -> Option<Lu> {
        let n = self.n;
        let mut a = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0f64;
        for k in 0..n {
            // Pivot: largest |a[i][k]| for i >= k.
            let mut p = k;
            for i in (k + 1)..n {
                if a[i * n + k].abs() > a[p * n + k].abs() {
                    p = i;
                }
            }
            if a[p * n + k].abs() < 1e-300 {
                return None;
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor;
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Some(Lu {
            n,
            lu: a,
            perm,
            sign,
        })
    }

    /// Inverse via LU. `None` for singular matrices.
    pub fn inverse(&self) -> Option<Matrix> {
        let lu = self.lu()?;
        let n = self.n;
        let mut inv = Matrix::zeros(n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e.iter_mut().for_each(|v| *v = 0.0);
            e[col] = 1.0;
            let x = lu.solve(&e);
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
        }
        Some(inv)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// An LU factorization (PA = LU).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Solve `Ax = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Forward substitution with permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for j in 0..i {
                x[i] -= self.lu[i * n + j] * x[j];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[i * n + j] * x[j];
            }
            x[i] /= self.lu[i * n + i];
        }
        x
    }

    /// log|det A| and its sign.
    pub fn log_abs_det(&self) -> (f64, f64) {
        let n = self.n;
        let mut log = 0.0;
        let mut sign = self.sign;
        for i in 0..n {
            let d = self.lu[i * n + i];
            log += d.abs().ln();
            if d < 0.0 {
                sign = -sign;
            }
        }
        (log, sign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = a.lu().unwrap().solve(&b);
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![1.0, 3.0, 2.0],
            vec![1.0, 0.0, 0.5],
        ]);
        let inv = a.inverse().unwrap();
        for i in 0..3 {
            let col: Vec<f64> = (0..3).map(|j| inv[(j, i)]).collect();
            let e = a.mul_vec(&col);
            for (j, &v) in e.iter().enumerate() {
                let expect = f64::from(i == j);
                assert!((v - expect).abs() < 1e-10, "entry ({j},{i}) = {v}");
            }
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.lu().is_none());
        assert!(a.inverse().is_none());
    }

    #[test]
    fn log_det_matches_hand_computed() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 5.0]]);
        let (log, sign) = a.lu().unwrap().log_abs_det();
        assert!((log - 15.0f64.ln()).abs() < 1e-12);
        assert_eq!(sign, 1.0);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let (_, sign) = b.lu().unwrap().log_abs_det();
        assert_eq!(sign, -1.0, "swap has negative determinant");
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.lu().unwrap().solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }
}
