//! A one-hidden-layer multi-layer perceptron (the paper's Table-4 "Neural
//! Network (1 layer)", F1 = 0.93), trained with mini-batch SGD + momentum
//! on the softmax cross-entropy loss.

use crate::naive_bayes::softmax_from_log;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::Rng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 32,
            epochs: 60,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 16,
            weight_decay: 1e-4,
        }
    }
}

/// A fitted MLP.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Hidden weights, `hidden × (d + 1)` with bias folded in.
    w1: Vec<Vec<f64>>,
    /// Output weights, `n_classes × (hidden + 1)`.
    w2: Vec<Vec<f64>>,
    n_classes: usize,
}

impl Mlp {
    /// Train on `(x, y)`. Inputs should be standardized for stable SGD.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        config: MlpConfig,
        rng: &mut R,
    ) -> Mlp {
        assert!(!x.is_empty());
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        let h = config.hidden;
        let scale1 = (2.0 / d as f64).sqrt();
        let scale2 = (2.0 / h as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| {
                (0..=d)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale1)
                    .collect()
            })
            .collect();
        let mut w2: Vec<Vec<f64>> = (0..n_classes)
            .map(|_| {
                (0..=h)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale2)
                    .collect()
            })
            .collect();
        let mut v1 = vec![vec![0.0; d + 1]; h];
        let mut v2 = vec![vec![0.0; h + 1]; n_classes];

        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(rng);
            for batch in order.chunks(config.batch_size) {
                let mut g1 = vec![vec![0.0; d + 1]; h];
                let mut g2 = vec![vec![0.0; h + 1]; n_classes];
                for &i in batch {
                    backprop(&x[i], y[i], &w1, &w2, &mut g1, &mut g2);
                }
                let lr = config.learning_rate / batch.len() as f64;
                for (wr, (vr, gr)) in w1.iter_mut().zip(v1.iter_mut().zip(&g1)) {
                    for ((w, v), &g) in wr.iter_mut().zip(vr.iter_mut()).zip(gr) {
                        *v = config.momentum * *v - lr * (g + config.weight_decay * *w);
                        *w += *v;
                    }
                }
                for (wr, (vr, gr)) in w2.iter_mut().zip(v2.iter_mut().zip(&g2)) {
                    for ((w, v), &g) in wr.iter_mut().zip(vr.iter_mut()).zip(gr) {
                        *v = config.momentum * *v - lr * (g + config.weight_decay * *w);
                        *w += *v;
                    }
                }
            }
        }
        Mlp { w1, w2, n_classes }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let hidden = hidden_activations(x, &self.w1);
        output_scores(&hidden, &self.w2)
    }
}

fn hidden_activations(x: &[f64], w1: &[Vec<f64>]) -> Vec<f64> {
    w1.iter()
        .map(|wr| {
            let z: f64 = wr[..x.len()].iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + wr[x.len()];
            z.max(0.0) // ReLU
        })
        .collect()
}

fn output_scores(hidden: &[f64], w2: &[Vec<f64>]) -> Vec<f64> {
    w2.iter()
        .map(|wr| {
            wr[..hidden.len()]
                .iter()
                .zip(hidden)
                .map(|(w, v)| w * v)
                .sum::<f64>()
                + wr[hidden.len()]
        })
        .collect()
}

/// Accumulate cross-entropy gradients for one sample.
fn backprop(
    x: &[f64],
    y: usize,
    w1: &[Vec<f64>],
    w2: &[Vec<f64>],
    g1: &mut [Vec<f64>],
    g2: &mut [Vec<f64>],
) {
    let hidden = hidden_activations(x, w1);
    let scores = output_scores(&hidden, w2);
    let probs = softmax_from_log(&scores);
    // d(loss)/d(score_c) = p_c - 1[c == y]
    let dscore: Vec<f64> = probs
        .iter()
        .enumerate()
        .map(|(c, &p)| p - f64::from(c == y))
        .collect();
    for (c, &ds) in dscore.iter().enumerate() {
        for (j, &hv) in hidden.iter().enumerate() {
            g2[c][j] += ds * hv;
        }
        g2[c][hidden.len()] += ds;
    }
    for (j, hv) in hidden.iter().enumerate() {
        if *hv <= 0.0 {
            continue; // ReLU gradient gate
        }
        let dh: f64 = dscore.iter().zip(w2).map(|(&ds, wr)| ds * wr[j]).sum();
        for (k, &xv) in x.iter().enumerate() {
            g1[j][k] += dh * xv;
        }
        g1[j][x.len()] += dh;
    }
}

impl Classifier for Mlp {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax_from_log(&self.forward(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(13)
    }

    #[test]
    fn learns_linear_boundary() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i as f64 * 0.7919).fract() * 2.0 - 1.0;
            let b = (i as f64 * 0.3571).fract() * 2.0 - 1.0;
            x.push(vec![a, b]);
            y.push(usize::from(a + b > 0.0));
        }
        let mlp = Mlp::fit(&x, &y, 2, MlpConfig::default(), &mut rng());
        let acc = mlp
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..240 {
            let a = (i as f64 * 0.7919).fract() * 2.0 - 1.0;
            let b = (i as f64 * 0.3571).fract() * 2.0 - 1.0;
            x.push(vec![a, b]);
            y.push(usize::from((a > 0.0) != (b > 0.0)));
        }
        let cfg = MlpConfig {
            epochs: 200,
            hidden: 16,
            ..Default::default()
        };
        let mlp = Mlp::fit(&x, &y, 2, cfg, &mut rng());
        let acc = mlp
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.9, "xor accuracy {acc}");
    }

    #[test]
    fn probabilities_form_distribution() {
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        let y = vec![0, 1, 0];
        let mlp = Mlp::fit(
            &x,
            &y,
            2,
            MlpConfig {
                epochs: 5,
                ..Default::default()
            },
            &mut rng(),
        );
        for xi in &x {
            let p = mlp.predict_proba(xi);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }
}
