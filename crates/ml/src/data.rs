//! Data-set plumbing: splits, standardization, class re-balancing.

use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`train_test_split`].
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Fraction of samples placed in the training set.
    pub train_fraction: f64,
    /// Shuffle before splitting (`false` = time-ordered split, the paper's
    /// §7.3 "time-based splits").
    pub shuffle: bool,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            train_fraction: 0.5,
            shuffle: true,
        }
    }
}

/// A `(features, labels)` pair.
pub type LabeledSet = (Vec<Vec<f64>>, Vec<usize>);

/// Split `(X, y)` into `((X_train, y_train), (X_test, y_test))`.
pub fn train_test_split<R: Rng>(
    x: &[Vec<f64>],
    y: &[usize],
    config: SplitConfig,
    rng: &mut R,
) -> (LabeledSet, LabeledSet) {
    assert_eq!(x.len(), y.len(), "X/y length mismatch");
    let mut idx: Vec<usize> = (0..x.len()).collect();
    if config.shuffle {
        idx.shuffle(rng);
    }
    let n_train = (x.len() as f64 * config.train_fraction).round() as usize;
    let (tr, te) = idx.split_at(n_train.min(x.len()));
    let take = |ids: &[usize]| -> (Vec<Vec<f64>>, Vec<usize>) {
        (
            ids.iter().map(|&i| x[i].clone()).collect(),
            ids.iter().map(|&i| y[i]).collect(),
        )
    };
    (take(tr), take(te))
}

/// The paper's class-imbalance treatment (§7): keep every positive
/// (PhyNet) sample eligible, but only `keep_fraction` of the negatives for
/// training; the rest are returned as extra test samples.
///
/// Returns `(train_indices, spilled_negative_indices)`.
pub fn rebalance_negatives<R: Rng>(
    y: &[usize],
    keep_fraction: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    let mut negatives: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 0).collect();
    negatives.shuffle(rng);
    let keep = (negatives.len() as f64 * keep_fraction).round() as usize;
    let (kept, spilled) = negatives.split_at(keep.min(negatives.len()));
    let mut train: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 1).collect();
    train.extend_from_slice(kept);
    train.sort_unstable();
    (train, spilled.to_vec())
}

/// Per-feature z-score scaler fitted on a training set.
#[derive(Debug, Clone)]
pub struct Scaler {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (zeros replaced by 1).
    pub sd: Vec<f64>,
}

impl Scaler {
    /// Fit on a feature matrix.
    pub fn fit(x: &[Vec<f64>]) -> Scaler {
        assert!(!x.is_empty(), "cannot fit a scaler on an empty matrix");
        let d = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut sd = vec![0.0; d];
        for row in x {
            for ((s, &v), &m) in sd.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut sd {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        Scaler { mean, sd }
    }

    /// Transform one sample in place.
    pub fn transform_mut(&self, x: &mut [f64]) {
        for ((v, &m), &s) in x.iter_mut().zip(&self.mean).zip(&self.sd) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a matrix, returning a new one.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|row| {
                let mut r = row.clone();
                self.transform_mut(&mut r);
                r
            })
            .collect()
    }
}

/// Fit-and-transform shorthand used across the experiments.
pub fn standardize(
    train: &[Vec<f64>],
    test: &[Vec<f64>],
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Scaler) {
    let scaler = Scaler::fit(train);
    (scaler.transform(train), scaler.transform(test), scaler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let y: Vec<usize> = (0..100).map(|i| usize::from(i % 4 == 0)).collect();
        (x, y)
    }

    #[test]
    fn split_partitions_everything() {
        let (x, y) = toy();
        let mut rng = SmallRng::seed_from_u64(1);
        let ((xtr, ytr), (xte, yte)) = train_test_split(
            &x,
            &y,
            SplitConfig {
                train_fraction: 0.7,
                shuffle: true,
            },
            &mut rng,
        );
        assert_eq!(xtr.len(), 70);
        assert_eq!(xte.len(), 30);
        assert_eq!(ytr.len(), 70);
        assert_eq!(yte.len(), 30);
    }

    #[test]
    fn unshuffled_split_is_time_ordered() {
        let (x, y) = toy();
        let mut rng = SmallRng::seed_from_u64(1);
        let ((xtr, _), (xte, _)) = train_test_split(
            &x,
            &y,
            SplitConfig {
                train_fraction: 0.5,
                shuffle: false,
            },
            &mut rng,
        );
        assert_eq!(xtr[0][0], 0.0);
        assert_eq!(xtr[49][0], 49.0);
        assert_eq!(xte[0][0], 50.0);
    }

    #[test]
    fn rebalance_keeps_all_positives() {
        let (_, y) = toy();
        let mut rng = SmallRng::seed_from_u64(2);
        let (train, spilled) = rebalance_negatives(&y, 0.35, &mut rng);
        let positives = y.iter().filter(|&&v| v == 1).count();
        let negatives = y.len() - positives;
        assert_eq!(train.iter().filter(|&&i| y[i] == 1).count(), positives);
        let kept_neg = train.len() - positives;
        assert_eq!(kept_neg, (negatives as f64 * 0.35).round() as usize);
        assert_eq!(kept_neg + spilled.len(), negatives);
        for &i in &spilled {
            assert_eq!(y[i], 0);
        }
    }

    #[test]
    fn scaler_zero_means_unit_variance() {
        let (x, _) = toy();
        let scaler = Scaler::fit(&x);
        let xs = scaler.transform(&x);
        for j in 0..2 {
            let mean: f64 = xs.iter().map(|r| r[j]).sum::<f64>() / xs.len() as f64;
            let var: f64 = xs.iter().map(|r| r[j] * r[j]).sum::<f64>() / xs.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_handles_constant_features() {
        let x = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let scaler = Scaler::fit(&x);
        let xs = scaler.transform(&x);
        for r in &xs {
            assert_eq!(r[0], 0.0, "constant feature maps to 0, not NaN");
            assert!(r[1].is_finite());
        }
    }
}
