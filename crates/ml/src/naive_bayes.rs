//! Gaussian Naive Bayes (the weakest Table-4 baseline, F1 = 0.73 — its
//! independence assumption is a poor fit for correlated telemetry
//! statistics, which this reproduction should show too).

use crate::Classifier;

/// Fitted Gaussian NB model.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Per class: log prior.
    log_prior: Vec<f64>,
    /// Per class, per feature: mean.
    mean: Vec<Vec<f64>>,
    /// Per class, per feature: variance (floored).
    var: Vec<Vec<f64>>,
}

/// Variance floor, mirroring scikit-learn's `var_smoothing` role.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Fit per-class feature Gaussians.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize) -> GaussianNb {
        assert!(!x.is_empty());
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        let mut count = vec![0usize; n_classes];
        let mut mean = vec![vec![0.0; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            count[yi] += 1;
            for (m, &v) in mean[yi].iter_mut().zip(xi) {
                *m += v;
            }
        }
        for (c, m) in mean.iter_mut().enumerate() {
            if count[c] > 0 {
                for v in m.iter_mut() {
                    *v /= count[c] as f64;
                }
            }
        }
        let mut var = vec![vec![0.0; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            for ((s, &v), &m) in var[yi].iter_mut().zip(xi).zip(&mean[yi]) {
                *s += (v - m) * (v - m);
            }
        }
        // Global variance scale keeps the floor meaningful across units.
        let global_scale: f64 = {
            let total: f64 = var.iter().map(|vr| vr.iter().sum::<f64>()).sum();
            (total / (x.len() * d) as f64).max(1.0)
        };
        for (c, vr) in var.iter_mut().enumerate() {
            for v in vr.iter_mut() {
                *v = if count[c] > 0 {
                    *v / count[c] as f64
                } else {
                    0.0
                };
                *v = v.max(VAR_FLOOR * global_scale);
            }
        }
        let n = x.len() as f64;
        let log_prior = count
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n).ln()
                }
            })
            .collect();
        GaussianNb {
            log_prior,
            mean,
            var,
        }
    }

    fn log_likelihoods(&self, x: &[f64]) -> Vec<f64> {
        self.log_prior
            .iter()
            .enumerate()
            .map(|(c, &lp)| {
                if lp == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut ll = lp;
                for ((&v, &m), &s2) in x.iter().zip(&self.mean[c]).zip(&self.var[c]) {
                    ll += -0.5 * ((v - m) * (v - m) / s2 + s2.ln() + LN_2PI);
                }
                ll
            })
            .collect()
    }
}

const LN_2PI: f64 = 1.837_877_066_409_345_6;

impl Classifier for GaussianNb {
    fn n_classes(&self) -> usize {
        self.log_prior.len()
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax_from_log(&self.log_likelihoods(x))
    }
}

/// Stable softmax over log scores (−∞ entries become zero probability).
pub(crate) fn softmax_from_log(log_scores: &[f64]) -> Vec<f64> {
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return vec![1.0 / log_scores.len() as f64; log_scores.len()];
    }
    let exps: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_gaussians_are_learned() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let jitter = ((i * 31) % 10) as f64 * 0.05;
            if i % 2 == 0 {
                x.push(vec![0.0 + jitter, 1.0 - jitter]);
                y.push(0);
            } else {
                x.push(vec![5.0 + jitter, -3.0 + jitter]);
                y.push(1);
            }
        }
        let nb = GaussianNb::fit(&x, &y, 2);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(nb.predict(xi), yi);
        }
    }

    #[test]
    fn probabilities_form_distribution() {
        let x = vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]];
        let y = vec![0, 0, 1, 1];
        let nb = GaussianNb::fit(&x, &y, 2);
        let p = nb.predict_proba(&[3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn priors_matter_for_ambiguous_points() {
        // Class 0 is 9× more common; identical likelihoods at the midpoint.
        let mut x = vec![vec![0.0]; 9];
        x.push(vec![2.0]);
        let mut y = vec![0; 9];
        y.push(1);
        let nb = GaussianNb::fit(&x, &y, 2);
        let p = nb.predict_proba(&[1.0]);
        assert!(p[0] > p[1], "prior should break the tie: {p:?}");
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 5.0],
            vec![1.0, 6.0],
        ];
        let y = vec![0, 0, 1, 1];
        let nb = GaussianNb::fit(&x, &y, 2);
        let p = nb.predict_proba(&[1.0, 5.5]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&[1.0, 5.5]), 1);
    }

    #[test]
    fn empty_class_gets_zero_probability() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 0];
        let nb = GaussianNb::fit(&x, &y, 2);
        let p = nb.predict_proba(&[0.5]);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }
}
