//! Plain-text serialization for trained models.
//!
//! A deliberately simple line-oriented format (one node / vector per line,
//! `{:?}`-formatted floats so values round-trip exactly) so that saved
//! models are diffable, greppable, and loadable without any external
//! dependency. Used by `Scout::save`/`Scout::load` and `scoutctl`.

use crate::adaboost::AdaBoost;
use crate::forest::RandomForest;
use crate::smo::OneClassSvmSmo;
use crate::svm::Kernel;
use crate::tree::{DecisionTree, Node};
use std::fmt::Write as _;

/// A serialization / deserialization error.
#[derive(Debug)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model format error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

fn err(msg: impl Into<String>) -> PersistError {
    PersistError(msg.into())
}

/// Line-cursor over the textual form.
pub struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    /// Wrap a source string.
    pub fn new(src: &'a str) -> Lines<'a> {
        Lines {
            iter: src.lines(),
            line_no: 0,
        }
    }

    /// 1-based number of the most recently returned line.
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    /// A format error pinned to the current line.
    pub fn error_here(&self, msg: impl std::fmt::Display) -> PersistError {
        err(format!("line {}: {msg}", self.line_no))
    }

    /// Next non-empty line.
    pub fn next_line(&mut self) -> Result<&'a str, PersistError> {
        loop {
            self.line_no += 1;
            match self.iter.next() {
                None => {
                    return Err(err(format!(
                        "unexpected end of model file at line {}",
                        self.line_no
                    )))
                }
                Some(l) if l.trim().is_empty() => continue,
                Some(l) => return Ok(l.trim()),
            }
        }
    }

    /// Next line, which must equal `expected`.
    pub fn expect(&mut self, expected: &str) -> Result<(), PersistError> {
        let l = self.next_line()?;
        if l != expected {
            return Err(err(format!(
                "line {}: expected '{expected}', found '{l}'",
                self.line_no
            )));
        }
        Ok(())
    }

    /// Parse the next line as whitespace-separated values.
    pub fn fields<T: std::str::FromStr>(&mut self) -> Result<Vec<T>, PersistError> {
        let l = self.next_line()?;
        let line_no = self.line_no;
        l.split_whitespace()
            .map(|f| {
                f.parse()
                    .map_err(|_| err(format!("line {line_no}: cannot parse '{f}' in '{l}'")))
            })
            .collect()
    }
}

fn floats(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:?}"))
        .collect::<Vec<_>>()
        .join(" ")
}

// ---------- decision trees ----------

/// Serialize a tree.
pub fn tree_to_text(tree: &DecisionTree) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tree {} {} {}",
        tree.n_classes(),
        tree.n_features(),
        tree.node_count()
    );
    for node in tree.nodes() {
        match node {
            Node::Leaf { proba } => {
                let _ = writeln!(out, "L {}", floats(proba));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
                proba,
            } => {
                let _ = writeln!(
                    out,
                    "S {feature} {threshold:?} {left} {right} {}",
                    floats(proba)
                );
            }
        }
    }
    out
}

/// Deserialize a tree.
pub fn tree_from_lines(lines: &mut Lines<'_>) -> Result<DecisionTree, PersistError> {
    let header = lines.next_line()?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("tree") {
        return Err(lines.error_here(format_args!("expected tree header, found '{header}'")));
    }
    let n_classes: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| lines.error_here("bad n_classes"))?;
    let n_features: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| lines.error_here("bad n_features"))?;
    let n_nodes: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| lines.error_here("bad node count"))?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let l = lines.next_line()?;
        let at = |msg: String| err(format!("line {}: {msg}", lines.line_no()));
        let mut f = l.split_whitespace();
        match f.next() {
            Some("L") => {
                let proba: Vec<f64> = f
                    .map(|x| x.parse().map_err(|_| at(format!("bad float in '{l}'"))))
                    .collect::<Result<_, _>>()?;
                if proba.len() != n_classes {
                    return Err(at(format!("leaf arity mismatch in '{l}'")));
                }
                nodes.push(Node::Leaf { proba });
            }
            Some("S") => {
                let feature: usize = f
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| at(format!("bad feature in '{l}'")))?;
                let threshold: f64 = f
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| at(format!("bad threshold in '{l}'")))?;
                let left: usize = f
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| at(format!("bad left in '{l}'")))?;
                let right: usize = f
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| at(format!("bad right in '{l}'")))?;
                let proba: Vec<f64> = f
                    .map(|x| x.parse().map_err(|_| at(format!("bad float in '{l}'"))))
                    .collect::<Result<_, _>>()?;
                if left >= n_nodes || right >= n_nodes {
                    return Err(at(format!("child index out of range in '{l}'")));
                }
                nodes.push(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    proba,
                });
            }
            _ => return Err(at(format!("unknown node line '{l}'"))),
        }
    }
    DecisionTree::from_parts(nodes, n_classes, n_features).map_err(err)
}

// ---------- forests ----------

/// Serialize a forest.
pub fn forest_to_text(forest: &RandomForest) -> String {
    let mut out = format!("forest {}\n", forest.n_trees());
    for tree in forest.trees() {
        out.push_str(&tree_to_text(tree));
    }
    out
}

/// Deserialize a forest.
pub fn forest_from_lines(lines: &mut Lines<'_>) -> Result<RandomForest, PersistError> {
    let header = lines.next_line()?;
    let n: usize = header
        .strip_prefix("forest ")
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| {
            lines.error_here(format_args!("expected forest header, found '{header}'"))
        })?;
    let mut trees = Vec::with_capacity(n);
    for _ in 0..n {
        trees.push(tree_from_lines(lines)?);
    }
    RandomForest::from_trees(trees).map_err(err)
}

// ---------- AdaBoost ----------

/// Serialize an AdaBoost ensemble.
pub fn adaboost_to_text(model: &AdaBoost) -> String {
    let mut out = format!("adaboost {}\n", model.stumps().len());
    for (stump, alpha) in model.stumps() {
        let _ = writeln!(out, "alpha {alpha:?}");
        out.push_str(&tree_to_text(stump));
    }
    out
}

/// Deserialize an AdaBoost ensemble.
pub fn adaboost_from_lines(lines: &mut Lines<'_>) -> Result<AdaBoost, PersistError> {
    let header = lines.next_line()?;
    let n: usize = header
        .strip_prefix("adaboost ")
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| {
            lines.error_here(format_args!("expected adaboost header, found '{header}'"))
        })?;
    let mut stumps = Vec::with_capacity(n);
    for _ in 0..n {
        let alpha_line = lines.next_line()?;
        let alpha: f64 = alpha_line
            .strip_prefix("alpha ")
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| {
                lines.error_here(format_args!("expected alpha line, found '{alpha_line}'"))
            })?;
        let tree = tree_from_lines(lines)?;
        stumps.push((tree, alpha));
    }
    AdaBoost::from_stumps(stumps).map_err(err)
}

// ---------- one-class SVM ----------

fn kernel_to_text(k: Kernel) -> String {
    match k {
        Kernel::Rbf { gamma } => format!("rbf {gamma:?}"),
        Kernel::Poly { degree, scale } => format!("poly {degree} {scale:?}"),
    }
}

fn kernel_from_text(s: &str) -> Result<Kernel, PersistError> {
    let mut f = s.split_whitespace();
    match f.next() {
        Some("rbf") => {
            let gamma = f
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| err("bad gamma"))?;
            Ok(Kernel::Rbf { gamma })
        }
        Some("poly") => {
            let degree = f
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| err("bad degree"))?;
            let scale = f
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| err("bad scale"))?;
            Ok(Kernel::Poly { degree, scale })
        }
        _ => Err(err(format!("unknown kernel '{s}'"))),
    }
}

/// Serialize a trained one-class SVM.
pub fn svm_to_text(model: &OneClassSvmSmo) -> String {
    let (svs, alphas, kernel, rho) = model.parts();
    let mut out = format!(
        "ocsvm {} {} {}\n",
        svs.len(),
        kernel_to_text(kernel),
        format_args!("{rho:?}")
    );
    let _ = writeln!(out, "{}", floats(alphas));
    for sv in svs {
        let _ = writeln!(out, "{}", floats(sv));
    }
    out
}

/// Deserialize a one-class SVM.
pub fn svm_from_lines(lines: &mut Lines<'_>) -> Result<OneClassSvmSmo, PersistError> {
    let header = lines.next_line()?;
    let rest = header
        .strip_prefix("ocsvm ")
        .ok_or_else(|| lines.error_here(format_args!("expected ocsvm header, found '{header}'")))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let n: usize = fields
        .first()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| lines.error_here("bad sv count"))?;
    let rho: f64 = fields
        .last()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| lines.error_here("bad rho"))?;
    let kernel = kernel_from_text(&fields[1..fields.len() - 1].join(" "))?;
    let alphas: Vec<f64> = lines.fields()?;
    if alphas.len() != n {
        return Err(err("alpha count mismatch"));
    }
    let mut svs = Vec::with_capacity(n);
    for _ in 0..n {
        svs.push(lines.fields()?);
    }
    OneClassSvmSmo::from_parts(svs, alphas, kernel, rho).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use crate::smo::SmoConfig;
    use crate::Classifier;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let x: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 9) as f64 * 0.37, (i % 7) as f64 * 0.53])
            .collect();
        let y: Vec<usize> = (0..80).map(|i| usize::from((i % 9) > 4)).collect();
        (x, y)
    }

    #[test]
    fn tree_round_trips_exactly() {
        let (x, y) = data();
        let w = vec![1.0; x.len()];
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&x, &y, &w, 2, crate::tree::TreeConfig::default(), &mut rng);
        let text = tree_to_text(&tree);
        let back = tree_from_lines(&mut Lines::new(&text)).unwrap();
        for xi in &x {
            assert_eq!(tree.predict_proba(xi), back.predict_proba(xi));
        }
    }

    #[test]
    fn forest_round_trips_exactly() {
        let (x, y) = data();
        let mut rng = SmallRng::seed_from_u64(2);
        let f = RandomForest::fit(
            &x,
            &y,
            2,
            ForestConfig {
                n_trees: 9,
                ..Default::default()
            },
            &mut rng,
        );
        let text = forest_to_text(&f);
        let back = forest_from_lines(&mut Lines::new(&text)).unwrap();
        for xi in &x {
            assert_eq!(
                RandomForest::predict_proba(&f, xi),
                RandomForest::predict_proba(&back, xi)
            );
        }
    }

    #[test]
    fn adaboost_round_trips_exactly() {
        let (x, y) = data();
        let mut rng = SmallRng::seed_from_u64(3);
        let m = AdaBoost::fit(&x, &y, 2, 12, &mut rng);
        let text = adaboost_to_text(&m);
        let back = adaboost_from_lines(&mut Lines::new(&text)).unwrap();
        for xi in &x {
            assert_eq!(m.predict_proba(xi), back.predict_proba(xi));
        }
    }

    #[test]
    fn svm_round_trips_exactly() {
        let (x, _) = data();
        let m = OneClassSvmSmo::fit(&x, Kernel::Rbf { gamma: 0.7 }, SmoConfig::default());
        let text = svm_to_text(&m);
        let back = svm_from_lines(&mut Lines::new(&text)).unwrap();
        for xi in &x {
            assert_eq!(m.decision(xi), back.decision(xi));
        }
        let poly = OneClassSvmSmo::fit(
            &x,
            Kernel::Poly {
                degree: 3,
                scale: 2.0,
            },
            SmoConfig::default(),
        );
        let text = svm_to_text(&poly);
        let back = svm_from_lines(&mut Lines::new(&text)).unwrap();
        assert_eq!(poly.decision(&x[0]), back.decision(&x[0]));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = tree_from_lines(&mut Lines::new("tree 2 2 1\nX junk")).unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
        let e = forest_from_lines(&mut Lines::new("forest two")).unwrap_err();
        assert!(e.0.contains("line 1"), "{e}");
        let e = forest_from_lines(&mut Lines::new("forest 3\n")).unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
    }

    #[test]
    fn corrupted_input_is_rejected() {
        assert!(tree_from_lines(&mut Lines::new("nonsense")).is_err());
        assert!(forest_from_lines(&mut Lines::new("forest two")).is_err());
        assert!(tree_from_lines(&mut Lines::new("tree 2 2 1\nS 0 bad 1 2 0.5 0.5")).is_err());
        // Truncated file.
        assert!(forest_from_lines(&mut Lines::new("forest 3\n")).is_err());
        // Child index out of range.
        assert!(tree_from_lines(&mut Lines::new("tree 2 1 1\nS 0 1.0 5 6 0.5 0.5")).is_err());
    }
}
