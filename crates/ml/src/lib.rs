//! `ml` — the machine-learning substrate, implemented from scratch.
//!
//! The paper's production Scout is served by Azure's Resource Central over
//! scikit-learn-style models. None of that exists off the shelf in this
//! reproduction, so this crate implements every model the paper trains,
//! compares against, or mentions:
//!
//! * [`forest`] — CART random forests with class weights, sample weights,
//!   impurity-based feature importance, and *per-prediction feature
//!   contributions* (Palczewska et al., the paper's explanation method
//!   \[57\]).
//! * [`cpd`] — nonparametric change-point detection (the e-divisive energy
//!   statistic of Matteson & James \[51\]), the core of CPD+.
//! * [`knn`], [`naive_bayes`], [`adaboost`], [`mlp`], [`qda`] — the Table-4
//!   comparison zoo.
//! * [`smo`] — a real one-class SVM (Schölkopf ν-formulation) trained by
//!   sequential minimal optimization; [`svm`] keeps a cheaper kernel-mean
//!   novelty detector for high-volume paths. Both provide the paper's
//!   "aggressive" (RBF) and "conservative" (polynomial) kernel split
//!   (§5.3 / Appendix B).
//! * [`metrics`] — precision / recall / F1 and confusion matrices.
//! * [`data`] — train/test splitting (random and time-ordered),
//!   standardization, and class re-balancing (§7's 35% down-sampling).
//!
//! All classifiers implement [`Classifier`]; all inputs are plain
//! `&[Vec<f64>]` feature matrices, keeping the crate dependency-free except
//! for `rand`.

pub mod adaboost;
pub mod cpd;
pub mod data;
pub mod flat;
pub mod forest;
pub mod knn;
pub mod linalg;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod naive_bayes;
pub mod persist;
pub mod qda;
pub mod smo;
pub mod svm;
pub mod tree;

pub use adaboost::AdaBoost;
pub use cpd::{detect_change_points, CpdConfig};
pub use data::{standardize, train_test_split, Scaler, SplitConfig};
pub use flat::FlatForest;
pub use forest::{ForestConfig, RandomForest};
pub use knn::KnnClassifier;
pub use matrix::FeatureMatrix;
pub use metrics::{confusion, BinaryMetrics, Confusion};
pub use mlp::{Mlp, MlpConfig};
pub use naive_bayes::GaussianNb;
pub use qda::Qda;
pub use smo::{OneClassSvmSmo, SmoConfig};
pub use svm::{Kernel, OneClassSvm};
pub use tree::{DecisionTree, TreeConfig};

/// A trained classifier over fixed-length feature vectors.
///
/// `predict_proba` returns one probability per class; classes are dense
/// `0..n_classes` labels.
pub trait Classifier {
    /// Number of classes the model distinguishes.
    fn n_classes(&self) -> usize;

    /// Class-probability estimates for one sample.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// The argmax class for one sample.
    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        argmax(&p)
    }

    /// Predictions for a batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Index of the maximum element (first on ties). Empty slices return 0.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[-5.0, -1.0]), 1);
    }
}
