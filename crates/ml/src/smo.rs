//! A real one-class SVM (Schölkopf et al.), trained by sequential minimal
//! optimization — upgrading the kernel-mean stand-in in [`crate::svm`] to
//! the genuine article.
//!
//! Dual problem (ν-one-class formulation):
//!
//! ```text
//!   min_α  ½ αᵀ Q α        Q_ij = K(x_i, x_j)
//!   s.t.   0 ≤ α_i ≤ 1/(νn),   Σ α_i = 1
//! ```
//!
//! SMO repeatedly picks the maximal-violating pair (first-order working-set
//! selection, as in LIBSVM), solves the two-variable subproblem in closed
//! form, and clips to the box. The decision function is
//! `f(x) = Σ α_i K(x_i, x) − ρ`, with `ρ` recovered from the margin
//! support vectors; `f(x) ≥ 0` ⇒ inlier.

use crate::svm::Kernel;

/// Training hyper-parameters for the SMO solver.
#[derive(Debug, Clone, Copy)]
pub struct SmoConfig {
    /// Target fraction of training outliers, `ν ∈ (0, 1)`.
    pub nu: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Iteration cap (pair updates).
    pub max_iterations: usize,
}

impl Default for SmoConfig {
    fn default() -> Self {
        SmoConfig {
            nu: 0.05,
            tolerance: 1e-4,
            max_iterations: 20_000,
        }
    }
}

/// A trained one-class SVM: sparse support vectors + offset.
#[derive(Debug, Clone)]
pub struct OneClassSvmSmo {
    support_vectors: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    kernel: Kernel,
    rho: f64,
}

impl OneClassSvmSmo {
    /// Train on (unlabeled) inlier data.
    pub fn fit(x: &[Vec<f64>], kernel: Kernel, config: SmoConfig) -> OneClassSvmSmo {
        assert!(!x.is_empty(), "one-class SVM needs training data");
        assert!(
            (0.0 < config.nu) && (config.nu < 1.0),
            "nu must be in (0,1)"
        );
        let n = x.len();
        let c = 1.0 / (config.nu * n as f64);

        // Precompute the kernel matrix (training sets here are ≤ a few
        // thousand rows; dense is fine and much faster than recomputing).
        let q: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| kernel.eval(&x[i], &x[j])).collect())
            .collect();

        // Feasible start: spread mass over the first ⌈1/C⌉ points.
        let mut alpha = vec![0.0; n];
        {
            let mut remaining: f64 = 1.0;
            for a in alpha.iter_mut() {
                let take = remaining.min(c);
                *a = take;
                remaining -= take;
                if remaining <= 0.0 {
                    break;
                }
            }
        }
        // Gradient g_i = (Qα)_i.
        let mut grad: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| q[i][j] * alpha[j]).sum())
            .collect();

        for _ in 0..config.max_iterations {
            // Working-set selection: the pair with the largest violation.
            // i may increase (α_i < C), j may decrease (α_j > 0); at the
            // optimum all "up" candidates have gradient ≥ all "down" ones.
            let mut i_up: Option<usize> = None; // min gradient among α < C
            let mut j_down: Option<usize> = None; // max gradient among α > 0
            for k in 0..n {
                if alpha[k] < c - 1e-12 && i_up.is_none_or(|i| grad[k] < grad[i]) {
                    i_up = Some(k);
                }
                if alpha[k] > 1e-12 && j_down.is_none_or(|j| grad[k] > grad[j]) {
                    j_down = Some(k);
                }
            }
            let (Some(i), Some(j)) = (i_up, j_down) else {
                break;
            };
            if grad[j] - grad[i] < config.tolerance {
                break; // KKT satisfied
            }
            // Two-variable subproblem along α_i + α_j = const.
            let eta = (q[i][i] + q[j][j] - 2.0 * q[i][j]).max(1e-12);
            let mut delta = (grad[j] - grad[i]) / eta;
            // Box clipping: α_i ≤ C and α_j ≥ 0.
            delta = delta.min(c - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                break;
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            for (k, g) in grad.iter_mut().enumerate() {
                *g += delta * (q[i][k] - q[j][k]);
            }
        }

        // ρ: average decision value over margin SVs (0 < α < C), falling
        // back to all SVs when none sit strictly inside the box.
        let margin: Vec<usize> = (0..n)
            .filter(|&k| alpha[k] > 1e-9 && alpha[k] < c - 1e-9)
            .collect();
        let anchors: Vec<usize> = if margin.is_empty() {
            (0..n).filter(|&k| alpha[k] > 1e-9).collect()
        } else {
            margin
        };
        let rho = anchors.iter().map(|&k| grad[k]).sum::<f64>() / anchors.len() as f64;

        // Keep only the support vectors.
        let mut support_vectors = Vec::new();
        let mut alphas = Vec::new();
        for k in 0..n {
            if alpha[k] > 1e-9 {
                support_vectors.push(x[k].clone());
                alphas.push(alpha[k]);
            }
        }
        OneClassSvmSmo {
            support_vectors,
            alphas,
            kernel,
            rho,
        }
    }

    /// Decision value `f(x) = Σ α_i K(sv_i, x) − ρ` (≥ 0 ⇒ inlier).
    pub fn decision(&self, x: &[f64]) -> f64 {
        let s: f64 = self
            .support_vectors
            .iter()
            .zip(&self.alphas)
            .map(|(sv, &a)| a * self.kernel.eval(sv, x))
            .sum();
        s - self.rho
    }

    /// Is `x` like the training data?
    pub fn is_inlier(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Is `x` novel?
    pub fn is_novel(&self, x: &[f64]) -> bool {
        !self.is_inlier(x)
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support_vectors.len()
    }

    /// The learned offset ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The model's parts (persistence).
    pub fn parts(&self) -> (&[Vec<f64>], &[f64], Kernel, f64) {
        (&self.support_vectors, &self.alphas, self.kernel, self.rho)
    }

    /// Reassemble from parts (persistence).
    pub fn from_parts(
        support_vectors: Vec<Vec<f64>>,
        alphas: Vec<f64>,
        kernel: Kernel,
        rho: f64,
    ) -> Result<OneClassSvmSmo, String> {
        if support_vectors.len() != alphas.len() {
            return Err("support vector / alpha count mismatch".into());
        }
        if support_vectors.is_empty() {
            return Err("a one-class SVM needs at least one support vector".into());
        }
        Ok(OneClassSvmSmo {
            support_vectors,
            alphas,
            kernel,
            rho,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let j = (i as f64 * 0.7919).fract() - 0.5;
                let k = (i as f64 * 0.3571).fract() - 0.5;
                vec![center + j, center + k]
            })
            .collect()
    }

    #[test]
    fn separates_inliers_from_far_outliers() {
        let train = blob(0.0, 120);
        let svm = OneClassSvmSmo::fit(&train, Kernel::Rbf { gamma: 1.0 }, SmoConfig::default());
        assert!(svm.is_inlier(&[0.0, 0.0]));
        assert!(svm.is_novel(&[6.0, 6.0]));
        assert!(svm.is_novel(&[-5.0, 4.0]));
    }

    #[test]
    fn nu_bounds_the_training_outlier_fraction() {
        // Schölkopf's ν-property: at the optimum, the fraction of training
        // points classified as outliers is at most ν (+ slack for the
        // finite sample), and the fraction of SVs is at least ν.
        let train = blob(1.0, 200);
        for nu in [0.05, 0.2] {
            let svm = OneClassSvmSmo::fit(
                &train,
                Kernel::Rbf { gamma: 0.8 },
                SmoConfig {
                    nu,
                    ..Default::default()
                },
            );
            let outliers =
                train.iter().filter(|p| svm.is_novel(p)).count() as f64 / train.len() as f64;
            assert!(
                outliers <= nu + 0.05,
                "nu {nu}: outlier fraction {outliers}"
            );
            assert!(
                svm.n_support() as f64 >= nu * train.len() as f64 * 0.8,
                "nu {nu}: only {} SVs",
                svm.n_support()
            );
        }
    }

    #[test]
    fn support_vectors_are_sparse_for_small_nu() {
        let train = blob(0.0, 150);
        let svm = OneClassSvmSmo::fit(
            &train,
            Kernel::Rbf { gamma: 1.0 },
            SmoConfig {
                nu: 0.05,
                ..Default::default()
            },
        );
        assert!(
            svm.n_support() < train.len() / 2,
            "{} SVs of {}",
            svm.n_support(),
            train.len()
        );
    }

    #[test]
    fn alphas_satisfy_the_constraints() {
        let train = blob(2.0, 80);
        let nu = 0.1;
        let svm = OneClassSvmSmo::fit(
            &train,
            Kernel::Rbf { gamma: 0.5 },
            SmoConfig {
                nu,
                ..Default::default()
            },
        );
        let c = 1.0 / (nu * train.len() as f64);
        let sum: f64 = svm.alphas.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "Σα = {sum}");
        for &a in &svm.alphas {
            assert!(a > 0.0 && a <= c + 1e-9);
        }
    }

    #[test]
    fn polynomial_kernel_also_works() {
        let train = blob(1.0, 100);
        let svm = OneClassSvmSmo::fit(
            &train,
            Kernel::Poly {
                degree: 2,
                scale: 2.0,
            },
            SmoConfig::default(),
        );
        // The training region is accepted. Note: with an even degree the
        // antipodal region maps to *high* kernel similarity, so the right
        // novelty probe is a low-dot-product point like the origin.
        assert!(svm.is_inlier(&[1.0, 1.0]));
        assert!(svm.is_novel(&[0.0, 0.0]));
    }

    #[test]
    fn single_point_training_is_degenerate_but_safe() {
        let svm = OneClassSvmSmo::fit(
            &[vec![1.0, 2.0]],
            Kernel::Rbf { gamma: 1.0 },
            SmoConfig {
                nu: 0.5,
                ..Default::default()
            },
        );
        assert!(svm.is_inlier(&[1.0, 2.0]));
        assert!(svm.decision(&[100.0, 100.0]) < svm.decision(&[1.0, 2.0]));
    }
}
