//! Quadratic Discriminant Analysis (Table 4, F1 = 0.9): per-class Gaussian
//! with full covariance, regularized toward the diagonal so it survives the
//! high-dimensional, partially-constant Scout feature vectors.

use crate::linalg::Matrix;
use crate::naive_bayes::softmax_from_log;
use crate::Classifier;

/// A fitted QDA model.
#[derive(Debug, Clone)]
pub struct Qda {
    log_prior: Vec<f64>,
    mean: Vec<Vec<f64>>,
    /// Per class: inverse covariance.
    precision: Vec<Matrix>,
    /// Per class: log|Σ|.
    log_det: Vec<f64>,
}

impl Qda {
    /// Fit with shrinkage `reg ∈ [0, 1]` toward the scaled identity
    /// (Ledoit–Wolf-style regularization; `reg = 0` is plain QDA).
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, reg: f64) -> Qda {
        assert!(!x.is_empty());
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        let mut log_prior = Vec::with_capacity(n_classes);
        let mut mean = Vec::with_capacity(n_classes);
        let mut precision = Vec::with_capacity(n_classes);
        let mut log_det = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let rows: Vec<&Vec<f64>> = x
                .iter()
                .zip(y)
                .filter(|(_, &yi)| yi == c)
                .map(|(xi, _)| xi)
                .collect();
            if rows.is_empty() {
                log_prior.push(f64::NEG_INFINITY);
                mean.push(vec![0.0; d]);
                precision.push(Matrix::identity(d));
                log_det.push(0.0);
                continue;
            }
            log_prior.push((rows.len() as f64 / x.len() as f64).ln());
            let mut mu = vec![0.0; d];
            for r in &rows {
                for (m, &v) in mu.iter_mut().zip(r.iter()) {
                    *m += v;
                }
            }
            for m in &mut mu {
                *m /= rows.len() as f64;
            }
            // Covariance with shrinkage toward avg-variance identity.
            let mut cov = Matrix::zeros(d);
            for r in &rows {
                for i in 0..d {
                    let di = r[i] - mu[i];
                    for j in i..d {
                        let v = di * (r[j] - mu[j]);
                        cov[(i, j)] += v;
                    }
                }
            }
            let denom = rows.len().max(2) as f64 - 1.0;
            for i in 0..d {
                for j in i..d {
                    let v = cov[(i, j)] / denom;
                    cov[(i, j)] = v;
                    cov[(j, i)] = v;
                }
            }
            let avg_var = ((0..d).map(|i| cov[(i, i)]).sum::<f64>() / d as f64).max(1e-9);
            for i in 0..d {
                for j in 0..d {
                    let target = if i == j { avg_var } else { 0.0 };
                    cov[(i, j)] = (1.0 - reg) * cov[(i, j)] + reg * target;
                }
                // Absolute floor to guarantee invertibility.
                cov[(i, i)] += 1e-9 * avg_var.max(1.0);
            }
            let lu = cov.lu().expect("regularized covariance must be invertible");
            let (ld, _) = lu.log_abs_det();
            let inv = cov
                .inverse()
                .expect("regularized covariance must be invertible");
            mean.push(mu);
            precision.push(inv);
            log_det.push(ld);
        }
        Qda {
            log_prior,
            mean,
            precision,
            log_det,
        }
    }

    fn discriminants(&self, x: &[f64]) -> Vec<f64> {
        self.log_prior
            .iter()
            .enumerate()
            .map(|(c, &lp)| {
                if lp == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let diff: Vec<f64> = x.iter().zip(&self.mean[c]).map(|(&v, &m)| v - m).collect();
                let pd = self.precision[c].mul_vec(&diff);
                let maha: f64 = diff.iter().zip(&pd).map(|(a, b)| a * b).sum();
                lp - 0.5 * (maha + self.log_det[c])
            })
            .collect()
    }
}

impl Classifier for Qda {
    fn n_classes(&self) -> usize {
        self.log_prior.len()
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax_from_log(&self.discriminants(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes with different covariance *shapes*, same center region —
    /// the case LDA cannot represent but QDA can.
    fn covariance_shaped() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let t = (i as f64 * 0.7919).fract() * 2.0 - 1.0;
            let u = (i as f64 * 0.3571).fract() * 2.0 - 1.0;
            if i % 2 == 0 {
                // Tight blob.
                x.push(vec![0.2 * t, 0.2 * u]);
                y.push(0);
            } else {
                // Wide ring-ish cloud.
                x.push(vec![3.0 * t, 3.0 * u]);
                y.push(1);
            }
        }
        (x, y)
    }

    #[test]
    fn captures_covariance_differences() {
        let (x, y) = covariance_shaped();
        let qda = Qda::fit(&x, &y, 2, 0.05);
        // Points near the origin belong to the tight class...
        assert_eq!(qda.predict(&[0.05, 0.02]), 0);
        // ...far points to the wide class.
        assert_eq!(qda.predict(&[2.5, -2.0]), 1);
        let acc = qda
            .predict_batch(&x)
            .iter()
            .zip(&y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn probabilities_form_distribution() {
        let (x, y) = covariance_shaped();
        let qda = Qda::fit(&x, &y, 2, 0.1);
        for xi in x.iter().take(20) {
            let p = qda.predict_proba(xi);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn survives_constant_features() {
        let x = vec![
            vec![1.0, 0.0, 7.0],
            vec![1.0, 0.5, 7.0],
            vec![1.0, 5.0, 7.0],
            vec![1.0, 5.5, 7.0],
        ];
        let y = vec![0, 0, 1, 1];
        let qda = Qda::fit(&x, &y, 2, 0.2);
        assert_eq!(qda.predict(&[1.0, 0.2, 7.0]), 0);
        assert_eq!(qda.predict(&[1.0, 5.2, 7.0]), 1);
    }

    #[test]
    fn empty_class_gets_zero_probability() {
        let x = vec![vec![0.0, 1.0], vec![0.2, 0.8]];
        let y = vec![0, 0];
        let qda = Qda::fit(&x, &y, 2, 0.5);
        let p = qda.predict_proba(&[0.1, 0.9]);
        assert_eq!(p[1], 0.0);
    }
}
