//! Property-based tests for the ML substrate: invariants that must hold
//! for arbitrary data, not just the fixtures.

use ml::cpd::{detect_change_points_fast, FAST_THRESHOLD};
use ml::data::Scaler;
use ml::forest::{ForestConfig, RandomForest};
use ml::metrics::Confusion;
use ml::tree::{DecisionTree, TreeConfig};
use ml::{AdaBoost, Classifier, GaussianNb, KnnClassifier, Qda};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Arbitrary small labeled data set with both classes present.
fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>)> {
    (4usize..40, 1usize..6).prop_flat_map(|(n, d)| {
        (
            proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, d..=d), n..=n),
            proptest::collection::vec(0usize..2, n..=n)
                .prop_filter("both classes", |y| y.contains(&0) && y.contains(&1)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trees always emit valid probability distributions and classify
    /// their own training points better than chance on separable labels.
    #[test]
    fn tree_probabilities_are_distributions((x, y) in dataset()) {
        let w = vec![1.0; x.len()];
        let mut rng = SmallRng::seed_from_u64(1);
        let t = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng);
        for xi in &x {
            let p = t.predict_proba(xi);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Feature contributions always reconstruct the prediction exactly.
    #[test]
    fn contributions_always_reconstruct((x, y) in dataset()) {
        let w = vec![1.0; x.len()];
        let mut rng = SmallRng::seed_from_u64(2);
        let t = DecisionTree::fit(&x, &y, &w, 2, TreeConfig::default(), &mut rng);
        for xi in x.iter().take(10) {
            let (bias, contrib) = t.feature_contributions(xi, 1);
            let total = bias + contrib.iter().sum::<f64>();
            prop_assert!((total - t.predict_proba(xi)[1]).abs() < 1e-9);
        }
    }

    /// Forest probabilities are distributions; predictions are stable
    /// under identical seeds.
    #[test]
    fn forest_is_deterministic_and_valid((x, y) in dataset()) {
        let cfg = ForestConfig { n_trees: 7, ..Default::default() };
        let f1 = RandomForest::fit(&x, &y, 2, cfg.clone(), &mut SmallRng::seed_from_u64(3));
        let f2 = RandomForest::fit(&x, &y, 2, cfg, &mut SmallRng::seed_from_u64(3));
        for xi in x.iter().take(10) {
            let p1 = RandomForest::predict_proba(&f1, xi);
            let p2 = RandomForest::predict_proba(&f2, xi);
            prop_assert_eq!(p1.clone(), p2);
            prop_assert!((p1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    /// All zoo models produce finite distributions on arbitrary data.
    #[test]
    fn zoo_models_are_total((x, y) in dataset()) {
        let mut rng = SmallRng::seed_from_u64(4);
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(KnnClassifier::fit(&x, &y, 2, 3)),
            Box::new(GaussianNb::fit(&x, &y, 2)),
            Box::new(AdaBoost::fit(&x, &y, 2, 10, &mut rng)),
            Box::new(Qda::fit(&x, &y, 2, 0.5)),
        ];
        for m in &models {
            for xi in x.iter().take(5) {
                let p = m.predict_proba(xi);
                prop_assert_eq!(p.len(), 2);
                prop_assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                prop_assert!(m.predict(xi) < 2);
            }
        }
    }

    /// Confusion counts always partition the sample.
    #[test]
    fn confusion_partitions(labels in proptest::collection::vec(0usize..2, 0..50),
                            preds_seed in any::<u64>()) {
        let mut s = preds_seed.max(1);
        let preds: Vec<usize> = labels.iter().map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 2) as usize
        }).collect();
        let c = Confusion::from_predictions(&labels, &preds);
        prop_assert_eq!(c.total(), labels.len());
        prop_assert!(c.precision() >= 0.0 && c.precision() <= 1.0);
        prop_assert!(c.recall() >= 0.0 && c.recall() <= 1.0);
        prop_assert!(c.f1() >= 0.0 && c.f1() <= 1.0);
    }

    /// The fast change-point detector is shift-invariant and
    /// scale-invariant (it z-normalizes internally).
    #[test]
    fn fast_cpd_is_affine_invariant(
        base in proptest::collection::vec(-5.0f64..5.0, 16..32),
        shift in -100.0f64..100.0,
        scale in 0.1f64..50.0,
    ) {
        let a = detect_change_points_fast(&base, 4, FAST_THRESHOLD);
        let transformed: Vec<f64> = base.iter().map(|v| v * scale + shift).collect();
        let b = detect_change_points_fast(&transformed, 4, FAST_THRESHOLD);
        prop_assert_eq!(a, b);
    }

    /// Scaler transform is invertible in distribution: transformed data
    /// has ~zero mean / unit variance per feature.
    #[test]
    fn scaler_normalizes(x in proptest::collection::vec(
        proptest::collection::vec(-1000.0f64..1000.0, 3..=3), 5..40)) {
        let scaler = Scaler::fit(&x);
        let xs = scaler.transform(&x);
        for j in 0..3 {
            let col: Vec<f64> = xs.iter().map(|r| r[j]).collect();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "mean {mean}");
        }
    }

    /// kNN with k = n predicts the majority class everywhere.
    #[test]
    fn knn_full_k_is_majority_vote((x, y) in dataset()) {
        let knn = KnnClassifier::fit(&x, &y, 2, x.len());
        let majority = usize::from(y.iter().filter(|&&v| v == 1).count() * 2 > y.len());
        let ones = y.iter().filter(|&&v| v == 1).count();
        // Skip exact ties (argmax break order is unspecified semantics).
        prop_assume!(ones * 2 != y.len());
        for xi in x.iter().take(5) {
            prop_assert_eq!(knn.predict(xi), majority);
        }
    }
}
