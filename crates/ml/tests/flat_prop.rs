//! Property tests for the flattened node-major forest (the predict hot
//! path). The enum-walking traversal in `tree.rs` is the oracle: every
//! path through the flat tables must reproduce it **bit for bit** —
//! including NaN feature values, which the branchless descent must send
//! right exactly like the oracle's `if x <= t { left } else { right }`.

use ml::forest::{ForestConfig, RandomForest};
use ml::persist::{forest_from_lines, forest_to_text, Lines};
use ml::FeatureMatrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Labeled data with both classes present plus a seed for the forest RNG.
fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>, u64)> {
    (6usize..40, 1usize..6, 0u64..1 << 32).prop_flat_map(|(n, d, seed)| {
        (
            proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, d..=d), n..=n),
            proptest::collection::vec(0usize..2, n..=n)
                .prop_filter("both classes", |y| y.contains(&0) && y.contains(&1)),
            Just(seed),
        )
    })
}

fn fit(x: &[Vec<f64>], y: &[usize], seed: u64) -> RandomForest {
    let mut rng = SmallRng::seed_from_u64(seed);
    RandomForest::fit(
        x,
        y,
        2,
        ForestConfig {
            n_trees: 7,
            ..ForestConfig::default()
        },
        &mut rng,
    )
}

/// Corrupt some feature values into NaN / ±inf so descent exercises the
/// non-finite comparison edge on real split thresholds.
fn poison(x: &mut [Vec<f64>], seed: u64) {
    let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    let mut k = seed;
    for row in x.iter_mut() {
        for v in row.iter_mut() {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if k >> 61 == 0 {
                *v = specials[(k >> 32) as usize % specials.len()];
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-row flat traversal is bit-identical to the enum walk, even
    /// with NaN/±inf features.
    #[test]
    fn flat_single_row_matches_enum_walk((mut x, y, seed) in dataset()) {
        let f = fit(&x, &y, seed);
        poison(&mut x, seed);
        for xi in &x {
            let walk = f.predict_proba_walk(xi);
            let flat = f.predict_proba(xi);
            prop_assert_eq!(
                walk.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                flat.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    /// Tiled matrix scoring is bit-identical to the walk at every worker
    /// count: results may not depend on tile boundaries or scheduling.
    #[test]
    fn flat_matrix_matches_walk_at_any_worker_count((mut x, y, seed) in dataset()) {
        let f = fit(&x, &y, seed);
        poison(&mut x, seed);
        // Replicate rows past one scoring tile so the ragged tail and
        // multi-tile paths both run.
        let rows: Vec<Vec<f64>> = x.iter().cycle().take(70).cloned().collect();
        let expect: Vec<u64> = rows
            .iter()
            .flat_map(|r| f.predict_proba_walk(r))
            .map(|v| v.to_bits())
            .collect();
        let m = FeatureMatrix::from_rows(&rows);
        for workers in [1usize, 2, 8] {
            let scored = f.predict_proba_matrix_on(&pool::Pool::new(workers), &m);
            let got: Vec<u64> = scored.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&expect, &got, "workers={}", workers);
        }
    }

    /// Persistence round-trip: a forest saved in the line format and
    /// loaded back rebuilds flat tables that score bit-identically to the
    /// original's enum walk. Old model files gain the fast path for free.
    #[test]
    fn persisted_forest_round_trips_through_flat_tables((mut x, y, seed) in dataset()) {
        let f = fit(&x, &y, seed);
        let text = forest_to_text(&f);
        let back = forest_from_lines(&mut Lines::new(&text)).unwrap();
        poison(&mut x, seed);
        for xi in &x {
            prop_assert_eq!(
                f.predict_proba_walk(xi).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.predict_proba(xi).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}

/// A persisted header claiming zero trees must be rejected at load: an
/// empty forest would divide by zero when averaging tree distributions.
#[test]
fn zero_tree_model_file_is_rejected() {
    let err = forest_from_lines(&mut Lines::new("forest 0\n")).unwrap_err();
    let msg = format!("{err:?}");
    assert!(msg.contains("at least one tree"), "unexpected error: {msg}");
}

/// Fitting with `n_trees: 0` is a configuration bug, caught eagerly.
#[test]
#[should_panic(expected = "a forest needs at least one tree")]
fn fitting_zero_trees_panics() {
    let x = vec![vec![0.0], vec![1.0]];
    let y = vec![0, 1];
    let mut rng = SmallRng::seed_from_u64(1);
    RandomForest::fit(
        &x,
        &y,
        2,
        ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        },
        &mut rng,
    );
}
