//! Property-based tests for the datacenter substrate.

use cloudsim::{ComponentKind, FaultCatalog, FaultScheduleConfig, Team, Topology, TopologyConfig};
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = TopologyConfig> {
    (
        1usize..3,
        1usize..4,
        1usize..4,
        1usize..4,
        1usize..3,
        1usize..3,
        1usize..3,
        1usize..3,
    )
        .prop_map(
            |(dcs, cl, racks, srv, vms, aggs, cores, slbs)| TopologyConfig {
                dcs,
                clusters_per_dc: cl,
                racks_per_cluster: racks,
                servers_per_rack: srv,
                vms_per_server: vms,
                aggs_per_cluster: aggs,
                cores_per_dc: cores,
                slbs_per_cluster: slbs,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any fleet shape: names unique and resolvable, containment
    /// consistent, children/ancestors inverse.
    #[test]
    fn topology_invariants(config in any_config()) {
        let t = Topology::build(config);
        prop_assert!(!t.is_empty());
        for c in t.components() {
            // Names resolve back to the same component.
            prop_assert_eq!(t.by_name(&c.name).unwrap().id, c.id);
            // Parent links are consistent with the children index.
            if let Some(p) = c.parent {
                prop_assert!(t.children(p).contains(&c.id));
            } else {
                prop_assert_eq!(c.kind, ComponentKind::Dc);
            }
            // Every component's dc is really a DC.
            prop_assert_eq!(t.component(c.dc).kind, ComponentKind::Dc);
            // cluster field is really a cluster.
            if let Some(cl) = c.cluster {
                prop_assert_eq!(t.component(cl).kind, ComponentKind::Cluster);
            }
        }
        // Descendant counts from each DC sum to everything but the DCs.
        let total: usize = t
            .of_kind(ComponentKind::Dc)
            .map(|d| t.descendants(d.id).len())
            .sum();
        prop_assert_eq!(total + config.dcs, t.len());
    }

    /// Fault schedules respect the topology for any shape and rate.
    #[test]
    fn fault_schedules_are_consistent(
        config in any_config(),
        rate in 0.5f64..6.0,
        seed in 1u64..1_000_000,
    ) {
        let t = Topology::build(config);
        let cat = FaultCatalog::new(&t);
        let mut s = seed;
        let faults = cat.generate(
            &FaultScheduleConfig { faults_per_day: rate, ..Default::default() },
            move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            },
        );
        for f in &faults {
            prop_assert_eq!(t.component(f.scope.cluster()).kind, ComponentKind::Cluster);
            for &d in f.scope.devices() {
                // Every named device lives in the scope's cluster.
                prop_assert_eq!(t.component(d).cluster, Some(f.scope.cluster()));
            }
            prop_assert!(f.duration.as_minutes() > 0);
            if !f.owner.is_external() {
                prop_assert!(Team::ALL.contains(&f.owner));
            }
        }
        // Sorted by start time.
        for w in faults.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
    }
}
