//! Datacenter fleet topology.
//!
//! A classic folded-Clos hierarchy, scaled down but structurally faithful:
//!
//! ```text
//! DC ─┬─ core switches
//!     └─ cluster ─┬─ agg switches
//!                 └─ rack ─┬─ ToR switch
//!                          └─ server ── VMs
//! ```
//!
//! Component names follow the machine-generated convention the paper's
//! config DSL extracts with regexes (§5.1): `dc3`, `c10.dc3`, `tor-2.c10.dc3`,
//! `srv-17.c10.dc3`, `vm-4.c10.dc3`, `agg-1.c10.dc3`, `core-0.dc3`,
//! `slb-1.c10.dc3` (software load balancer instances).

use std::collections::HashMap;
use std::fmt;

/// Index of a component in the [`Topology`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

/// The kind of a datacenter component.
///
/// These are the "component types" of the paper's feature construction: each
/// kind present in a Scout's config contributes one fixed block of features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// A datacenter, e.g. `dc3`.
    Dc,
    /// A cluster within a DC, e.g. `c10.dc3`.
    Cluster,
    /// A top-of-rack switch, e.g. `tor-2.c10.dc3`.
    TorSwitch,
    /// An aggregation switch, e.g. `agg-1.c10.dc3`.
    AggSwitch,
    /// A core/spine switch, e.g. `core-0.dc3`.
    CoreSwitch,
    /// A physical server, e.g. `srv-17.c10.dc3`.
    Server,
    /// A virtual machine, e.g. `vm-4.c10.dc3`.
    Vm,
    /// A software load-balancer instance, e.g. `slb-1.c10.dc3`.
    Slb,
}

impl ComponentKind {
    /// All kinds, in a stable order.
    pub const ALL: [ComponentKind; 8] = [
        ComponentKind::Dc,
        ComponentKind::Cluster,
        ComponentKind::TorSwitch,
        ComponentKind::AggSwitch,
        ComponentKind::CoreSwitch,
        ComponentKind::Server,
        ComponentKind::Vm,
        ComponentKind::Slb,
    ];

    /// Is this kind a switch (any tier)?
    pub fn is_switch(self) -> bool {
        matches!(
            self,
            ComponentKind::TorSwitch | ComponentKind::AggSwitch | ComponentKind::CoreSwitch
        )
    }

    /// Short label used in names and reports.
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Dc => "dc",
            ComponentKind::Cluster => "cluster",
            ComponentKind::TorSwitch => "tor",
            ComponentKind::AggSwitch => "agg",
            ComponentKind::CoreSwitch => "core",
            ComponentKind::Server => "server",
            ComponentKind::Vm => "vm",
            ComponentKind::Slb => "slb",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One component in the fleet.
#[derive(Debug, Clone)]
pub struct Component {
    /// Arena index.
    pub id: ComponentId,
    /// Kind of the component.
    pub kind: ComponentKind,
    /// Machine-generated name, e.g. `srv-17.c10.dc3`.
    pub name: String,
    /// Containing component (None for DCs).
    pub parent: Option<ComponentId>,
    /// The cluster this component belongs to, if any (DC/core have none).
    pub cluster: Option<ComponentId>,
    /// The DC this component belongs to.
    pub dc: ComponentId,
}

/// Size knobs for [`Topology::build`].
#[derive(Debug, Clone, Copy)]
pub struct TopologyConfig {
    /// Number of datacenters.
    pub dcs: usize,
    /// Clusters per DC.
    pub clusters_per_dc: usize,
    /// Racks per cluster (one ToR each).
    pub racks_per_cluster: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// VMs per server.
    pub vms_per_server: usize,
    /// Aggregation switches per cluster.
    pub aggs_per_cluster: usize,
    /// Core switches per DC.
    pub cores_per_dc: usize,
    /// SLB instances per cluster.
    pub slbs_per_cluster: usize,
}

impl Default for TopologyConfig {
    /// A fleet that keeps per-incident featurization cheap (few devices per
    /// cluster) while spreading faults across enough clusters that
    /// concurrent same-cluster incidents stay rare, as they are at cloud
    /// scale: 6 DCs × 10 clusters × 6 racks × 4 servers × 2 VMs.
    fn default() -> Self {
        TopologyConfig {
            dcs: 6,
            clusters_per_dc: 10,
            racks_per_cluster: 6,
            servers_per_rack: 4,
            vms_per_server: 2,
            aggs_per_cluster: 2,
            cores_per_dc: 2,
            slbs_per_cluster: 2,
        }
    }
}

impl TopologyConfig {
    /// A larger fleet for benchmark runs.
    pub fn large() -> Self {
        TopologyConfig {
            dcs: 4,
            clusters_per_dc: 8,
            racks_per_cluster: 12,
            servers_per_rack: 8,
            vms_per_server: 4,
            aggs_per_cluster: 4,
            cores_per_dc: 4,
            slbs_per_cluster: 4,
        }
    }
}

/// The immutable fleet: a component arena plus name and containment indices.
#[derive(Debug, Clone)]
pub struct Topology {
    components: Vec<Component>,
    by_name: HashMap<String, ComponentId>,
    children: Vec<Vec<ComponentId>>,
    config: TopologyConfig,
}

impl Topology {
    /// Build a fleet per `config`.
    pub fn build(config: TopologyConfig) -> Topology {
        let mut t = Topology {
            components: Vec::new(),
            by_name: HashMap::new(),
            children: Vec::new(),
            config,
        };
        for d in 0..config.dcs {
            let dc_name = format!("dc{d}");
            let dc = t.push(ComponentKind::Dc, dc_name.clone(), None, None, None);
            for k in 0..config.cores_per_dc {
                t.push(
                    ComponentKind::CoreSwitch,
                    format!("core-{k}.{dc_name}"),
                    Some(dc),
                    None,
                    Some(dc),
                );
            }
            for c in 0..config.clusters_per_dc {
                let cl_name = format!("c{c}.{dc_name}");
                let cl = t.push(
                    ComponentKind::Cluster,
                    cl_name.clone(),
                    Some(dc),
                    None,
                    Some(dc),
                );
                for a in 0..config.aggs_per_cluster {
                    t.push(
                        ComponentKind::AggSwitch,
                        format!("agg-{a}.{cl_name}"),
                        Some(cl),
                        Some(cl),
                        Some(dc),
                    );
                }
                for s in 0..config.slbs_per_cluster {
                    t.push(
                        ComponentKind::Slb,
                        format!("slb-{s}.{cl_name}"),
                        Some(cl),
                        Some(cl),
                        Some(dc),
                    );
                }
                for r in 0..config.racks_per_cluster {
                    let tor = t.push(
                        ComponentKind::TorSwitch,
                        format!("tor-{r}.{cl_name}"),
                        Some(cl),
                        Some(cl),
                        Some(dc),
                    );
                    for s in 0..config.servers_per_rack {
                        let srv_idx = r * config.servers_per_rack + s;
                        let srv = t.push(
                            ComponentKind::Server,
                            format!("srv-{srv_idx}.{cl_name}"),
                            Some(tor),
                            Some(cl),
                            Some(dc),
                        );
                        for v in 0..config.vms_per_server {
                            let vm_idx = srv_idx * config.vms_per_server + v;
                            t.push(
                                ComponentKind::Vm,
                                format!("vm-{vm_idx}.{cl_name}"),
                                Some(srv),
                                Some(cl),
                                Some(dc),
                            );
                        }
                    }
                }
            }
        }
        t
    }

    fn push(
        &mut self,
        kind: ComponentKind,
        name: String,
        parent: Option<ComponentId>,
        cluster: Option<ComponentId>,
        dc: Option<ComponentId>,
    ) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        let dc = dc.unwrap_or(id); // DCs are their own dc
        self.components.push(Component {
            id,
            kind,
            name: name.clone(),
            parent,
            cluster,
            dc,
        });
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p.0 as usize].push(id);
        }
        let prev = self.by_name.insert(name, id);
        debug_assert!(prev.is_none(), "duplicate component name");
        id
    }

    /// The build configuration.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Total number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the fleet has no components (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Look up a component by arena id.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.0 as usize]
    }

    /// Look up a component by its machine-generated name.
    pub fn by_name(&self, name: &str) -> Option<&Component> {
        self.by_name.get(name).map(|&id| self.component(id))
    }

    /// All components, in arena order.
    pub fn components(&self) -> impl Iterator<Item = &Component> {
        self.components.iter()
    }

    /// All components of `kind`.
    pub fn of_kind(&self, kind: ComponentKind) -> impl Iterator<Item = &Component> {
        self.components.iter().filter(move |c| c.kind == kind)
    }

    /// Direct children of `id` in the containment tree.
    pub fn children(&self, id: ComponentId) -> &[ComponentId] {
        &self.children[id.0 as usize]
    }

    /// All descendants of `id` (excluding `id` itself), depth-first.
    pub fn descendants(&self, id: ComponentId) -> Vec<ComponentId> {
        let mut out = Vec::new();
        let mut stack: Vec<ComponentId> = self.children(id).to_vec();
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend_from_slice(self.children(c));
        }
        out
    }

    /// Descendants of `id` having `kind` (e.g. all ToRs in a cluster).
    pub fn descendants_of_kind(&self, id: ComponentId, kind: ComponentKind) -> Vec<ComponentId> {
        self.descendants(id)
            .into_iter()
            .filter(|&c| self.component(c).kind == kind)
            .collect()
    }

    /// Walk up the containment tree from `id` (exclusive) to the DC root.
    pub fn ancestors(&self, id: ComponentId) -> Vec<ComponentId> {
        let mut out = Vec::new();
        let mut cur = self.component(id).parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.component(p).parent;
        }
        out
    }

    /// The infrastructure a leaf component depends on: its ancestor chain
    /// plus the network devices on its path (ToR → Agg → Core). This is the
    /// "local dependency" set a Scout may consult (§5.1).
    pub fn dependencies(&self, id: ComponentId) -> Vec<ComponentId> {
        let mut out = self.ancestors(id);
        let comp = self.component(id);
        if let Some(cl) = comp.cluster {
            out.extend(self.descendants_of_kind(cl, ComponentKind::AggSwitch));
        }
        out.extend(self.descendants_of_kind(comp.dc, ComponentKind::CoreSwitch));
        out.sort_unstable();
        out.dedup();
        out.retain(|&c| c != id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_match_config() {
        let cfg = TopologyConfig::default();
        let t = Topology::build(cfg);
        let n = |k| t.of_kind(k).count();
        assert_eq!(n(ComponentKind::Dc), cfg.dcs);
        assert_eq!(n(ComponentKind::Cluster), cfg.dcs * cfg.clusters_per_dc);
        assert_eq!(
            n(ComponentKind::TorSwitch),
            cfg.dcs * cfg.clusters_per_dc * cfg.racks_per_cluster
        );
        assert_eq!(
            n(ComponentKind::Server),
            cfg.dcs * cfg.clusters_per_dc * cfg.racks_per_cluster * cfg.servers_per_rack
        );
        assert_eq!(
            n(ComponentKind::Vm),
            cfg.dcs
                * cfg.clusters_per_dc
                * cfg.racks_per_cluster
                * cfg.servers_per_rack
                * cfg.vms_per_server
        );
        assert_eq!(n(ComponentKind::CoreSwitch), cfg.dcs * cfg.cores_per_dc);
        assert_eq!(
            n(ComponentKind::AggSwitch),
            cfg.dcs * cfg.clusters_per_dc * cfg.aggs_per_cluster
        );
        assert_eq!(
            n(ComponentKind::Slb),
            cfg.dcs * cfg.clusters_per_dc * cfg.slbs_per_cluster
        );
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let t = Topology::build(TopologyConfig::default());
        for c in t.components() {
            assert_eq!(
                t.by_name(&c.name).unwrap().id,
                c.id,
                "name {} resolves",
                c.name
            );
        }
    }

    #[test]
    fn naming_convention() {
        let t = Topology::build(TopologyConfig::default());
        assert!(t.by_name("dc0").is_some());
        assert!(t.by_name("c2.dc1").is_some());
        assert!(t.by_name("tor-0.c0.dc0").is_some());
        assert!(t.by_name("srv-0.c0.dc0").is_some());
        assert!(t.by_name("vm-0.c0.dc0").is_some());
        assert!(t.by_name("agg-1.c3.dc1").is_some());
        assert!(t.by_name("core-0.dc1").is_some());
        assert!(t.by_name("slb-0.c1.dc0").is_some());
        assert!(t.by_name("nonexistent").is_none());
    }

    #[test]
    fn containment_is_consistent() {
        let t = Topology::build(TopologyConfig::default());
        let vm = t.by_name("vm-3.c1.dc0").unwrap();
        let srv = t.component(vm.parent.unwrap());
        assert_eq!(srv.kind, ComponentKind::Server);
        let tor = t.component(srv.parent.unwrap());
        assert_eq!(tor.kind, ComponentKind::TorSwitch);
        let cl = t.component(tor.parent.unwrap());
        assert_eq!(cl.kind, ComponentKind::Cluster);
        assert_eq!(cl.name, "c1.dc0");
        assert_eq!(vm.cluster, Some(cl.id));
        assert_eq!(t.component(vm.dc).name, "dc0");
    }

    #[test]
    fn ancestors_and_descendants_are_inverse() {
        let t = Topology::build(TopologyConfig::default());
        let cl = t.by_name("c0.dc0").unwrap().id;
        for d in t.descendants(cl) {
            assert!(t.ancestors(d).contains(&cl));
        }
    }

    #[test]
    fn descendants_of_kind_filters() {
        let cfg = TopologyConfig::default();
        let t = Topology::build(cfg);
        let cl = t.by_name("c0.dc0").unwrap().id;
        let tors = t.descendants_of_kind(cl, ComponentKind::TorSwitch);
        assert_eq!(tors.len(), cfg.racks_per_cluster);
        let servers = t.descendants_of_kind(cl, ComponentKind::Server);
        assert_eq!(servers.len(), cfg.racks_per_cluster * cfg.servers_per_rack);
    }

    #[test]
    fn vm_dependencies_cover_network_path() {
        let t = Topology::build(TopologyConfig::default());
        let vm = t.by_name("vm-0.c0.dc0").unwrap().id;
        let deps = t.dependencies(vm);
        let kinds: Vec<ComponentKind> = deps.iter().map(|&d| t.component(d).kind).collect();
        assert!(kinds.contains(&ComponentKind::Server));
        assert!(kinds.contains(&ComponentKind::TorSwitch));
        assert!(kinds.contains(&ComponentKind::AggSwitch));
        assert!(kinds.contains(&ComponentKind::CoreSwitch));
        assert!(kinds.contains(&ComponentKind::Cluster));
        assert!(kinds.contains(&ComponentKind::Dc));
        assert!(
            !deps.contains(&vm),
            "dependencies exclude the component itself"
        );
    }

    #[test]
    fn kind_helpers() {
        assert!(ComponentKind::TorSwitch.is_switch());
        assert!(!ComponentKind::Server.is_switch());
        assert_eq!(ComponentKind::Vm.to_string(), "vm");
        assert_eq!(ComponentKind::ALL.len(), 8);
    }
}
