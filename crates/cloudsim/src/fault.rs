//! Root-cause catalog and fault schedule generation.
//!
//! Every incident in the synthetic study traces back to a [`Fault`]: a root
//! cause with a ground-truth owning team, a component scope, and a duration.
//! The `monitoring` crate turns faults into telemetry perturbations; the
//! `incident` crate turns them into incident reports and baseline routing
//! traces. Scouts never see the fault itself.
//!
//! The kind mix is calibrated to the paper's 200-incident case study (§3.2):
//! dependency-suspect mis-routes dominate, 52/200 incidents were caused by
//! upgrades, 28/200 by customer misconfiguration or overload, 20/200 were
//! duplicate incidents of one underlying cause.

use crate::clock::{SimDuration, SimTime};
use crate::team::Team;
use crate::topology::{ComponentId, ComponentKind, Topology};

/// The component scope a fault implicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultScope {
    /// A handful of specific devices (plus their cluster for context).
    Devices {
        devices: Vec<ComponentId>,
        cluster: ComponentId,
    },
    /// A whole cluster (no individual device identified) — the harder case
    /// for CPD+ (§5.2.2).
    Cluster(ComponentId),
    /// Outside the provider: no internal component is at fault, though some
    /// are implicated by symptoms (§3.2 "when no teams are responsible,
    /// more teams get involved").
    External { symptomatic_cluster: ComponentId },
}

impl FaultScope {
    /// The cluster the fault manifests in.
    pub fn cluster(&self) -> ComponentId {
        match *self {
            FaultScope::Devices { cluster, .. } => cluster,
            FaultScope::Cluster(c) => c,
            FaultScope::External {
                symptomatic_cluster,
            } => symptomatic_cluster,
        }
    }

    /// Specific devices named by the fault (empty for cluster-wide or
    /// external faults).
    pub fn devices(&self) -> &[ComponentId] {
        match self {
            FaultScope::Devices { devices, .. } => devices,
            _ => &[],
        }
    }
}

/// Catalog of root causes. Each kind has one ground-truth owning team.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    // --- PhyNet ---
    /// A ToR switch reboots after a configuration change (the paper's §7.2
    /// and §7.5 case studies).
    TorReboot,
    /// A ToR switch fails outright, cutting off its rack.
    TorFailure,
    /// A link corrupts frames (FCS errors above threshold).
    LinkCorruption,
    /// A switch silently drops packets.
    SwitchPacketDrops,
    /// An aggregation switch fails; cluster-wide symptoms.
    AggFailure,
    /// A PFC storm on RDMA-enabled switches.
    PfcStorm,
    /// A switch ASIC overheats and throttles.
    SwitchOverheat,
    // --- Storage ---
    /// Storage latency regression in a cluster.
    StorageLatency,
    /// Storage stamp outage.
    StorageOutage,
    // --- SLB ---
    /// Bad VIP→DIP mapping pushed by the software load balancer.
    SlbConfigError,
    // --- HostNet ---
    /// Host networking agent crash-loops on some servers.
    HostAgentCrash,
    // --- Compute ---
    /// Servers overloaded (CPU saturation).
    ServerOverload,
    /// Host OS reboots take down resident VMs.
    HostReboot,
    // --- Database ---
    /// Query-plan regression in the database service.
    DbQueryRegression,
    // --- DNS ---
    /// Bad DNS zone push.
    DnsMisconfig,
    // --- Firewall ---
    /// Edge firewall policy error drops legitimate traffic.
    FirewallPolicyError,
    // --- External ---
    /// Customer-side misconfiguration (e.g. their on-prem firewall, §3.2).
    CustomerMisconfig,
    /// Route leak / hijack in a neighboring ISP.
    IspRouteLeak,
    /// A host NIC firmware panic: the server loses connectivity in a way
    /// that looks exactly like a physical-network fault until the model
    /// learns its syslog discriminator. Only appears after day 150 under
    /// concept drift — the Fig. 10 "new type of incident" that the paper's
    /// Scout "initially consistently mis-classified".
    NicFirmwarePanic,
    // --- Not a real failure ---
    /// A transient metric spike that self-resolves; the alerting team
    /// monitors and closes it (§7.2 "the incident is transient" — the
    /// dominant false-negative source).
    TransientSpike,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 20] = [
        FaultKind::TorReboot,
        FaultKind::TorFailure,
        FaultKind::LinkCorruption,
        FaultKind::SwitchPacketDrops,
        FaultKind::AggFailure,
        FaultKind::PfcStorm,
        FaultKind::SwitchOverheat,
        FaultKind::StorageLatency,
        FaultKind::StorageOutage,
        FaultKind::SlbConfigError,
        FaultKind::HostAgentCrash,
        FaultKind::ServerOverload,
        FaultKind::HostReboot,
        FaultKind::DbQueryRegression,
        FaultKind::DnsMisconfig,
        FaultKind::FirewallPolicyError,
        FaultKind::CustomerMisconfig,
        FaultKind::IspRouteLeak,
        FaultKind::NicFirmwarePanic,
        FaultKind::TransientSpike,
    ];

    /// The ground-truth team responsible for resolving this fault.
    ///
    /// For [`FaultKind::TransientSpike`] there is no failure; by the paper's
    /// labelling convention the team whose monitor fired owns (and closes)
    /// the incident — we attribute it to the team of the symptomatic
    /// subsystem, chosen at generation time, defaulting here to Compute.
    pub fn owner(self) -> Team {
        match self {
            FaultKind::TorReboot
            | FaultKind::TorFailure
            | FaultKind::LinkCorruption
            | FaultKind::SwitchPacketDrops
            | FaultKind::AggFailure
            | FaultKind::PfcStorm
            | FaultKind::SwitchOverheat => Team::PhyNet,
            FaultKind::StorageLatency | FaultKind::StorageOutage => Team::Storage,
            FaultKind::SlbConfigError => Team::Slb,
            FaultKind::HostAgentCrash | FaultKind::NicFirmwarePanic => Team::HostNet,
            FaultKind::ServerOverload | FaultKind::HostReboot => Team::Compute,
            FaultKind::DbQueryRegression => Team::Database,
            FaultKind::DnsMisconfig => Team::Dns,
            FaultKind::FirewallPolicyError => Team::Firewall,
            FaultKind::CustomerMisconfig => Team::Customer,
            FaultKind::IspRouteLeak => Team::Isp,
            FaultKind::TransientSpike => Team::Compute,
        }
    }

    /// Is this a PhyNet-owned root cause?
    pub fn is_phynet(self) -> bool {
        self.owner() == Team::PhyNet
    }

    /// Whether the fault was triggered by a planned upgrade rolling through
    /// the fleet (52/200 incidents in §3.2).
    pub fn upgrade_driven(self) -> bool {
        matches!(
            self,
            FaultKind::TorReboot
                | FaultKind::SlbConfigError
                | FaultKind::DnsMisconfig
                | FaultKind::NicFirmwarePanic
        )
    }

    /// A short machine-readable slug used in incident text synthesis.
    pub fn slug(self) -> &'static str {
        match self {
            FaultKind::TorReboot => "tor-reboot",
            FaultKind::TorFailure => "tor-failure",
            FaultKind::LinkCorruption => "link-corruption",
            FaultKind::SwitchPacketDrops => "switch-drops",
            FaultKind::AggFailure => "agg-failure",
            FaultKind::PfcStorm => "pfc-storm",
            FaultKind::SwitchOverheat => "switch-overheat",
            FaultKind::StorageLatency => "storage-latency",
            FaultKind::StorageOutage => "storage-outage",
            FaultKind::SlbConfigError => "slb-config",
            FaultKind::HostAgentCrash => "hostagent-crash",
            FaultKind::ServerOverload => "server-overload",
            FaultKind::HostReboot => "host-reboot",
            FaultKind::DbQueryRegression => "db-regression",
            FaultKind::DnsMisconfig => "dns-misconfig",
            FaultKind::FirewallPolicyError => "firewall-policy",
            FaultKind::NicFirmwarePanic => "nic-firmware-panic",
            FaultKind::CustomerMisconfig => "customer-misconfig",
            FaultKind::IspRouteLeak => "isp-routeleak",
            FaultKind::TransientSpike => "transient-spike",
        }
    }

    /// The kind of device this fault pins itself to, when device-scoped.
    pub fn device_kind(self) -> Option<ComponentKind> {
        match self {
            FaultKind::TorReboot | FaultKind::TorFailure => Some(ComponentKind::TorSwitch),
            FaultKind::LinkCorruption
            | FaultKind::SwitchPacketDrops
            | FaultKind::PfcStorm
            | FaultKind::SwitchOverheat => Some(ComponentKind::TorSwitch),
            FaultKind::AggFailure => Some(ComponentKind::AggSwitch),
            FaultKind::HostAgentCrash
            | FaultKind::ServerOverload
            | FaultKind::HostReboot
            | FaultKind::NicFirmwarePanic => Some(ComponentKind::Server),
            FaultKind::SlbConfigError => Some(ComponentKind::Slb),
            _ => None,
        }
    }
}

/// Severity of the resulting incident, mirroring cloud Sev levels.
/// Sev0/1 are customer-impacting ("all teams are involved in resolving the
/// highest severity incidents", §3.1); Sev3 is low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Highest severity — every plausible team engages immediately.
    Sev1,
    /// Medium severity.
    Sev2,
    /// Low severity.
    Sev3,
}

/// A concrete root cause instance on the fault timeline.
#[derive(Debug, Clone)]
pub struct Fault {
    /// Stable identifier (index in the schedule).
    pub id: u32,
    /// What went wrong.
    pub kind: FaultKind,
    /// Ground-truth owning team. Usually `kind.owner()`, except transients
    /// whose owner is the team whose monitor fired.
    pub owner: Team,
    /// Component scope.
    pub scope: FaultScope,
    /// When the fault begins.
    pub start: SimTime,
    /// How long its effects last in telemetry.
    pub duration: SimDuration,
    /// Severity of the triggered incident(s).
    pub severity: Severity,
    /// Whether a fleet upgrade triggered it.
    pub upgrade_related: bool,
}

impl Fault {
    /// The time window during which telemetry is perturbed.
    pub fn window(&self) -> (SimTime, SimTime) {
        (self.start, self.start + self.duration)
    }

    /// Is `t` inside the fault's active window?
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// Knobs for fault-schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct FaultScheduleConfig {
    /// Average number of faults per simulated day, fleet-wide.
    pub faults_per_day: f64,
    /// Length of the generated schedule.
    pub horizon: SimDuration,
    /// Fraction of faults that are PhyNet-owned. The paper's PhyNet is the
    /// most incident-heavy infrastructure team; ~0.35 reproduces Fig. 4's
    /// "PhyNet responsible in ~65% of incidents it sees" once dependency
    /// mis-routing is layered on.
    pub phynet_share: f64,
    /// Fraction of faults that are external (ISP/customer), §3.2: 28/200.
    pub external_share: f64,
    /// Fraction of faults that are transient spikes (no real failure).
    pub transient_share: f64,
    /// Concept drift (§1 "a constantly changing set of incidents"): when
    /// enabled, PFC storms only start occurring after day 150 (new root
    /// cause introduced by an RDMA rollout) and switch-overheat faults stop
    /// after day 120 (root cause fixed). Drives the Fig. 8/10 adaptation
    /// experiments.
    pub drift: bool,
}

impl Default for FaultScheduleConfig {
    fn default() -> Self {
        FaultScheduleConfig {
            faults_per_day: 12.0,
            horizon: crate::clock::STUDY_WINDOW,
            phynet_share: 0.35,
            external_share: 0.14,
            transient_share: 0.05,
            drift: true,
        }
    }
}

/// Generates fault schedules over a [`Topology`].
#[derive(Debug)]
pub struct FaultCatalog<'a> {
    topo: &'a Topology,
}

impl<'a> FaultCatalog<'a> {
    /// Create a catalog bound to a fleet.
    pub fn new(topo: &'a Topology) -> FaultCatalog<'a> {
        FaultCatalog { topo }
    }

    /// Generate a fault schedule. `rng_next` must return uniform `f64` in
    /// `[0, 1)`; passing the closure keeps this crate free of a direct RNG
    /// dependency and makes schedules reproducible from any source.
    pub fn generate(
        &self,
        config: &FaultScheduleConfig,
        mut rng_next: impl FnMut() -> f64,
    ) -> Vec<Fault> {
        let days = config.horizon.as_days_f64();
        let total = (days * config.faults_per_day).round() as usize;
        let mut out = Vec::with_capacity(total);
        let clusters: Vec<ComponentId> = self
            .topo
            .of_kind(ComponentKind::Cluster)
            .map(|c| c.id)
            .collect();
        assert!(
            !clusters.is_empty(),
            "topology must contain at least one cluster"
        );

        for i in 0..total {
            let mut kind = self.pick_kind(config, &mut rng_next);
            let cluster = clusters[(rng_next() * clusters.len() as f64) as usize % clusters.len()];
            let start = SimTime((rng_next() * config.horizon.as_minutes() as f64) as u64);
            if config.drift {
                // An RDMA rollout after day 150 makes PFC storms the
                // dominant new PhyNet failure mode (and the config-reboot
                // bug they replace is fixed); overheat faults stop after
                // day 120 (hardware recall).
                if kind == FaultKind::PfcStorm && start.days() < 150 {
                    kind = FaultKind::TorReboot;
                } else if kind == FaultKind::TorReboot && start.days() >= 150 {
                    kind = FaultKind::PfcStorm;
                } else if kind == FaultKind::SwitchOverheat && start.days() > 120 {
                    kind = FaultKind::SwitchPacketDrops;
                } else if matches!(kind, FaultKind::HostAgentCrash | FaultKind::ServerOverload)
                    && start.days() >= 150
                {
                    // The NIC firmware regression ships fleet-wide.
                    kind = FaultKind::NicFirmwarePanic;
                }
            }
            let scope = self.make_scope(kind, cluster, &mut rng_next);
            let duration = self.pick_duration(kind, &mut rng_next);
            let severity = self.pick_severity(&mut rng_next);
            let owner = match kind {
                // Attribute a transient to the team whose watchdog fired.
                FaultKind::TransientSpike => {
                    let internal: Vec<Team> = [
                        Team::Compute,
                        Team::Storage,
                        Team::Database,
                        Team::HostNet,
                        Team::PhyNet,
                    ]
                    .to_vec();
                    internal[(rng_next() * internal.len() as f64) as usize % internal.len()]
                }
                k => k.owner(),
            };
            out.push(Fault {
                id: i as u32,
                kind,
                owner,
                scope,
                start,
                duration,
                severity,
                upgrade_related: kind.upgrade_driven() && rng_next() < 0.8,
            });
        }
        out.sort_by_key(|f| f.start);
        for (i, f) in out.iter_mut().enumerate() {
            f.id = i as u32;
        }
        out
    }

    fn pick_kind(
        &self,
        config: &FaultScheduleConfig,
        rng_next: &mut impl FnMut() -> f64,
    ) -> FaultKind {
        let r = rng_next();
        if r < config.transient_share {
            return FaultKind::TransientSpike;
        }
        if r < config.transient_share + config.external_share {
            return if rng_next() < 0.6 {
                FaultKind::CustomerMisconfig
            } else {
                FaultKind::IspRouteLeak
            };
        }
        if r < config.transient_share + config.external_share + config.phynet_share {
            const PHYNET: [(FaultKind, f64); 7] = [
                (FaultKind::TorReboot, 0.25),
                (FaultKind::TorFailure, 0.15),
                (FaultKind::LinkCorruption, 0.15),
                (FaultKind::SwitchPacketDrops, 0.18),
                (FaultKind::AggFailure, 0.07),
                (FaultKind::PfcStorm, 0.10),
                (FaultKind::SwitchOverheat, 0.10),
            ];
            return weighted(&PHYNET, rng_next());
        }
        const OTHERS: [(FaultKind, f64); 9] = [
            (FaultKind::StorageLatency, 0.17),
            (FaultKind::StorageOutage, 0.06),
            (FaultKind::SlbConfigError, 0.15),
            (FaultKind::HostAgentCrash, 0.13),
            (FaultKind::ServerOverload, 0.16),
            (FaultKind::HostReboot, 0.12),
            (FaultKind::DbQueryRegression, 0.11),
            (FaultKind::DnsMisconfig, 0.05),
            (FaultKind::FirewallPolicyError, 0.05),
        ];
        weighted(&OTHERS, rng_next())
    }

    fn make_scope(
        &self,
        kind: FaultKind,
        cluster: ComponentId,
        rng_next: &mut impl FnMut() -> f64,
    ) -> FaultScope {
        match kind {
            FaultKind::CustomerMisconfig | FaultKind::IspRouteLeak => FaultScope::External {
                symptomatic_cluster: cluster,
            },
            FaultKind::StorageLatency
            | FaultKind::StorageOutage
            | FaultKind::DbQueryRegression
            | FaultKind::DnsMisconfig
            | FaultKind::FirewallPolicyError
            | FaultKind::TransientSpike => FaultScope::Cluster(cluster),
            k => {
                let device_kind = k.device_kind().expect("device-scoped kind");
                let candidates = self.topo.descendants_of_kind(cluster, device_kind);
                if candidates.is_empty() {
                    return FaultScope::Cluster(cluster);
                }
                // Most faults pin one device; some implicate 2-3.
                let n = if rng_next() < 0.8 {
                    1
                } else {
                    2 + (rng_next() * 2.0) as usize
                };
                let mut devices = Vec::new();
                for _ in 0..n.min(candidates.len()) {
                    let d = candidates
                        [(rng_next() * candidates.len() as f64) as usize % candidates.len()];
                    if !devices.contains(&d) {
                        devices.push(d);
                    }
                }
                FaultScope::Devices { devices, cluster }
            }
        }
    }

    fn pick_duration(&self, kind: FaultKind, rng_next: &mut impl FnMut() -> f64) -> SimDuration {
        // Log-uniform between kind-specific bounds.
        let (lo, hi) = match kind {
            FaultKind::TransientSpike => (10.0, 40.0),
            FaultKind::TorReboot | FaultKind::HostReboot => (20.0, 120.0),
            FaultKind::CustomerMisconfig | FaultKind::IspRouteLeak => (120.0, 2880.0),
            _ => (60.0, 1440.0),
        };
        let (lo, hi): (f64, f64) = (lo, hi);
        let x = lo * (hi / lo).powf(rng_next());
        SimDuration::minutes(x as u64)
    }

    fn pick_severity(&self, rng_next: &mut impl FnMut() -> f64) -> Severity {
        let r = rng_next();
        if r < 0.06 {
            Severity::Sev1
        } else if r < 0.40 {
            Severity::Sev2
        } else {
            Severity::Sev3
        }
    }
}

/// An adversarial alert-storm scenario shape (the workloads behind
/// `scoutctl stormgen` and the storm-control integration tests). Each
/// scenario stresses one stage of the serving-side storm layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormScenario {
    /// One underlying fault refiring as a flood of near-duplicate
    /// alerts (same template, different timestamps/counters) — the
    /// dedup stage's target. Fault-level this is a *small* schedule
    /// packed into a tight window; the 100x amplification happens at
    /// firing time.
    DuplicateBurst,
    /// Correlated gray failure: several low-grade, partial faults
    /// (packet drops, frame corruption) overlapping in one cluster —
    /// many *distinct* low-severity incidents at a sustained rate, the
    /// throttle and coalescing stages' target.
    GrayFailure,
    /// A root infrastructure fault cascading through the dependency
    /// graph: dependent teams' symptoms fire as their own incidents at
    /// increasing offsets — the multi-team fan-out and circuit-breaker
    /// stages' target.
    Cascade,
    /// A plain schedule over which a monitoring data set is deprecated
    /// mid-stream; the deprecation itself is a control-plane action the
    /// traffic driver issues at [`StormScheduleConfig::window`]'s
    /// midpoint. Scouts must degrade, not error.
    Deprecation,
}

impl StormScenario {
    /// All scenarios, in a stable order.
    pub const ALL: [StormScenario; 4] = [
        StormScenario::DuplicateBurst,
        StormScenario::GrayFailure,
        StormScenario::Cascade,
        StormScenario::Deprecation,
    ];

    /// CLI slug (`scoutctl stormgen --scenario <slug>`).
    pub fn slug(self) -> &'static str {
        match self {
            StormScenario::DuplicateBurst => "duplicate-burst",
            StormScenario::GrayFailure => "gray-failure",
            StormScenario::Cascade => "cascade",
            StormScenario::Deprecation => "deprecation",
        }
    }

    /// Parse a CLI slug.
    pub fn from_slug(s: &str) -> Option<StormScenario> {
        StormScenario::ALL.iter().copied().find(|v| v.slug() == s)
    }
}

/// Knobs for storm-schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct StormScheduleConfig {
    /// Which shape to generate.
    pub scenario: StormScenario,
    /// When the storm window opens.
    pub start: SimTime,
    /// How long the storm lasts. Every generated fault starts inside
    /// `[start, start + window)`.
    pub window: SimDuration,
    /// Number of *root* faults. Cascades add dependent-team follow-on
    /// faults beyond this count.
    pub roots: usize,
}

impl Default for StormScheduleConfig {
    fn default() -> Self {
        StormScheduleConfig {
            scenario: StormScenario::DuplicateBurst,
            start: SimTime(200 * 24 * 60),
            window: SimDuration::hours(2),
            roots: 3,
        }
    }
}

impl<'a> FaultCatalog<'a> {
    /// Generate a storm-shaped fault schedule: a dense, correlated
    /// cluster of root causes inside one short window, per
    /// [`StormScenario`]. Ids are assigned in start order, like
    /// [`FaultCatalog::generate`]. `rng_next` follows the same
    /// closure-RNG convention.
    pub fn generate_storm(
        &self,
        config: &StormScheduleConfig,
        mut rng_next: impl FnMut() -> f64,
    ) -> Vec<Fault> {
        let clusters: Vec<ComponentId> = self
            .topo
            .of_kind(ComponentKind::Cluster)
            .map(|c| c.id)
            .collect();
        assert!(
            !clusters.is_empty(),
            "topology must contain at least one cluster"
        );
        let window_min = config.window.as_minutes().max(1);
        let start_in_window = |rng_next: &mut dyn FnMut() -> f64| {
            SimTime(config.start.0 + (rng_next() * window_min as f64) as u64)
        };
        let roots = config.roots.max(1);
        let mut out = Vec::new();
        match config.scenario {
            StormScenario::DuplicateBurst => {
                // Few distinct root causes; the alert flood is firings of
                // these, not new faults. High severity: a storm that pages.
                const KINDS: [FaultKind; 3] = [
                    FaultKind::AggFailure,
                    FaultKind::PfcStorm,
                    FaultKind::StorageOutage,
                ];
                for i in 0..roots {
                    let kind = KINDS[i % KINDS.len()];
                    let cluster =
                        clusters[(rng_next() * clusters.len() as f64) as usize % clusters.len()];
                    let start = start_in_window(&mut rng_next);
                    out.push(Fault {
                        id: 0,
                        kind,
                        owner: kind.owner(),
                        scope: self.make_scope(kind, cluster, &mut rng_next),
                        start,
                        duration: config.window,
                        severity: Severity::Sev1,
                        upgrade_related: false,
                    });
                }
            }
            StormScenario::GrayFailure => {
                // Everything lands in ONE cluster: partial, low-grade
                // faults whose symptoms overlap — distinct incidents, all
                // low severity, arriving in a sustained stream.
                const KINDS: [FaultKind; 3] = [
                    FaultKind::SwitchPacketDrops,
                    FaultKind::LinkCorruption,
                    FaultKind::SwitchOverheat,
                ];
                let cluster =
                    clusters[(rng_next() * clusters.len() as f64) as usize % clusters.len()];
                for i in 0..roots.max(4) {
                    let kind = KINDS[i % KINDS.len()];
                    let start = start_in_window(&mut rng_next);
                    out.push(Fault {
                        id: 0,
                        kind,
                        owner: kind.owner(),
                        scope: self.make_scope(kind, cluster, &mut rng_next),
                        start,
                        duration: config.window,
                        severity: Severity::Sev3,
                        upgrade_related: false,
                    });
                }
            }
            StormScenario::Cascade => {
                // A root infrastructure failure, then dependent-team
                // symptoms firing as their own faults at growing offsets —
                // the §3.2 "when PhyNet breaks, everyone pages" pattern.
                const FOLLOW_ON: [FaultKind; 4] = [
                    FaultKind::StorageLatency,
                    FaultKind::DbQueryRegression,
                    FaultKind::SlbConfigError,
                    FaultKind::ServerOverload,
                ];
                let step = (window_min / (FOLLOW_ON.len() as u64 + 1)).max(1);
                for _ in 0..roots {
                    let cluster =
                        clusters[(rng_next() * clusters.len() as f64) as usize % clusters.len()];
                    let root_kind = FaultKind::AggFailure;
                    let root_start = SimTime(config.start.0 + (rng_next() * step as f64) as u64);
                    out.push(Fault {
                        id: 0,
                        kind: root_kind,
                        owner: root_kind.owner(),
                        scope: self.make_scope(root_kind, cluster, &mut rng_next),
                        start: root_start,
                        duration: config.window,
                        severity: Severity::Sev1,
                        upgrade_related: false,
                    });
                    for (i, &kind) in FOLLOW_ON.iter().enumerate() {
                        out.push(Fault {
                            id: 0,
                            kind,
                            owner: kind.owner(),
                            scope: self.make_scope(kind, cluster, &mut rng_next),
                            start: root_start + SimDuration::minutes(step * (i as u64 + 1)),
                            duration: config.window,
                            severity: Severity::Sev2,
                            upgrade_related: false,
                        });
                    }
                }
            }
            StormScenario::Deprecation => {
                // An unremarkable mixed schedule; the adversarial part is
                // the mid-stream data-set deprecation the driver issues.
                const KINDS: [FaultKind; 4] = [
                    FaultKind::TorReboot,
                    FaultKind::StorageLatency,
                    FaultKind::HostAgentCrash,
                    FaultKind::DnsMisconfig,
                ];
                for i in 0..roots.max(4) {
                    let kind = KINDS[i % KINDS.len()];
                    let cluster =
                        clusters[(rng_next() * clusters.len() as f64) as usize % clusters.len()];
                    out.push(Fault {
                        id: 0,
                        kind,
                        owner: kind.owner(),
                        scope: self.make_scope(kind, cluster, &mut rng_next),
                        start: start_in_window(&mut rng_next),
                        duration: config.window,
                        severity: Severity::Sev2,
                        upgrade_related: false,
                    });
                }
            }
        }
        out.sort_by_key(|f| f.start);
        for (i, f) in out.iter_mut().enumerate() {
            f.id = i as u32;
        }
        out
    }
}

fn weighted<T: Copy>(table: &[(T, f64)], r: f64) -> T {
    let total: f64 = table.iter().map(|&(_, w)| w).sum();
    let mut acc = 0.0;
    for &(v, w) in table {
        acc += w / total;
        if r < acc {
            return v;
        }
    }
    table.last().unwrap().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    /// Deterministic pseudo-RNG good enough for tests (xorshift → [0,1)).
    fn test_rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn schedule() -> Vec<Fault> {
        let topo = Topology::build(TopologyConfig::default());
        let cat = FaultCatalog::new(&topo);
        cat.generate(&FaultScheduleConfig::default(), test_rng(42))
    }

    #[test]
    fn schedule_size_matches_rate() {
        let faults = schedule();
        let expected = (270.0 * 12.0) as usize;
        assert_eq!(faults.len(), expected);
    }

    #[test]
    fn schedule_is_sorted_with_stable_ids() {
        let faults = schedule();
        for w in faults.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for (i, f) in faults.iter().enumerate() {
            assert_eq!(f.id, i as u32);
        }
    }

    #[test]
    fn kind_mix_respects_shares() {
        let faults = schedule();
        let n = faults.len() as f64;
        let cfg = FaultScheduleConfig::default();
        let phynet = faults.iter().filter(|f| f.kind.is_phynet()).count() as f64 / n;
        let external = faults
            .iter()
            .filter(|f| f.kind.owner().is_external())
            .count() as f64
            / n;
        let transient = faults
            .iter()
            .filter(|f| f.kind == FaultKind::TransientSpike)
            .count() as f64
            / n;
        assert!(
            (phynet - cfg.phynet_share).abs() < 0.05,
            "phynet share {phynet}"
        );
        assert!(
            (external - cfg.external_share).abs() < 0.04,
            "external share {external}"
        );
        assert!(
            (transient - cfg.transient_share).abs() < 0.03,
            "transient share {transient}"
        );
    }

    #[test]
    fn scopes_are_consistent_with_kind() {
        let topo = Topology::build(TopologyConfig::default());
        let cat = FaultCatalog::new(&topo);
        let faults = cat.generate(&FaultScheduleConfig::default(), test_rng(7));
        for f in &faults {
            match f.kind {
                FaultKind::CustomerMisconfig | FaultKind::IspRouteLeak => {
                    assert!(matches!(f.scope, FaultScope::External { .. }));
                }
                FaultKind::TorReboot | FaultKind::TorFailure => {
                    if let FaultScope::Devices { ref devices, .. } = f.scope {
                        for &d in devices {
                            assert_eq!(topo.component(d).kind, ComponentKind::TorSwitch);
                        }
                        assert!(!devices.is_empty());
                    } else {
                        panic!("ToR fault must be device-scoped");
                    }
                }
                _ => {}
            }
            // Scope cluster must actually be a cluster.
            assert_eq!(
                topo.component(f.scope.cluster()).kind,
                ComponentKind::Cluster
            );
        }
    }

    #[test]
    fn owners_match_kind_except_transients() {
        let faults = schedule();
        for f in &faults {
            if f.kind != FaultKind::TransientSpike {
                assert_eq!(f.owner, f.kind.owner());
            } else {
                assert!(!f.owner.is_external());
            }
        }
    }

    #[test]
    fn windows_and_activity() {
        let f = Fault {
            id: 0,
            kind: FaultKind::TorReboot,
            owner: Team::PhyNet,
            scope: FaultScope::Cluster(ComponentId(0)),
            start: SimTime(100),
            duration: SimDuration(50),
            severity: Severity::Sev2,
            upgrade_related: true,
        };
        assert!(f.active_at(SimTime(100)));
        assert!(f.active_at(SimTime(149)));
        assert!(!f.active_at(SimTime(150)));
        assert!(!f.active_at(SimTime(99)));
        assert_eq!(f.window(), (SimTime(100), SimTime(150)));
    }

    #[test]
    fn storm_schedules_match_their_scenario_shape() {
        let topo = Topology::build(TopologyConfig::default());
        let cat = FaultCatalog::new(&topo);
        let base = StormScheduleConfig::default();

        for scenario in StormScenario::ALL {
            let cfg = StormScheduleConfig { scenario, ..base };
            let faults = cat.generate_storm(&cfg, test_rng(11));
            assert!(!faults.is_empty(), "{scenario:?} generated nothing");
            for w in faults.windows(2) {
                assert!(w[0].start <= w[1].start);
            }
            for (i, f) in faults.iter().enumerate() {
                assert_eq!(f.id, i as u32);
                assert!(f.start >= cfg.start, "{scenario:?} fault before window");
            }
        }

        // Gray failures are one-cluster, all low severity.
        let gray = cat.generate_storm(
            &StormScheduleConfig {
                scenario: StormScenario::GrayFailure,
                ..base
            },
            test_rng(11),
        );
        let cluster = gray[0].scope.cluster();
        for f in &gray {
            assert_eq!(f.scope.cluster(), cluster, "gray failure spans clusters");
            assert_eq!(f.severity, Severity::Sev3);
        }

        // Cascades reach multiple teams beyond the root owner.
        let cascade = cat.generate_storm(
            &StormScheduleConfig {
                scenario: StormScenario::Cascade,
                roots: 1,
                ..base
            },
            test_rng(11),
        );
        let teams: std::collections::BTreeSet<Team> = cascade.iter().map(|f| f.owner).collect();
        assert!(teams.len() >= 4, "cascade touched only {teams:?}");
        assert_eq!(cascade[0].owner, Team::PhyNet, "cascade root is PhyNet");
    }

    #[test]
    fn storm_scenario_slugs_round_trip() {
        for scenario in StormScenario::ALL {
            assert_eq!(StormScenario::from_slug(scenario.slug()), Some(scenario));
        }
        assert_eq!(StormScenario::from_slug("nope"), None);
    }

    #[test]
    fn severities_cover_all_levels() {
        let faults = schedule();
        assert!(faults.iter().any(|f| f.severity == Severity::Sev1));
        assert!(faults.iter().any(|f| f.severity == Severity::Sev2));
        assert!(faults.iter().any(|f| f.severity == Severity::Sev3));
        let sev1 = faults
            .iter()
            .filter(|f| f.severity == Severity::Sev1)
            .count();
        assert!(sev1 < faults.len() / 8, "Sev1 must be rare");
    }
}
