//! Simulation time.
//!
//! The study window in the paper is nine months of incidents. We model time
//! as whole minutes since the start of the simulation; minute granularity is
//! what the paper's feature windows use (a two-hour look-back, monitoring
//! samples every few minutes).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in minutes since the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (minute zero).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole days since the epoch.
    pub fn from_days(days: u64) -> SimTime {
        SimTime(days * MINUTES_PER_DAY)
    }

    /// Construct from whole hours since the epoch.
    pub fn from_hours(hours: u64) -> SimTime {
        SimTime(hours * 60)
    }

    /// Whole days elapsed since the epoch.
    pub fn days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Minutes since the epoch.
    pub fn minutes(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from minutes.
    pub fn minutes(m: u64) -> SimDuration {
        SimDuration(m)
    }

    /// Construct from hours.
    pub fn hours(h: u64) -> SimDuration {
        SimDuration(h * 60)
    }

    /// Construct from days.
    pub fn days(d: u64) -> SimDuration {
        SimDuration(d * MINUTES_PER_DAY)
    }

    /// Length in minutes.
    pub fn as_minutes(self) -> u64 {
        self.0
    }

    /// Length in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Length in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }
}

const MINUTES_PER_DAY: u64 = 24 * 60;

/// Nine months, the paper's study window (§3, §7).
pub const STUDY_WINDOW: SimDuration = SimDuration(9 * 30 * MINUTES_PER_DAY);

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / MINUTES_PER_DAY;
        let h = (self.0 % MINUTES_PER_DAY) / 60;
        let m = self.0 % 60;
        write!(f, "d{d:03}+{h:02}:{m:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MINUTES_PER_DAY {
            write!(f, "{:.1}d", self.as_days_f64())
        } else if self.0 >= 60 {
            write!(f, "{:.1}h", self.as_hours_f64())
        } else {
            write!(f, "{}m", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_days(3) + SimDuration::hours(5);
        assert_eq!(t.minutes(), 3 * 1440 + 300);
        assert_eq!(t.days(), 3);
        assert_eq!(t - SimTime::from_days(3), SimDuration::hours(5));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(SimTime(5).saturating_sub(SimDuration(10)), SimTime(0));
        assert_eq!(SimTime(5) - SimTime(10), SimDuration::ZERO);
        assert_eq!(SimDuration(5) - SimDuration(10), SimDuration::ZERO);
    }

    #[test]
    fn study_window_is_nine_months() {
        assert_eq!(STUDY_WINDOW.as_days_f64(), 270.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_days(12).to_string(), "d012+00:00");
        assert_eq!(SimDuration::minutes(45).to_string(), "45m");
        assert_eq!(SimDuration::hours(3).to_string(), "3.0h");
        assert_eq!(SimDuration::days(2).to_string(), "2.0d");
    }
}
