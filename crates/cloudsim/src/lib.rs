//! `cloudsim` — the datacenter substrate underneath the Scout reproduction.
//!
//! The Scouts paper (SIGCOMM 2020) evaluates on nine months of production
//! incidents from a large cloud. That data is proprietary, so this crate
//! builds the world those incidents come from:
//!
//! * [`topology`] — a hierarchical datacenter fleet (DCs → clusters → racks →
//!   servers → VMs, plus ToR/Agg/Core switches and inter-switch links), with
//!   machine-generated component names exactly like the ones the paper's
//!   config DSL extracts (`vm-3.c10.dc3`, `c4.dc1`, …).
//! * [`team`] — the engineering teams that own components (PhyNet, Storage,
//!   SLB, Host networking, Compute, …) and the dependency graph between them
//!   that drives humans' routing guesses in the baseline.
//! * [`fault`] — a catalog of root causes. Every fault knows its ground-truth
//!   owning team, the components it implicates, and the telemetry signature
//!   it induces (consumed by the `monitoring` crate).
//! * [`clock`] — simulation time in minutes, spanning the paper's nine-month
//!   study window.
//!
//! Ground truth lives *only* here. Scouts never see it: they observe incident
//! text and monitoring data, exactly the paper's information boundary.

pub mod clock;
pub mod depgraph;
pub mod fault;
pub mod team;
pub mod topology;

pub use clock::{SimDuration, SimTime};
pub use depgraph::{base_team_name, synthetic_team_name, DependencyGraph};
pub use fault::{
    Fault, FaultCatalog, FaultKind, FaultScheduleConfig, FaultScope, Severity, StormScenario,
    StormScheduleConfig,
};
pub use team::{Team, TeamId, TeamRegistry};
pub use topology::{Component, ComponentId, ComponentKind, Topology, TopologyConfig};
