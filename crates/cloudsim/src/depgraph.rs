//! String-keyed team dependency graph — the fleet routing plane's DAG.
//!
//! [`Team`]'s enum cast is closed: exactly the eleven teams of the
//! paper's narrative. The online routing plane cannot live with that —
//! teams register Scouts under arbitrary names, get added and removed at
//! runtime, and (at fleet scale) number in the hundreds. This module
//! exports the same dependency knowledge as a dynamic, string-keyed
//! graph the Scout Master can query for *any* registered team name:
//!
//! * [`DependencyGraph::builtin`] mirrors [`Team::depends_on`] exactly,
//!   keyed by [`Team::name`];
//! * [`DependencyGraph::synthetic_fleet`] replicates the built-in
//!   internal teams into `n` synthetic teams (`PhyNet`, `Storage`, …,
//!   `PhyNet-1`, `Storage-1`, …) whose dependency edges mirror the base
//!   graph within each replica — the deterministic fleet the benches and
//!   smoke tests route against;
//! * [`DependencyGraph::add_team`] / [`DependencyGraph::add_dependency`]
//!   grow the graph at runtime. Unlike the enum graph, cycles are
//!   allowed (real org charts have them); [`is_transitive_dependency`]
//!   terminates on them, and the Scout Master's tie-break order stays
//!   total regardless.
//!
//! Lookups are exact-match on the team name. A team that is *not* in the
//! graph is still routable — it just has no dependency edges; the
//! serving plane counts such answers (`serve.route.unmapped`) instead of
//! dropping them.
//!
//! [`is_transitive_dependency`]: DependencyGraph::is_transitive_dependency

use crate::team::{Team, TeamRegistry};
use std::collections::BTreeMap;

/// A dynamic, string-keyed team dependency graph.
///
/// Edges point from a team to the teams it *depends on* — the legitimate
/// suspects when its components misbehave (same direction as
/// [`Team::depends_on`]).
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    /// Team name → index into `depends`.
    index: BTreeMap<String, usize>,
    /// Index → team name (insertion order).
    names: Vec<String>,
    /// Index → direct dependency indices.
    depends: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> DependencyGraph {
        DependencyGraph::default()
    }

    /// The enum cast's graph, keyed by [`Team::name`].
    pub fn builtin() -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for team in Team::ALL {
            g.add_team(team.name());
        }
        for team in Team::ALL {
            for dep in team.depends_on() {
                g.add_dependency(team.name(), dep.name());
            }
        }
        g
    }

    /// A deterministic synthetic fleet of `n` teams for load tests and
    /// benches: the built-in *internal* teams (external orgs host no
    /// Scouts) replicated round-robin. Replica 0 keeps the bare base
    /// names (`PhyNet`), replica `r > 0` appends `-r` (`PhyNet-1`);
    /// dependency edges mirror the base graph within each replica, so
    /// every replica is an independent copy of the paper's DAG.
    pub fn synthetic_fleet(n: usize) -> DependencyGraph {
        let bases: Vec<Team> = TeamRegistry::new().internal_teams().collect();
        let mut g = DependencyGraph::new();
        for i in 0..n {
            g.add_team(&synthetic_team_name(
                bases[i % bases.len()],
                i / bases.len(),
            ));
        }
        for i in 0..n {
            let base = bases[i % bases.len()];
            let replica = i / bases.len();
            for dep in base.depends_on() {
                let dep_name = synthetic_team_name(*dep, replica);
                if g.contains(&dep_name) {
                    g.add_dependency(&synthetic_team_name(base, replica), &dep_name);
                }
            }
        }
        g
    }

    /// Ensure `team` exists; returns its index.
    pub fn add_team(&mut self, team: &str) -> usize {
        if let Some(&i) = self.index.get(team) {
            return i;
        }
        let i = self.names.len();
        self.names.push(team.to_string());
        self.depends.push(Vec::new());
        self.index.insert(team.to_string(), i);
        i
    }

    /// Add a "`team` depends on `on`" edge, creating either team as
    /// needed. Self-edges and duplicates are ignored.
    pub fn add_dependency(&mut self, team: &str, on: &str) {
        let t = self.add_team(team);
        let d = self.add_team(on);
        if t != d && !self.depends[t].contains(&d) {
            self.depends[t].push(d);
        }
    }

    /// Is `team` in the graph?
    pub fn contains(&self, team: &str) -> bool {
        self.index.contains_key(team)
    }

    /// Number of teams.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Team names in sorted order.
    pub fn team_names(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Teams `team` directly depends on. Empty for unknown teams.
    pub fn depends_on<'a>(&'a self, team: &str) -> Vec<&'a str> {
        match self.index.get(team) {
            Some(&i) => self.depends[i]
                .iter()
                .map(|&d| self.names[d].as_str())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Is `suspect` a (transitive) dependency of `complainant`?
    ///
    /// Either name may be absent from the graph (answer: `false`), and
    /// cycles terminate: each team is visited at most once.
    pub fn is_transitive_dependency(&self, complainant: &str, suspect: &str) -> bool {
        let (Some(&from), Some(&to)) = (self.index.get(complainant), self.index.get(suspect))
        else {
            return false;
        };
        if from == to {
            return false;
        }
        let mut seen = vec![false; self.names.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(t) = stack.pop() {
            for &d in &self.depends[t] {
                if d == to {
                    return true;
                }
                if !seen[d] {
                    seen[d] = true;
                    stack.push(d);
                }
            }
        }
        false
    }
}

/// The synthetic-fleet name for `base` at `replica` (see
/// [`DependencyGraph::synthetic_fleet`]).
pub fn synthetic_team_name(base: Team, replica: usize) -> String {
    if replica == 0 {
        base.name().to_string()
    } else {
        format!("{}-{replica}", base.name())
    }
}

/// Strip a synthetic replica suffix: `PhyNet-3` → `PhyNet`, `PhyNet` →
/// `PhyNet`. Only a trailing `-<digits>` is a replica suffix; any other
/// name comes back unchanged.
pub fn base_team_name(name: &str) -> &str {
    match name.rsplit_once('-') {
        Some((base, suffix))
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) =>
        {
            base
        }
        _ => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_mirrors_the_enum_graph() {
        let g = DependencyGraph::builtin();
        assert_eq!(g.len(), Team::ALL.len());
        for a in Team::ALL {
            for b in Team::ALL {
                // The diagonal is the one deliberate difference: the
                // string graph defines self-dependency as false, while
                // the enum BFS reports true for teams on a dependency
                // cycle. Every caller guards the reflexive case with an
                // equality check first, so only off-diagonal pairs must
                // agree.
                if a == b {
                    assert!(!g.is_transitive_dependency(a.name(), b.name()));
                    continue;
                }
                assert_eq!(
                    g.is_transitive_dependency(a.name(), b.name()),
                    TeamRegistry::new().is_transitive_dependency(a, b),
                    "{a} -> {b} disagrees with the enum graph"
                );
            }
        }
    }

    #[test]
    fn unknown_teams_are_unrelated_but_addable() {
        let mut g = DependencyGraph::builtin();
        assert!(!g.contains("Atlantis"));
        assert!(!g.is_transitive_dependency("Atlantis", "PhyNet"));
        assert!(!g.is_transitive_dependency("PhyNet", "Atlantis"));
        g.add_dependency("Atlantis", "PhyNet");
        assert!(g.is_transitive_dependency("Atlantis", "PhyNet"));
        // Transitively through the builtin edges too.
        g.add_dependency("Mu", "Database");
        assert!(g.is_transitive_dependency("Mu", "PhyNet"));
    }

    #[test]
    fn cycles_terminate() {
        let mut g = DependencyGraph::new();
        g.add_dependency("A", "B");
        g.add_dependency("B", "C");
        g.add_dependency("C", "A");
        assert!(g.is_transitive_dependency("A", "C"));
        assert!(g.is_transitive_dependency("C", "B"));
        assert!(!g.is_transitive_dependency("A", "A"));
        // Mutual dependency both ways — the Scout Master's tie-break
        // must handle this, the graph just reports it.
        assert!(g.is_transitive_dependency("A", "B"));
        assert!(g.is_transitive_dependency("B", "A"));
    }

    #[test]
    fn synthetic_fleet_replicates_the_base_graph() {
        let g = DependencyGraph::synthetic_fleet(32);
        assert_eq!(g.len(), 32);
        // Replica 0 keeps bare names with the base edges.
        assert!(g.contains("PhyNet"));
        assert!(g.is_transitive_dependency("Database", "PhyNet"));
        // Replica 1 exists with mirrored edges, isolated from replica 0.
        assert!(g.contains("PhyNet-1"));
        assert!(g.is_transitive_dependency("Database-1", "PhyNet-1"));
        assert!(!g.is_transitive_dependency("Database-1", "PhyNet"));
        assert!(!g.is_transitive_dependency("Database", "PhyNet-1"));
    }

    #[test]
    fn synthetic_fleet_is_stable_under_growth() {
        // Growing the fleet never renames or rewires existing teams —
        // the prefix property that makes team add/remove safe.
        let small = DependencyGraph::synthetic_fleet(16);
        let large = DependencyGraph::synthetic_fleet(64);
        for name in small.team_names() {
            assert!(large.contains(name));
            assert_eq!(small.depends_on(name), large.depends_on(name));
        }
    }

    #[test]
    fn base_name_round_trips() {
        let bases: Vec<Team> = TeamRegistry::new().internal_teams().collect();
        for (i, base) in bases.iter().enumerate() {
            for replica in [0, 1, 7] {
                let name = synthetic_team_name(*base, replica);
                assert_eq!(base_team_name(&name), base.name(), "replica {replica} #{i}");
            }
        }
        assert_eq!(base_team_name("DNS"), "DNS");
        assert_eq!(base_team_name("PhyNet-x3"), "PhyNet-x3");
        assert_eq!(base_team_name("PhyNet-"), "PhyNet-");
    }
}
