//! Engineering teams and the dependency graph between them.
//!
//! The paper's world has hundreds of teams; the incidents it studies flow
//! through a handful of infrastructure teams with deep dependency chains
//! (§3.2: "team-level dependencies are deep, subtle, and can be hard to
//! reason about"). We model the cast that appears in the paper's narrative:
//! PhyNet (the deployed Scout's team), Storage, the software load balancer
//! (SLB), host networking, compute, database, DNS, firewall, the 24×7
//! support team, and two external parties (ISP, customer).
//!
//! The *dependency graph* encodes "whose component is a legitimate suspect
//! when mine misbehaves" — the single most common cause of mis-routing in
//! the paper's 200-incident study (122/200).

use std::fmt;

/// Identifier of a team. Index into [`TeamRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TeamId(pub u16);

/// The built-in cast of teams.
///
/// `Team::ALL` enumerates them; `TeamRegistry` holds metadata and the
/// dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Team {
    /// Physical networking — every switch, router and physical link (the
    /// paper's deployed Scout).
    PhyNet,
    /// Remote storage service.
    Storage,
    /// Software load balancing (VIP → DIP mappings).
    Slb,
    /// Host / virtual networking (vswitches, host agents).
    HostNet,
    /// Compute: servers, hypervisors, VM lifecycle.
    Compute,
    /// Database service.
    Database,
    /// DNS service.
    Dns,
    /// Edge firewalls.
    Firewall,
    /// 24×7 customer support (first stop for customer-reported incidents).
    Support,
    /// An external ISP (outside the provider).
    Isp,
    /// The customer's own environment (outside the provider).
    Customer,
}

impl Team {
    /// All teams, in `TeamId` order.
    pub const ALL: [Team; 11] = [
        Team::PhyNet,
        Team::Storage,
        Team::Slb,
        Team::HostNet,
        Team::Compute,
        Team::Database,
        Team::Dns,
        Team::Firewall,
        Team::Support,
        Team::Isp,
        Team::Customer,
    ];

    /// The team's id.
    pub fn id(self) -> TeamId {
        TeamId(Team::ALL.iter().position(|&t| t == self).unwrap() as u16)
    }

    /// Resolve an id back to the team.
    pub fn from_id(id: TeamId) -> Option<Team> {
        Team::ALL.get(id.0 as usize).copied()
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Team::PhyNet => "PhyNet",
            Team::Storage => "Storage",
            Team::Slb => "SLB",
            Team::HostNet => "HostNet",
            Team::Compute => "Compute",
            Team::Database => "Database",
            Team::Dns => "DNS",
            Team::Firewall => "Firewall",
            Team::Support => "Support",
            Team::Isp => "ISP",
            Team::Customer => "Customer",
        }
    }

    /// External organizations: the provider has no visibility into them
    /// (§3.2 "a fundamental challenge … lack of visibility into other ISPs
    /// and customer systems").
    pub fn is_external(self) -> bool {
        matches!(self, Team::Isp | Team::Customer)
    }

    /// Teams this team *depends on*: when this team's components misbehave,
    /// these teams are legitimate suspects. Drives the baseline router's
    /// hop choices and the fault catalog.
    pub fn depends_on(self) -> &'static [Team] {
        match self {
            // PhyNet is the root dependency of nearly everything.
            Team::PhyNet => &[],
            Team::Storage => &[Team::PhyNet, Team::Compute],
            Team::Slb => &[Team::PhyNet, Team::HostNet],
            Team::HostNet => &[Team::PhyNet, Team::Compute],
            Team::Compute => &[Team::PhyNet, Team::Storage],
            Team::Database => &[Team::Storage, Team::PhyNet, Team::Slb, Team::Compute],
            Team::Dns => &[Team::PhyNet],
            Team::Firewall => &[Team::PhyNet],
            Team::Support => &[],
            Team::Isp => &[],
            Team::Customer => &[],
        }
    }
}

impl fmt::Display for Team {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Team metadata plus dependency queries.
///
/// Exists so downstream crates can iterate teams uniformly and ask the
/// reverse question ("who depends on me?") without hard-coding the cast.
#[derive(Debug, Clone, Default)]
pub struct TeamRegistry;

impl TeamRegistry {
    /// Construct the registry (the cast is static).
    pub fn new() -> TeamRegistry {
        TeamRegistry
    }

    /// Number of teams.
    pub fn len(&self) -> usize {
        Team::ALL.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate all teams.
    pub fn teams(&self) -> impl Iterator<Item = Team> {
        Team::ALL.into_iter()
    }

    /// Internal (provider-side) teams only.
    pub fn internal_teams(&self) -> impl Iterator<Item = Team> {
        Team::ALL.into_iter().filter(|t| !t.is_external())
    }

    /// Teams that depend on `team` (reverse edges).
    pub fn dependents_of(&self, team: Team) -> Vec<Team> {
        Team::ALL
            .into_iter()
            .filter(|t| t.depends_on().contains(&team))
            .collect()
    }

    /// Is `suspect` a (transitive) dependency of `complainant`?
    pub fn is_transitive_dependency(&self, complainant: Team, suspect: Team) -> bool {
        let mut stack = vec![complainant];
        let mut seen = [false; Team::ALL.len()];
        while let Some(t) = stack.pop() {
            for &d in t.depends_on() {
                if d == suspect {
                    return true;
                }
                let idx = d.id().0 as usize;
                if !seen[idx] {
                    seen[idx] = true;
                    stack.push(d);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for t in Team::ALL {
            assert_eq!(Team::from_id(t.id()), Some(t));
        }
        assert_eq!(Team::from_id(TeamId(999)), None);
    }

    #[test]
    fn phynet_is_the_most_depended_on_team() {
        // §1: PhyNet receives 1 in 10 mis-routed incidents because nearly
        // everything depends on it.
        let reg = TeamRegistry::new();
        let phynet_dependents = reg.dependents_of(Team::PhyNet).len();
        for t in Team::ALL {
            if t != Team::PhyNet {
                assert!(reg.dependents_of(t).len() <= phynet_dependents);
            }
        }
        assert!(phynet_dependents >= 5);
    }

    #[test]
    fn external_teams() {
        assert!(Team::Isp.is_external());
        assert!(Team::Customer.is_external());
        assert!(!Team::PhyNet.is_external());
        let reg = TeamRegistry::new();
        assert_eq!(reg.internal_teams().count(), reg.len() - 2);
    }

    #[test]
    fn transitive_dependencies() {
        let reg = TeamRegistry::new();
        // Database → Storage → PhyNet.
        assert!(reg.is_transitive_dependency(Team::Database, Team::PhyNet));
        assert!(reg.is_transitive_dependency(Team::Database, Team::Storage));
        // PhyNet depends on nothing.
        for t in Team::ALL {
            assert!(!reg.is_transitive_dependency(Team::PhyNet, t));
        }
        // No self-dependency in the direct graph.
        for t in Team::ALL {
            assert!(!t.depends_on().contains(&t));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Team::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Team::ALL.len());
    }
}
