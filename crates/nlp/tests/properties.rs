//! Property-based tests for the text machinery.

use nlp::{tokenize, MetaFeaturizer, NlpRouter, TfIdf, Vocabulary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tokenizer never panics and only emits lowercase alphanumerics
    /// of length ≥ 2.
    #[test]
    fn tokenizer_is_total(text in "\\PC{0,200}") {
        for tok in tokenize(&text) {
            prop_assert!(tok.chars().count() >= 2);
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    /// TF-IDF vectors are unit-norm or zero for any document.
    #[test]
    fn tfidf_norm(doc in "[a-z ]{0,120}") {
        let corpus = vec![
            tokenize("packet loss on switch"),
            tokenize("storage disk latency"),
            tokenize("query timeout database"),
        ];
        let tfidf = TfIdf::fit(Vocabulary::build(&corpus, 1, 100));
        let v = tfidf.transform(&tokenize(&doc));
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm.abs() < 1e-9 || (norm - 1.0).abs() < 1e-9);
    }

    /// The router's posteriors always form a distribution and rank() is a
    /// permutation of the teams.
    #[test]
    fn router_outputs_are_valid(query in "\\PC{0,120}") {
        let texts = vec![
            "switch packet drops tor".to_string(),
            "disk latency storage stamp".to_string(),
            "query lock database table".to_string(),
            "switch link corruption loss".to_string(),
        ];
        let labels = vec![0usize, 1, 2, 0];
        let router = NlpRouter::fit(&texts, &labels, 3);
        let posts = router.posteriors(&query);
        prop_assert!((posts.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let ranked = router.rank(&query);
        let mut teams: Vec<usize> = ranked.iter().map(|r| r.team).collect();
        teams.sort_unstable();
        prop_assert_eq!(teams, vec![0, 1, 2]);
    }

    /// Meta-features are frequencies: they sum to at most 1 + OOV ≤ 2 and
    /// each lies in [0, 1].
    #[test]
    fn meta_features_are_frequencies(text in "\\PC{0,150}") {
        let corpus: Vec<String> = (0..20)
            .map(|i| format!("switch drops rack {i} packet loss"))
            .chain((0..20).map(|i| format!("storage disk slow stamp {i}")))
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i < 20)).collect();
        let mf = MetaFeaturizer::fit(&corpus, &labels, 10);
        let v = mf.features(&text);
        prop_assert_eq!(v.len(), mf.n_features());
        for &x in &v {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        // Word frequencies + OOV rate account for every token exactly once.
        let total: f64 = v.iter().sum();
        if !tokenize(&text).is_empty() {
            prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        }
    }
}
