//! Tokenization, vocabularies and TF-IDF weighting.

use std::collections::HashMap;

/// Lowercase and split on non-alphanumerics, dropping stopwords and
/// single-character fragments. Machine names like `vm-3.c10.dc3` decompose
/// into their parts (`vm`, `c10`, `dc3`), which is what lets text models
/// latch onto component vocabulary.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            // Some lowercase expansions emit combining marks (e.g. 'İ' →
            // "i\u{307}"); keep only alphanumerics so tokens honor the
            // advertised contract.
            cur.extend(c.to_lowercase().filter(|lc| lc.is_alphanumeric()));
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, tok: String) {
    // Character count, not byte length: a single multi-byte character is
    // still a one-character fragment.
    if tok.chars().count() >= 2 && !STOPWORDS.contains(&tok.as_str()) {
        out.push(tok);
    }
}

/// A minimal English stopword list tuned for incident prose.
const STOPWORDS: [&str; 32] = [
    "the", "a", "an", "is", "are", "was", "were", "be", "been", "to", "of", "in", "on", "at",
    "and", "or", "for", "with", "by", "from", "this", "that", "it", "its", "we", "has", "have",
    "had", "as", "but", "not", "no",
];

/// A fitted token vocabulary with document frequencies.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    df: Vec<usize>,
    n_docs: usize,
}

impl Vocabulary {
    /// Build from a corpus of token lists. Tokens appearing in fewer than
    /// `min_df` documents are dropped; the `max_features` most frequent
    /// kept.
    pub fn build(docs: &[Vec<String>], min_df: usize, max_features: usize) -> Vocabulary {
        let mut df_map: HashMap<&str, usize> = HashMap::new();
        for doc in docs {
            let mut seen: Vec<&str> = doc.iter().map(String::as_str).collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df_map.entry(t).or_insert(0) += 1;
            }
        }
        let mut terms: Vec<(&str, usize)> =
            df_map.into_iter().filter(|&(_, df)| df >= min_df).collect();
        // Most frequent first; lexicographic tie-break keeps builds stable.
        terms.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        terms.truncate(max_features);
        let mut index = HashMap::with_capacity(terms.len());
        let mut df = Vec::with_capacity(terms.len());
        for (i, (t, d)) in terms.into_iter().enumerate() {
            index.insert(t.to_string(), i);
            df.push(d);
        }
        Vocabulary {
            index,
            df,
            n_docs: docs.len(),
        }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.df.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.df.is_empty()
    }

    /// Index of `token`, if retained.
    pub fn get(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// Term counts for a tokenized document.
    pub fn counts(&self, tokens: &[String]) -> Vec<f64> {
        let mut v = vec![0.0; self.len()];
        for t in tokens {
            if let Some(i) = self.get(t) {
                v[i] += 1.0;
            }
        }
        v
    }
}

/// TF-IDF transform bound to a [`Vocabulary`].
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f64>,
    vocab: Vocabulary,
}

impl TfIdf {
    /// Compute smoothed IDF weights from the vocabulary's document
    /// frequencies.
    pub fn fit(vocab: Vocabulary) -> TfIdf {
        let n = vocab.n_docs as f64;
        let idf = vocab
            .df
            .iter()
            .map(|&df| ((1.0 + n) / (1.0 + df as f64)).ln() + 1.0)
            .collect();
        TfIdf { idf, vocab }
    }

    /// The underlying vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// L2-normalized TF-IDF vector for a tokenized document.
    pub fn transform(&self, tokens: &[String]) -> Vec<f64> {
        let mut v = self.vocab.counts(tokens);
        for (x, &idf) in v.iter_mut().zip(&self.idf) {
            *x *= idf;
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_machine_names() {
        let toks = tokenize("VM vm-3.c10.dc3 cannot reach storage");
        assert_eq!(
            toks,
            vec!["vm", "vm", "c10", "dc3", "cannot", "reach", "storage"]
        );
    }

    #[test]
    fn tokenizer_drops_stopwords_and_fragments() {
        let toks = tokenize("the switch at rack B is down");
        assert_eq!(toks, vec!["switch", "rack", "down"]);
    }

    #[test]
    fn vocabulary_min_df_and_cap() {
        let docs: Vec<Vec<String>> = vec![
            tokenize("ping loss high loss"),
            tokenize("ping ok"),
            tokenize("loss again"),
        ];
        let vocab = Vocabulary::build(&docs, 2, 100);
        assert!(vocab.get("ping").is_some());
        assert!(vocab.get("loss").is_some());
        assert!(vocab.get("ok").is_none(), "df=1 dropped");
        let capped = Vocabulary::build(&docs, 1, 1);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn counts_vector() {
        let docs = vec![tokenize("drop drop loss"), tokenize("drop")];
        let vocab = Vocabulary::build(&docs, 1, 10);
        let v = vocab.counts(&tokenize("drop loss drop unseen"));
        let drop_idx = vocab.get("drop").unwrap();
        let loss_idx = vocab.get("loss").unwrap();
        assert_eq!(v[drop_idx], 2.0);
        assert_eq!(v[loss_idx], 1.0);
    }

    #[test]
    fn tfidf_downweights_ubiquitous_terms() {
        let docs: Vec<Vec<String>> = (0..10)
            .map(|i| {
                if i == 0 {
                    tokenize("incident rare-word")
                } else {
                    tokenize("incident common stuff")
                }
            })
            .collect();
        let tfidf = TfIdf::fit(Vocabulary::build(&docs, 1, 100));
        let v = tfidf.transform(&tokenize("incident rare word"));
        let common = tfidf.vocabulary().get("incident").unwrap();
        let rare = tfidf.vocabulary().get("rare").unwrap();
        assert!(v[rare] > v[common], "rare terms weigh more");
    }

    #[test]
    fn tfidf_vectors_are_unit_norm() {
        let docs = vec![tokenize("alpha beta gamma"), tokenize("beta gamma delta")];
        let tfidf = TfIdf::fit(Vocabulary::build(&docs, 1, 100));
        let v = tfidf.transform(&tokenize("alpha beta"));
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        // All-unseen text: zero vector, no NaN.
        let z = tfidf.transform(&tokenize("zeta eta"));
        assert!(z.iter().all(|&x| x == 0.0));
    }
}
