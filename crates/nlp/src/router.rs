//! The provider's incumbent NLP-based recommendation system (§2, §7).
//!
//! "A multi-class classifier that only takes the incident description as
//! input … produces a ranked list (along with categorical — high, medium,
//! and low — confidence scores) as a recommendation to the operator."
//!
//! Implemented as multinomial naive Bayes over the token counts, the
//! classic text-classification baseline. Its characteristic weakness in the
//! paper — decent precision, lower recall, led astray by conversation logs
//! — comes from relying on symptom text rather than component state.

use crate::text::{tokenize, Vocabulary};

/// Categorical confidence bands the incumbent system reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConfidenceBand {
    /// Posterior below 0.5.
    Low,
    /// Posterior in [0.5, 0.8).
    Medium,
    /// Posterior of at least 0.8.
    High,
}

impl ConfidenceBand {
    fn from_posterior(p: f64) -> ConfidenceBand {
        if p >= 0.8 {
            ConfidenceBand::High
        } else if p >= 0.5 {
            ConfidenceBand::Medium
        } else {
            ConfidenceBand::Low
        }
    }
}

/// One entry of the ranked recommendation list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedTeam {
    /// Dense team label as used at fit time.
    pub team: usize,
    /// Posterior probability.
    pub score: f64,
    /// The categorical band shown to operators.
    pub band: ConfidenceBand,
}

/// The fitted router.
#[derive(Debug, Clone)]
pub struct NlpRouter {
    vocab: Vocabulary,
    /// Per team: log prior.
    log_prior: Vec<f64>,
    /// Per team, per token: log P(token | team), Laplace-smoothed.
    log_likelihood: Vec<Vec<f64>>,
}

impl NlpRouter {
    /// Fit on incident descriptions and their resolving-team labels
    /// (`0..n_teams`).
    pub fn fit(descriptions: &[String], teams: &[usize], n_teams: usize) -> NlpRouter {
        assert_eq!(descriptions.len(), teams.len());
        assert!(!descriptions.is_empty());
        let docs: Vec<Vec<String>> = descriptions.iter().map(|d| tokenize(d)).collect();
        let vocab = Vocabulary::build(&docs, 2, 4000);
        let v = vocab.len();
        let mut class_count = vec![0usize; n_teams];
        let mut token_count = vec![vec![0.0f64; v]; n_teams];
        for (doc, &t) in docs.iter().zip(teams) {
            class_count[t] += 1;
            for tok in doc {
                if let Some(i) = vocab.get(tok) {
                    token_count[t][i] += 1.0;
                }
            }
        }
        let n = descriptions.len() as f64;
        let log_prior = class_count
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n).ln()
                }
            })
            .collect();
        let log_likelihood = token_count
            .into_iter()
            .map(|counts| {
                let total: f64 = counts.iter().sum::<f64>() + v as f64; // Laplace
                counts
                    .into_iter()
                    .map(|c| ((c + 1.0) / total).ln())
                    .collect()
            })
            .collect();
        NlpRouter {
            vocab,
            log_prior,
            log_likelihood,
        }
    }

    /// Number of teams.
    pub fn n_teams(&self) -> usize {
        self.log_prior.len()
    }

    /// Posterior P(team | description).
    pub fn posteriors(&self, description: &str) -> Vec<f64> {
        let counts = self.vocab.counts(&tokenize(description));
        let scores: Vec<f64> = self
            .log_prior
            .iter()
            .enumerate()
            .map(|(t, &lp)| {
                if lp == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut s = lp;
                for (i, &c) in counts.iter().enumerate() {
                    if c > 0.0 {
                        s += c * self.log_likelihood[t][i];
                    }
                }
                s
            })
            .collect();
        softmax(&scores)
    }

    /// The full ranked recommendation list, best team first.
    pub fn rank(&self, description: &str) -> Vec<RankedTeam> {
        let post = self.posteriors(description);
        let mut ranked: Vec<RankedTeam> = post
            .into_iter()
            .enumerate()
            .map(|(team, score)| RankedTeam {
                team,
                score,
                band: ConfidenceBand::from_posterior(score),
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked
    }

    /// The single best recommendation.
    pub fn recommend(&self, description: &str) -> RankedTeam {
        self.rank(description)[0]
    }
}

fn softmax(log_scores: &[f64]) -> Vec<f64> {
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return vec![1.0 / log_scores.len() as f64; log_scores.len()];
    }
    let exps: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Vec<String>, Vec<usize>, usize) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            texts.push(format!(
                "packet loss on switch tor-{i} link corruption detected"
            ));
            labels.push(0); // network
            texts.push(format!(
                "storage account timeout virtual disk latency stamp-{i}"
            ));
            labels.push(1); // storage
            texts.push(format!(
                "database query slow execution plan table lock id-{i}"
            ));
            labels.push(2); // database
        }
        (texts, labels, 3)
    }

    #[test]
    fn routes_distinct_vocabularies() {
        let (texts, labels, n) = corpus();
        let router = NlpRouter::fit(&texts, &labels, n);
        assert_eq!(router.recommend("tor switch reporting packet loss").team, 0);
        assert_eq!(
            router.recommend("virtual disk slow storage timeout").team,
            1
        );
        assert_eq!(
            router
                .recommend("query execution blocked on table lock")
                .team,
            2
        );
    }

    #[test]
    fn ranked_list_is_sorted_and_complete() {
        let (texts, labels, n) = corpus();
        let router = NlpRouter::fit(&texts, &labels, n);
        let ranked = router.rank("switch loss plus some storage words");
        assert_eq!(ranked.len(), n);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let total: f64 = ranked.iter().map(|r| r.score).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn confidence_bands_follow_posterior() {
        assert_eq!(ConfidenceBand::from_posterior(0.95), ConfidenceBand::High);
        assert_eq!(ConfidenceBand::from_posterior(0.6), ConfidenceBand::Medium);
        assert_eq!(ConfidenceBand::from_posterior(0.2), ConfidenceBand::Low);
        assert!(ConfidenceBand::High > ConfidenceBand::Low);
    }

    #[test]
    fn noise_words_dilute_confidence() {
        let (texts, labels, n) = corpus();
        let router = NlpRouter::fit(&texts, &labels, n);
        let clean = router.recommend("switch link corruption packet loss");
        // The paper's observation: conversation logs lead the model astray.
        let noisy = router.recommend(
            "switch link issue. chat: engineer says maybe storage? database \
             team checked query table lock disk latency timeout storage",
        );
        assert!(clean.score > noisy.score, "noise must reduce confidence");
    }

    #[test]
    fn unseen_vocabulary_falls_back_to_priors() {
        let (mut texts, mut labels, n) = corpus();
        // Skew priors toward team 0.
        for i in 0..30 {
            texts.push(format!("network thing {i}"));
            labels.push(0);
        }
        let router = NlpRouter::fit(&texts, &labels, n);
        let rec = router.recommend("completely novel words xyzzy plugh");
        assert_eq!(rec.team, 0, "prior-dominant team wins with no evidence");
    }
}
