//! `nlp` — text machinery for incident descriptions.
//!
//! Three consumers in the paper:
//!
//! 1. The provider's **existing NLP-based recommendation system** (§2, §7):
//!    a multi-class classifier over the incident description that produces a
//!    ranked team list with categorical high/medium/low confidence. It is
//!    the baseline every Scout result is compared against, and its
//!    documented weakness — high precision, low recall, because incident
//!    text describes symptoms and is full of conversation noise — emerges
//!    naturally from training on text alone. Implemented in [`router`] as
//!    one-vs-rest multinomial naive Bayes over TF-IDF.
//! 2. The **model selector's meta-features** (§5.3, method of \[58\]):
//!    "important words in the incident and their frequency", implemented in
//!    [`meta`] with chi-square word scoring.
//! 3. General tokenization and vocabulary plumbing in [`text`].

pub mod meta;
pub mod router;
pub mod text;

pub use meta::MetaFeaturizer;
pub use router::{ConfidenceBand, NlpRouter, RankedTeam};
pub use text::{tokenize, TfIdf, Vocabulary};
