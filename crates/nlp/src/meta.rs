//! Meta-features for the model selector (§5.3).
//!
//! "Our meta-features are based on the method proposed in \[58\]: we
//! identify important words in the incident and their frequency." Words are
//! scored by a chi-square statistic against the binary label (team
//! responsible or not) on the training corpus; the top-k become the feature
//! positions, and an incident's meta-feature vector is their frequencies in
//! its text — plus an out-of-vocabulary rate that lets the selector notice
//! *new* incident language (the signal that routes an incident to CPD+).

use crate::text::tokenize;
use std::collections::HashMap;

/// Fitted meta-feature extractor.
#[derive(Debug, Clone)]
pub struct MetaFeaturizer {
    /// The selected important words, most important first.
    words: Vec<String>,
    index: HashMap<String, usize>,
}

impl MetaFeaturizer {
    /// Select the `k` most label-associated words from `(descriptions,
    /// labels)` by chi-square.
    pub fn fit(descriptions: &[String], labels: &[usize], k: usize) -> MetaFeaturizer {
        assert_eq!(descriptions.len(), labels.len());
        let n = descriptions.len() as f64;
        let positives = labels.iter().filter(|&&y| y == 1).count() as f64;
        // Document frequency per word, per class.
        let mut df_pos: HashMap<String, f64> = HashMap::new();
        let mut df_all: HashMap<String, f64> = HashMap::new();
        for (d, &y) in descriptions.iter().zip(labels) {
            let mut toks = tokenize(d);
            toks.sort_unstable();
            toks.dedup();
            for t in toks {
                *df_all.entry(t.clone()).or_insert(0.0) += 1.0;
                if y == 1 {
                    *df_pos.entry(t).or_insert(0.0) += 1.0;
                }
            }
        }
        let mut scored: Vec<(String, f64)> = df_all
            .into_iter()
            .filter(|&(_, df)| df >= 3.0)
            .map(|(w, df)| {
                let a = df_pos.get(&w).copied().unwrap_or(0.0); // pos & present
                let b = df - a; // neg & present
                let c = positives - a; // pos & absent
                let d = (n - positives) - b; // neg & absent
                let num = n * (a * d - b * c) * (a * d - b * c);
                let den = (a + b) * (c + d) * (a + c) * (b + d);
                let chi2 = if den > 0.0 { num / den } else { 0.0 };
                (w, chi2)
            })
            .collect();
        scored.sort_by(|x, y| {
            y.1.partial_cmp(&x.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.0.cmp(&y.0))
        });
        scored.truncate(k);
        let words: Vec<String> = scored.into_iter().map(|(w, _)| w).collect();
        let index = words
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, w)| (w, i))
            .collect();
        MetaFeaturizer { words, index }
    }

    /// Rebuild from a saved word list (persistence).
    pub fn from_words(words: Vec<String>) -> MetaFeaturizer {
        let index = words
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, w)| (w, i))
            .collect();
        MetaFeaturizer { words, index }
    }

    /// The selected vocabulary, most important first.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Feature dimension: one per important word, plus the OOV rate.
    pub fn n_features(&self) -> usize {
        self.words.len() + 1
    }

    /// Meta-feature vector: per-word relative frequency, then the fraction
    /// of tokens not covered by the important-word vocabulary.
    pub fn features(&self, description: &str) -> Vec<f64> {
        let toks = tokenize(description);
        let mut v = vec![0.0; self.n_features()];
        if toks.is_empty() {
            // No text at all: fully out-of-vocabulary.
            *v.last_mut().unwrap() = 1.0;
            return v;
        }
        let mut oov = 0.0;
        for t in &toks {
            match self.index.get(t) {
                Some(&i) => v[i] += 1.0,
                None => oov += 1.0,
            }
        }
        let n = toks.len() as f64;
        for x in v.iter_mut().take(self.words.len()) {
            *x /= n;
        }
        *v.last_mut().unwrap() = oov / n;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Vec<String>, Vec<usize>) {
        let mut texts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            texts.push(format!("switch packet drops detected tor rack {i}"));
            labels.push(1);
            texts.push(format!("storage latency stamp slow disk {i}"));
            labels.push(0);
        }
        (texts, labels)
    }

    #[test]
    fn discriminative_words_rank_first() {
        let (texts, labels) = corpus();
        let mf = MetaFeaturizer::fit(&texts, &labels, 6);
        assert!(
            mf.words()
                .iter()
                .any(|w| w == "switch" || w == "drops" || w == "tor"),
            "positive-class words selected: {:?}",
            mf.words()
        );
        assert!(
            mf.words()
                .iter()
                .any(|w| w == "storage" || w == "latency" || w == "disk"),
            "negative-class words are discriminative too: {:?}",
            mf.words()
        );
    }

    #[test]
    fn features_are_frequencies_plus_oov() {
        let (texts, labels) = corpus();
        let mf = MetaFeaturizer::fit(&texts, &labels, 12);
        let v = mf.features("switch switch novelword");
        assert_eq!(v.len(), mf.n_features());
        let sw = mf.words().iter().position(|w| w == "switch").unwrap();
        assert!((v[sw] - 2.0 / 3.0).abs() < 1e-9);
        assert!((v.last().unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn novel_text_has_high_oov() {
        let (texts, labels) = corpus();
        let mf = MetaFeaturizer::fit(&texts, &labels, 8);
        let v_old = mf.features("switch packet drops on tor");
        let v_new = mf.features("bgp session flap wedged asic firmware");
        assert!(v_new.last().unwrap() > v_old.last().unwrap());
        assert_eq!(*v_new.last().unwrap(), 1.0, "entirely new language");
    }

    #[test]
    fn empty_text_is_all_oov() {
        let (texts, labels) = corpus();
        let mf = MetaFeaturizer::fit(&texts, &labels, 4);
        let v = mf.features("");
        assert_eq!(*v.last().unwrap(), 1.0);
        assert!(v[..v.len() - 1].iter().all(|&x| x == 0.0));
    }
}
