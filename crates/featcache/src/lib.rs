//! `featcache` — the windowed feature-aggregate cache.
//!
//! The paper's feature construction (§5.2.1) aggregates telemetry over the
//! look-back window `[t−T, t]`; consecutive incidents on the same devices
//! share almost all of that window, yet the serving layer used to replay
//! window generation, sorting, and 11 statistics from scratch on every
//! `predict`. This crate memoizes the expensive part: telemetry is carved
//! into immutable per-`(epoch, dataset, device, aligned time-bucket)`
//! **chunks** carrying `count / sum / sum-of-squares / min / max` plus the
//! *sorted* sample slice, so merged percentiles stay exact rather than
//! sketched. Chunks live behind a bounded, byte-budgeted LRU.
//!
//! # Exactness
//!
//! A chunk is a pure function of its key: the monitoring epoch fingerprints
//! the seed, topology, fault schedule, and deprecated data sets
//! ([`monitoring::MonitoringSystem::epoch`]), and sample generation is
//! deterministic per `(dataset, device, step)`. Whether a bucket's samples
//! come from a freshly generated chunk, a cached one, or no cache at all,
//! the bytes are identical — so cached and uncached featurization agree
//! bit-for-bit (a property test in `scout` enforces this). Full buckets
//! contribute their precomputed aggregates; the window's ragged edges are
//! sliced out of the bucket's time-ordered samples and folded in
//! sample-by-sample. Which buckets are "full" depends only on the query
//! window, never on cache state, so the floating-point operation order is
//! the same in every mode.
//!
//! Percentiles cannot be merged from aggregates, so [`PoolStats`] keeps the
//! contributing slices and pulls the quantile ranks out of their pooled
//! multiset by progressive selection at finalization — `O(n)` instead of
//! the old `O(n log n)` re-sort, and exact: the element at a given rank
//! under `total_cmp`'s total order is unique, whatever algorithm finds it.
//!
//! # Invalidation
//!
//! The epoch is part of the key: a new fault schedule or monitoring config
//! simply misses. Model hot-swap in `serve` gets a fresh cache per
//! [`ModelEntry`], so no explicit flush API is needed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cloudsim::{ComponentId, SimTime};
use monitoring::{window_steps, Dataset, Event, MonitoringSystem};

pub mod stats;

use stats::{finalize_stats, ord_key, with_scratch, Moments};

/// Samples per chunk: 12 steps × 5-minute [`monitoring::SAMPLE_INTERVAL`]
/// = one hour. A two-hour look-back window spans at most four buckets
/// (two full, two ragged), so the per-predict merge is a handful of
/// aggregate folds plus two short slices.
pub const CHUNK_STEPS: u64 = 12;

/// Cache key: every field that can change a chunk's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Monitoring-plane fingerprint (seed + topology + faults + config).
    pub epoch: u64,
    /// `Dataset::index()`.
    pub dataset: usize,
    /// Device the telemetry belongs to.
    pub device: u64,
    /// Aligned bucket: covers steps `[bucket·CHUNK_STEPS, (bucket+1)·CHUNK_STEPS)`.
    pub bucket: u64,
}

/// One hour of telemetry for one `(dataset, device)`, immutable once built.
#[derive(Debug)]
pub struct SeriesChunk {
    /// Time-ordered samples (baseline-normalized for class-tagged data
    /// sets, matching the featurizer's pooling convention).
    pub samples: Vec<f64>,
    /// The same samples as order-preserving u64 keys ([`ord_key`]), sorted
    /// ascending — i.e. the `total_cmp` sort, pre-transformed so pooled
    /// percentile selection works on plain integers.
    pub sorted_keys: Vec<u64>,
    /// Sequential sum over `samples` in time order.
    pub sum: f64,
    /// Sequential sum of squares over `samples` in time order.
    pub sumsq: f64,
    /// Minimum sample (`+inf` when empty).
    pub min: f64,
    /// Maximum sample (`-inf` when empty).
    pub max: f64,
}

/// One hour of events for one `(dataset, device)`.
#[derive(Debug)]
pub struct EventChunk {
    /// Events ordered by time.
    pub events: Vec<Event>,
}

/// A cached unit: series- or event-typed.
#[derive(Debug)]
pub enum Chunk {
    /// Time-series bucket.
    Series(SeriesChunk),
    /// Event bucket.
    Events(EventChunk),
}

impl Chunk {
    /// Approximate heap footprint, for the byte budget.
    fn bytes(&self) -> usize {
        const OVERHEAD: usize = 96; // key + Arc + LRU bookkeeping
        match self {
            Chunk::Series(s) => OVERHEAD + (s.samples.len() + s.sorted_keys.len()) * 8,
            Chunk::Events(e) => OVERHEAD + e.events.len() * std::mem::size_of::<Event>(),
        }
    }
}

/// Build the series chunk for `key`'s bucket — the *only* code path that
/// turns raw telemetry into pooled samples, shared by cached and uncached
/// featurization. Class-tagged data sets are normalized to their healthy
/// baseline here so chunks mix safely across hardware generations.
fn build_series_chunk(
    mon: &MonitoringSystem,
    dataset: Dataset,
    device: ComponentId,
    bucket: u64,
) -> Chunk {
    let steps = bucket * CHUNK_STEPS..(bucket + 1) * CHUNK_STEPS;
    let mut samples = mon.series_steps(dataset, device, steps).unwrap_or_default();
    if dataset.class_tag().is_some() {
        let (mean, sd) = dataset.baseline();
        let sd = if sd > 0.0 { sd } else { 1.0 };
        for v in &mut samples {
            *v = (*v - mean) / sd;
        }
    }
    let mut sorted_keys: Vec<u64> = samples.iter().map(|&v| ord_key(v)).collect();
    sorted_keys.sort_unstable();
    let m = Moments::of(&samples);
    Chunk::Series(SeriesChunk {
        samples,
        sorted_keys,
        sum: m.sum,
        sumsq: m.sumsq,
        min: m.min,
        max: m.max,
    })
}

fn build_event_chunk(
    mon: &MonitoringSystem,
    dataset: Dataset,
    device: ComponentId,
    bucket: u64,
) -> Chunk {
    let steps = bucket * CHUNK_STEPS..(bucket + 1) * CHUNK_STEPS;
    Chunk::Events(EventChunk {
        events: mon.events_steps(dataset, device, steps),
    })
}

#[derive(Debug)]
struct Entry {
    chunk: Arc<Chunk>,
    /// Stamp of this entry's *latest* queue slot; older slots are stale.
    stamp: u64,
    bytes: usize,
}

/// `ChunkKey` lookups are the per-predict hot path (hundreds per call),
/// where SipHash's setup cost dominates the probe. The key is four plain
/// words, so a multiply-xor mixer (splitmix64's finalizer) gives full
/// avalanche at a fraction of the cost.
#[derive(Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut x = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        self.0 = x;
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type KeyMap = HashMap<ChunkKey, Entry, std::hash::BuildHasherDefault<KeyHasher>>;

/// Lazy-deletion LRU: touches push a fresh `(key, stamp)` slot instead of
/// splicing a linked list; eviction pops slots and skips the stale ones.
/// Amortized O(1) per touch, compacted when the queue outgrows the map.
#[derive(Debug, Default)]
struct Lru {
    map: KeyMap,
    queue: VecDeque<(ChunkKey, u64)>,
    next_stamp: u64,
    bytes: usize,
}

impl Lru {
    /// How stale (in stamps) an entry's queue slot may get before a hit
    /// refreshes it. Skipping the refresh keeps the hot hit path to a map
    /// probe; the cost is eviction order that is coarse to within one
    /// grain, never a capacity or correctness change.
    const REFRESH_GRAIN: u64 = 256;

    fn touch(&mut self, key: ChunkKey) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.stamp = stamp;
        }
        self.queue.push_back((key, stamp));
        if self.queue.len() > 4 * self.map.len() + 16 {
            let map = &self.map;
            self.queue
                .retain(|(k, s)| map.get(k).is_some_and(|e| e.stamp == *s));
        }
    }

    /// [`Lru::touch`] for the hit path: entries stamped within the last
    /// [`Lru::REFRESH_GRAIN`] touches keep their current queue slot.
    fn touch_hit(&mut self, key: ChunkKey) {
        if let Some(e) = self.map.get(&key) {
            if self.next_stamp.saturating_sub(e.stamp) < Lru::REFRESH_GRAIN {
                return;
            }
        }
        self.touch(key);
    }

    /// Evict least-recently-used entries until `bytes <= budget`.
    /// Returns the number of chunks evicted.
    fn evict_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some((key, stamp)) = self.queue.pop_front() else {
                break;
            };
            if self.map.get(&key).is_some_and(|e| e.stamp == stamp) {
                let e = self.map.remove(&key).unwrap();
                self.bytes -= e.bytes;
                evicted += 1;
            }
        }
        evicted
    }
}

/// Bounded, thread-safe chunk cache. Capacity `0` degenerates to a pure
/// pass-through (every lookup builds, nothing is stored), which is how the
/// bit-identity property is exercised end to end.
#[derive(Debug)]
pub struct FeatCache {
    inner: Mutex<Lru>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time view of the cache counters, for tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the chunk.
    pub misses: u64,
    /// Chunks dropped to stay inside the byte budget.
    pub evictions: u64,
    /// Bytes currently held.
    pub bytes: usize,
    /// Chunks currently held.
    pub chunks: usize,
}

impl FeatCache {
    /// A cache holding at most `capacity_bytes` of chunk data.
    pub fn new(capacity_bytes: usize) -> FeatCache {
        FeatCache {
            inner: Mutex::new(Lru::default()),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Current counters (also mirrored into the `obs` registry as
    /// `featcache.hits` / `.misses` / `.evictions` counters and
    /// `featcache.bytes` / `.chunks` gauges).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: inner.bytes,
            chunks: inner.map.len(),
        }
    }

    /// Fetch `key`'s chunk, building it with `build` on a miss. The build
    /// runs outside the lock — two racing threads may both build, but the
    /// chunk is a pure function of the key, so whichever insert wins stores
    /// identical bytes.
    fn get_or_build(&self, key: ChunkKey, build: impl FnOnce() -> Chunk) -> Arc<Chunk> {
        if self.capacity_bytes > 0 {
            let mut inner = self.inner.lock().unwrap();
            if let Some(e) = inner.map.get(&key) {
                let chunk = Arc::clone(&e.chunk);
                inner.touch_hit(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter("featcache.hits").inc();
                return chunk;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter("featcache.misses").inc();
        let chunk = {
            let _span = obs::span!("featcache.build");
            Arc::new(build())
        };
        if self.capacity_bytes == 0 {
            return chunk;
        }
        let bytes = chunk.bytes();
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.map.get(&key) {
            // Lost the build race; keep the incumbent.
            let incumbent = Arc::clone(&e.chunk);
            inner.touch(key);
            return incumbent;
        }
        inner.map.insert(
            key,
            Entry {
                chunk: Arc::clone(&chunk),
                stamp: 0,
                bytes,
            },
        );
        inner.bytes += bytes;
        inner.touch(key);
        let evicted = inner.evict_to(self.capacity_bytes);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            obs::counter("featcache.evictions").add(evicted);
        }
        obs::gauge("featcache.bytes").set(inner.bytes as f64);
        obs::gauge("featcache.chunks").set(inner.map.len() as f64);
        chunk
    }
}

fn series_chunk(
    cache: Option<&FeatCache>,
    mon: &MonitoringSystem,
    dataset: Dataset,
    device: ComponentId,
    bucket: u64,
) -> Arc<Chunk> {
    let build = || build_series_chunk(mon, dataset, device, bucket);
    match cache {
        Some(c) => c.get_or_build(
            ChunkKey {
                epoch: mon.epoch(),
                dataset: dataset.index(),
                device: u64::from(device.0),
                bucket,
            },
            build,
        ),
        None => Arc::new(build()),
    }
}

fn event_chunk(
    cache: Option<&FeatCache>,
    mon: &MonitoringSystem,
    dataset: Dataset,
    device: ComponentId,
    bucket: u64,
) -> Arc<Chunk> {
    let build = || build_event_chunk(mon, dataset, device, bucket);
    match cache {
        Some(c) => c.get_or_build(
            ChunkKey {
                epoch: mon.epoch(),
                // Event and series chunks never collide: a dataset is one
                // or the other, and `dataset` is part of the key.
                dataset: dataset.index(),
                device: u64::from(device.0),
                bucket,
            },
            build,
        ),
        None => Arc::new(build()),
    }
}

/// Samples contributing to a pool's percentiles: either a whole chunk
/// (its pre-transformed `sorted_keys` memcpy straight into the selection
/// buffer) or a ragged-edge range of a chunk's time-ordered samples,
/// transformed through [`ord_key`] at finalization. Both borrow the
/// chunk via `Arc` — no per-part allocation on the hot path.
#[derive(Debug)]
enum SortedPart {
    Whole(Arc<Chunk>),
    Range(Arc<Chunk>, usize, usize),
}

impl SortedPart {
    fn extend_keys(&self, buf: &mut Vec<u64>) {
        match self {
            SortedPart::Whole(c) => {
                if let Chunk::Series(s) = &**c {
                    buf.extend_from_slice(&s.sorted_keys);
                }
            }
            SortedPart::Range(c, lo, hi) => {
                if let Chunk::Series(s) = &**c {
                    buf.extend(s.samples[*lo..*hi].iter().map(|&v| ord_key(v)));
                }
            }
        }
    }
}

/// Mergeable pool statistics: the cache-aware replacement for collecting
/// every raw sample and re-sorting. Mean/std/min/max merge from chunk
/// aggregates; percentiles merge the contributing slices at finalization,
/// so they are *exact* over the pooled multiset.
#[derive(Debug, Default)]
pub struct PoolStats {
    count: u64,
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
    parts: Vec<SortedPart>,
}

impl PoolStats {
    /// An empty pool.
    pub fn new() -> PoolStats {
        PoolStats {
            count: 0,
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            parts: Vec::new(),
        }
    }

    /// Samples accumulated so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Pool mean, `None` when empty. (The `DeviceMeans` ablation reduces
    /// each device's window to this before pooling.)
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    fn add_chunk(&mut self, chunk: Arc<Chunk>) {
        let Chunk::Series(s) = &*chunk else { return };
        if s.samples.is_empty() {
            return;
        }
        self.count += s.samples.len() as u64;
        self.sum += s.sum;
        self.sumsq += s.sumsq;
        self.min = self.min.min(s.min);
        self.max = self.max.max(s.max);
        self.parts.push(SortedPart::Whole(chunk));
    }

    /// Fold in `chunk.samples[lo..hi]` — a window's ragged edge.
    fn add_range(&mut self, chunk: Arc<Chunk>, lo: usize, hi: usize) {
        let Chunk::Series(s) = &*chunk else { return };
        let samples = &s.samples[lo..hi];
        if samples.is_empty() {
            return;
        }
        self.count += samples.len() as u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for &v in samples {
            sum += v;
            sumsq += v * v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += sum;
        self.sumsq += sumsq;
        self.parts.push(SortedPart::Range(chunk, lo, hi));
    }

    /// Write the 11 §5.2.1 statistics (mean, std, min, max,
    /// p1/10/25/50/75/90/99) into `out`. Zeros when the pool is empty.
    ///
    /// Finalization goes through the shared fused kernel
    /// ([`stats::finalize_stats`]): the merged `sum`/`sumsq`/`min`/`max`
    /// aggregates become a [`Moments`], the contributing slices pool
    /// their [`ord_key`]s into the thread-local scratch, and the one
    /// variance-clamp + percentile-selection site produces the bytes —
    /// the same site the uncached path (`stats::fill_ts_stats`) uses, so
    /// cached and uncached stats are bit-identical by construction.
    pub fn write_stats(&self, out: &mut [f64]) {
        let m = Moments {
            count: self.count,
            sum: self.sum,
            sumsq: self.sumsq,
            min: self.min,
            max: self.max,
        };
        with_scratch(self.count as usize, |buf| {
            for part in &self.parts {
                part.extend_keys(buf);
            }
            finalize_stats(&m, buf, out);
        });
    }
}

/// Accumulate the samples of `window` on `(dataset, device)` into `pool`,
/// through `cache` when given. Buckets fully inside the window fold in as
/// aggregates; the ragged edges are sliced from the bucket's time-ordered
/// samples. The resulting pool is bit-identical with or without a cache.
pub fn accumulate_series(
    cache: Option<&FeatCache>,
    mon: &MonitoringSystem,
    dataset: Dataset,
    device: ComponentId,
    window: (SimTime, SimTime),
    pool: &mut PoolStats,
) {
    if !mon.series_available(dataset, device) {
        return;
    }
    let steps = window_steps(window);
    if steps.is_empty() {
        return;
    }
    let first_bucket = steps.start / CHUNK_STEPS;
    let last_bucket = (steps.end - 1) / CHUNK_STEPS;
    for bucket in first_bucket..=last_bucket {
        let b_start = bucket * CHUNK_STEPS;
        let b_end = b_start + CHUNK_STEPS;
        let lo = steps.start.max(b_start);
        let hi = steps.end.min(b_end);
        let chunk = series_chunk(cache, mon, dataset, device, bucket);
        if lo == b_start && hi == b_end {
            pool.add_chunk(chunk);
        } else {
            pool.add_range(chunk, (lo - b_start) as usize, (hi - b_start) as usize);
        }
    }
}

/// Visit every event of `window` on `(dataset, device)` in time order,
/// through `cache` when given.
pub fn for_each_event(
    cache: Option<&FeatCache>,
    mon: &MonitoringSystem,
    dataset: Dataset,
    device: ComponentId,
    window: (SimTime, SimTime),
    mut f: impl FnMut(&Event),
) {
    let steps = window_steps(window);
    if steps.is_empty() {
        return;
    }
    let step_len = monitoring::SAMPLE_INTERVAL.as_minutes();
    let first_bucket = steps.start / CHUNK_STEPS;
    let last_bucket = (steps.end - 1) / CHUNK_STEPS;
    for bucket in first_bucket..=last_bucket {
        let b_start = bucket * CHUNK_STEPS;
        let b_end = b_start + CHUNK_STEPS;
        let lo = steps.start.max(b_start);
        let hi = steps.end.min(b_end);
        let chunk = event_chunk(cache, mon, dataset, device, bucket);
        let Chunk::Events(e) = &*chunk else { continue };
        if lo == b_start && hi == b_end {
            e.events.iter().for_each(&mut f);
        } else {
            // Events fire only at sampled instants, so a step-range filter
            // is exact.
            for ev in &e.events {
                let s = ev.time.minutes() / step_len;
                if s >= lo && s < hi {
                    f(ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{
        ComponentKind, Fault, FaultKind, FaultScope, Severity, SimDuration, Team, Topology,
        TopologyConfig,
    };
    use monitoring::MonitoringConfig;

    fn topo() -> Topology {
        Topology::build(TopologyConfig {
            dcs: 1,
            clusters_per_dc: 1,
            racks_per_cluster: 2,
            servers_per_rack: 2,
            vms_per_server: 1,
            aggs_per_cluster: 1,
            cores_per_dc: 1,
            slbs_per_cluster: 1,
        })
    }

    fn fault(topo: &Topology) -> Fault {
        let tor = topo.by_name("tor-0.c0.dc0").unwrap().id;
        let cluster = topo.by_name("c0.dc0").unwrap().id;
        Fault {
            id: 0,
            kind: FaultKind::TorFailure,
            owner: Team::PhyNet,
            scope: FaultScope::Devices {
                devices: vec![tor],
                cluster,
            },
            start: SimTime::from_hours(100),
            duration: SimDuration::hours(6),
            severity: Severity::Sev2,
            upgrade_related: false,
        }
    }

    fn stats_via(
        cache: Option<&FeatCache>,
        mon: &MonitoringSystem,
        dataset: Dataset,
        device: ComponentId,
        window: (SimTime, SimTime),
    ) -> [f64; 11] {
        let mut pool = PoolStats::new();
        accumulate_series(cache, mon, dataset, device, window, &mut pool);
        let mut out = [0.0; 11];
        pool.write_stats(&mut out);
        out
    }

    #[test]
    fn cached_and_uncached_stats_are_bit_identical() {
        let topo = topo();
        let faults = vec![fault(&topo)];
        let mon = MonitoringSystem::new(&topo, &faults, MonitoringConfig::default());
        let srv = topo.by_name("srv-0.c0.dc0").unwrap().id;
        let cache = FeatCache::new(1 << 20);
        let tiny = FeatCache::new(1); // evicts everything immediately
        for start_min in [0u64, 3, 5, 599, 6000, 6003] {
            let w = (
                SimTime(start_min),
                SimTime(start_min) + SimDuration::hours(2),
            );
            let plain = stats_via(None, &mon, Dataset::PingStats, srv, w);
            let cold = stats_via(Some(&cache), &mon, Dataset::PingStats, srv, w);
            let warm = stats_via(Some(&cache), &mon, Dataset::PingStats, srv, w);
            let bypass = stats_via(Some(&tiny), &mon, Dataset::PingStats, srv, w);
            assert_eq!(plain, cold, "cold differs at {start_min}");
            assert_eq!(plain, warm, "warm differs at {start_min}");
            assert_eq!(plain, bypass, "bypass differs at {start_min}");
        }
        assert!(cache.stats().hits > 0, "second pass must hit");
    }

    #[test]
    fn pool_merge_matches_flat_computation() {
        // A window spanning ragged edges and full buckets must agree with
        // the flat series pooled directly.
        let topo = topo();
        let mon = MonitoringSystem::new(&topo, &[], MonitoringConfig::default());
        let srv = topo.by_name("srv-0.c0.dc0").unwrap().id;
        let w = (SimTime(35), SimTime(35) + SimDuration::hours(3));
        // Temperature is class-tagged, so chunks hold baseline-normalized
        // samples; normalize the flat reference the same way.
        let mut flat = mon.series(Dataset::Temperature, srv, w).unwrap();
        let (b_mean, b_sd) = Dataset::Temperature.baseline();
        for v in &mut flat {
            *v = (*v - b_mean) / b_sd;
        }
        let mut pool = PoolStats::new();
        accumulate_series(None, &mon, Dataset::Temperature, srv, w, &mut pool);
        assert_eq!(pool.count() as usize, flat.len());
        let mut merged_mean = 0.0;
        for &v in &flat {
            merged_mean += v;
        }
        merged_mean /= flat.len() as f64;
        let mut out = [0.0; 11];
        pool.write_stats(&mut out);
        assert!((out[0] - merged_mean).abs() < 1e-9);
        let mut sorted = flat.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(out[2], sorted[0]);
        assert_eq!(out[3], *sorted.last().unwrap());
        // Exact percentiles: selection over the pooled parts must equal
        // interpolation on the flat sort, bit for bit.
        for (slot, q) in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99]
            .iter()
            .enumerate()
        {
            let rank = (sorted.len() - 1) as f64 * q;
            let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
            let frac = rank - lo as f64;
            let expect = sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
            assert_eq!(out[4 + slot], expect, "percentile q={q}");
        }
    }

    #[test]
    fn events_match_window_query() {
        let topo = topo();
        let faults = vec![fault(&topo)];
        let mon = MonitoringSystem::new(&topo, &faults, MonitoringConfig::default());
        let tor = topo.by_name("tor-0.c0.dc0").unwrap().id;
        let cache = FeatCache::new(1 << 20);
        for start_h in [0u64, 99, 100, 103] {
            let w = (
                SimTime::from_hours(start_h),
                SimTime::from_hours(start_h) + SimDuration::hours(2),
            );
            let direct = mon.events(Dataset::SnmpSyslog, tor, w);
            for c in [None, Some(&cache)] {
                let mut seen = Vec::new();
                for_each_event(c, &mon, Dataset::SnmpSyslog, tor, w, |e| seen.push(*e));
                assert_eq!(seen, direct, "mode {:?} start {start_h}", c.is_some());
            }
        }
    }

    #[test]
    fn lru_evicts_oldest_and_counts_bytes() {
        let topo = topo();
        let mon = MonitoringSystem::new(&topo, &[], MonitoringConfig::default());
        let srv = topo.by_name("srv-0.c0.dc0").unwrap().id;
        // Room for roughly two series chunks (12 samples ≈ 96+192 bytes).
        let cache = FeatCache::new(600);
        for bucket in 0..4 {
            let _ = series_chunk(Some(&cache), &mon, Dataset::PingStats, srv, bucket);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 4);
        assert!(s.evictions >= 2, "evictions {}", s.evictions);
        assert!(s.bytes <= 600, "bytes {}", s.bytes);
        // Most-recent bucket is still resident (hit); oldest is not.
        let _ = series_chunk(Some(&cache), &mon, Dataset::PingStats, srv, 3);
        assert_eq!(cache.stats().hits, 1);
        let _ = series_chunk(Some(&cache), &mon, Dataset::PingStats, srv, 0);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn capacity_zero_is_pure_passthrough() {
        let topo = topo();
        let mon = MonitoringSystem::new(&topo, &[], MonitoringConfig::default());
        let srv = topo.by_name("srv-0.c0.dc0").unwrap().id;
        let cache = FeatCache::new(0);
        for _ in 0..3 {
            let _ = series_chunk(Some(&cache), &mon, Dataset::PingStats, srv, 7);
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.chunks, s.bytes), (0, 3, 0, 0));
    }

    #[test]
    fn different_epochs_do_not_collide() {
        let topo = topo();
        let faults = vec![fault(&topo)];
        let mon_a = MonitoringSystem::new(&topo, &[], MonitoringConfig::default());
        let mon_b = MonitoringSystem::new(&topo, &faults, MonitoringConfig::default());
        assert_ne!(mon_a.epoch(), mon_b.epoch());
        let srv = topo.by_name("srv-0.c0.dc0").unwrap().id;
        let cache = FeatCache::new(1 << 20);
        let w = (SimTime::from_hours(101), SimTime::from_hours(103));
        let a = stats_via(Some(&cache), &mon_a, Dataset::PingStats, srv, w);
        let b = stats_via(Some(&cache), &mon_b, Dataset::PingStats, srv, w);
        // The faulty world shifts the series; a shared cache with epoch
        // keying must not serve stale healthy chunks.
        assert_ne!(a, b);
        assert_eq!(b, stats_via(None, &mon_b, Dataset::PingStats, srv, w));
    }

    #[test]
    fn device_means_pool_via_mean_accessor() {
        let topo = topo();
        let mon = MonitoringSystem::new(&topo, &[], MonitoringConfig::default());
        let w = (SimTime::from_hours(10), SimTime::from_hours(12));
        for c in topo.components() {
            if c.kind != ComponentKind::Server {
                continue;
            }
            let mut pool = PoolStats::new();
            accumulate_series(None, &mon, Dataset::CpuUsage, c.id, w, &mut pool);
            let mut flat = mon.series(Dataset::CpuUsage, c.id, w).unwrap();
            let (b_mean, b_sd) = Dataset::CpuUsage.baseline();
            for v in &mut flat {
                *v = (*v - b_mean) / b_sd;
            }
            let mut sum = 0.0;
            for &v in &flat {
                sum += v;
            }
            let m = pool.mean().unwrap();
            assert!((m - sum / flat.len() as f64).abs() < 1e-12);
        }
    }
}
