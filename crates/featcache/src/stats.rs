//! Fused single-pass statistics kernels shared by the cached
//! ([`crate::PoolStats`]) and uncached (`scout::features::write_ts_stats`)
//! featurization paths.
//!
//! The paper's §5.2.1 feature blocks reduce every telemetry pool to the
//! same 11 statistics: mean, std, min, max, and seven percentiles. Before
//! this module existed each caller had its own loop — `featcache`
//! finalized from merged `sum/sumsq` aggregates while `scout` re-walked
//! the samples with a two-pass variance and a `partial_cmp` sort — so
//! "cached and uncached agree bit-for-bit" rested on two independent
//! implementations happening to round identically. Now there is exactly
//! one kernel: [`Moments`] is the single-pass accumulator (one loop for
//! sum, sum of squares, min, and max), and [`finalize_stats`] is the
//! single finalizer (one clamp site for the variance, one percentile
//! selection). Both paths compute identical bits by construction.
//!
//! # Numeric edges (the defined behavior)
//!
//! - **Variance cancellation.** Std comes from `sumsq/n − mean²`, which
//!   for large-magnitude, low-variance pools (e.g. samples near `1e9`)
//!   can land fractionally *negative* from rounding; `sqrt` would then
//!   poison the feature vector with `NaN`. [`finalize_stats`] clamps the
//!   variance at `0.0` — the only clamp in the codebase, so every caller
//!   inherits it.
//! - **`NaN` samples.** Percentile selection runs on [`ord_key`]s, whose
//!   integer order embeds `total_cmp`'s total order: negative `NaN`s sort
//!   below `−inf`, positive `NaN`s above `+inf`, and the result is a
//!   deterministic function of the sample *multiset* — never of input
//!   order (the old `partial_cmp`-unwrap-to-`Equal` sort gave
//!   order-dependent output). Mean and std propagate `NaN` through the
//!   sums; min/max use `f64::min`/`f64::max`, which ignore `NaN`s (an
//!   all-`NaN` pool reports `min = +inf`, `max = −inf`).
//! - **Empty pools** write all zeros.

/// Number of statistics written per pool: mean, std, min, max, and the
/// seven [`QUANTILES`].
pub const N_STATS: usize = 11;

/// The percentile levels of §5.2.1, in output order.
pub const QUANTILES: [f64; 7] = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99];

/// Mergeable single-pass moment aggregates: everything except the
/// percentiles, accumulated in one loop.
#[derive(Debug, Clone, Copy)]
pub struct Moments {
    /// Samples accumulated.
    pub count: u64,
    /// Sequential sum in input order.
    pub sum: f64,
    /// Sequential sum of squares in input order.
    pub sumsq: f64,
    /// Minimum (`+inf` when empty; `NaN`s are ignored).
    pub min: f64,
    /// Maximum (`−inf` when empty; `NaN`s are ignored).
    pub max: f64,
}

impl Default for Moments {
    fn default() -> Moments {
        Moments {
            count: 0,
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Moments {
    /// The fused kernel: one pass over `samples` accumulating all four
    /// aggregates in input order. The fold order (`sum`, then `sumsq`,
    /// then `min`/`max`, per sample) is the contract every caller —
    /// chunk building, ragged-edge folds, uncached featurization — must
    /// share for bit-identity.
    #[inline]
    pub fn of(samples: &[f64]) -> Moments {
        let mut m = Moments::default();
        for &v in samples {
            m.sum += v;
            m.sumsq += v * v;
            m.min = m.min.min(v);
            m.max = m.max.max(v);
        }
        m.count = samples.len() as u64;
        m
    }
}

/// Map an f64 to a u64 whose integer order is exactly `total_cmp`'s total
/// order (sign-magnitude: flip everything for negatives, set the sign bit
/// for non-negatives). [`key_value`] inverts it bit-exactly.
#[inline]
pub fn ord_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`ord_key`].
#[inline]
pub fn key_value(k: u64) -> f64 {
    f64::from_bits(if k & (1 << 63) != 0 {
        k & !(1 << 63)
    } else {
        !k
    })
}

/// Run `f` with this thread's reusable u64 key buffer (cleared, with
/// room for `capacity` keys). The per-feature-block call sites are the
/// predict hot path; sharing one scratch allocation per thread keeps
/// them alloc-free.
pub fn with_scratch<R>(capacity: usize, f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<u64>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|scratch| {
        let mut buf = scratch.borrow_mut();
        buf.clear();
        buf.reserve(capacity);
        f(&mut buf)
    })
}

/// Write the 11 §5.2.1 statistics into `out[..N_STATS]` from moment
/// aggregates plus the pool's samples as (unsorted is fine) [`ord_key`]s.
/// `keys` is scrambled in place by selection. Zeros when the pool is
/// empty. This is the **only** variance clamp site — see the module docs.
pub fn finalize_stats(m: &Moments, keys: &mut [u64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), N_STATS);
    debug_assert_eq!(keys.len() as u64, m.count);
    if m.count == 0 {
        out.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let n = m.count as f64;
    let mean = m.sum / n;
    let var = (m.sumsq / n - mean * mean).max(0.0);

    // Pull out just the ranks the quantiles read. The element at a given
    // rank of an f64 multiset is unique under `total_cmp`'s total order,
    // so selection returns bit-for-bit the same values as fully sorting
    // the pool — every percentile bit stays independent of cache state —
    // in O(n) instead of O(n log n). Integer comparisons on the keys
    // branch-predict and vectorize where f64 `total_cmp` does not.
    let last = keys.len() - 1;
    let mut ranks = [0usize; 14];
    for (i, q) in QUANTILES.iter().enumerate() {
        let rank = last as f64 * q;
        ranks[2 * i] = rank.floor() as usize;
        ranks[2 * i + 1] = rank.ceil() as usize;
    }
    ranks.sort_unstable();
    let mut picked: Vec<(usize, f64)> = Vec::with_capacity(ranks.len());
    multiselect(keys, 0, &ranks, &mut picked);
    let at = |rank: usize| {
        picked
            .iter()
            .find(|&&(p, _)| p == rank)
            .expect("rank was selected")
            .1
    };
    let pct = |q: f64| {
        let rank = last as f64 * q;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        let (lo_v, hi_v) = (at(lo), at(hi));
        lo_v + (hi_v - lo_v) * frac
    };
    out[0] = mean;
    out[1] = var.sqrt();
    out[2] = m.min;
    out[3] = m.max;
    for (slot, q) in QUANTILES.iter().enumerate() {
        out[4 + slot] = pct(*q);
    }
}

/// The uncached path's entry point: fuse [`Moments::of`] over `samples`
/// and finalize into `out[..N_STATS]` through the shared kernel, so a
/// flat slice of samples and a cache-merged pool of the same multiset
/// produce identical bits.
pub fn fill_ts_stats(samples: &[f64], out: &mut [f64]) {
    let m = Moments::of(samples);
    with_scratch(samples.len(), |buf| {
        buf.extend(samples.iter().map(|&v| ord_key(v)));
        finalize_stats(&m, buf, out);
    });
}

/// Select every rank in `ranks` (absolute, ascending, duplicates allowed;
/// `buf` holds ranks `[base, base + buf.len())`) and push `(rank, value)`
/// pairs. Recursing on the median rank first means each partition pass
/// only ever scans the sub-range still containing unresolved ranks —
/// `O(n log k)` with the same bit-exact results as any other selection
/// order, since rank values in a multiset are unique.
fn multiselect(buf: &mut [u64], base: usize, ranks: &[usize], out: &mut Vec<(usize, f64)>) {
    let Some(&r) = ranks.get(ranks.len() / 2) else {
        return;
    };
    let idx = r - base;
    let (left, k, right) = buf.select_nth_unstable(idx);
    let v = key_value(*k);
    let mid = ranks.len() / 2;
    // Duplicate ranks around the median resolve here without re-selecting.
    let lo_end = ranks[..mid].partition_point(|&p| p < r);
    for _ in lo_end..=mid {
        out.push((r, v));
    }
    let hi_start = mid + 1 + ranks[mid + 1..].partition_point(|&p| p <= r);
    for _ in mid + 1..hi_start {
        out.push((r, v));
    }
    multiselect(left, base, &ranks[..lo_end], out);
    let right_base = base + idx + 1;
    multiselect(right, right_base, &ranks[hi_start..], out);
}
