//! Property tests for the fused stats kernel (`featcache::stats`).
//!
//! The reference implementation here is deliberately *pass-split*: one
//! loop for the sum, one for the sum of squares, one for min/max, and a
//! full `total_cmp` sort for the percentiles. The fused single-pass
//! kernel must reproduce it **bit for bit** — same accumulation order,
//! same interpolation arithmetic, same NaN handling — because the warm
//! cache path and the cold recompute path both call the fused kernel and
//! train/serve parity depends on every caller agreeing on every bit.

use featcache::stats::{fill_ts_stats, N_STATS, QUANTILES};
use proptest::prelude::*;

/// Pass-split reference: the numerics the fused kernel must match.
fn reference_stats(samples: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; N_STATS];
    if samples.is_empty() {
        return out;
    }
    let n = samples.len() as f64;
    let mut sum = 0.0;
    for &v in samples {
        sum += v;
    }
    let mut sumsq = 0.0;
    for &v in samples {
        sumsq += v * v;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in samples {
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / n;
    // The single clamp site, mirrored: cancellation in sumsq/n - mean^2
    // can go slightly negative for near-constant pools.
    let var = (sumsq / n - mean * mean).max(0.0);
    out[0] = mean;
    out[1] = var.sqrt();
    out[2] = min;
    out[3] = max;
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let last = sorted.len() - 1;
    for (i, q) in QUANTILES.iter().enumerate() {
        let rank = last as f64 * q;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        let (lo_v, hi_v) = (sorted[lo], sorted[hi]);
        out[4 + i] = lo_v + (hi_v - lo_v) * frac;
    }
    out
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn fused(samples: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; N_STATS];
    fill_ts_stats(samples, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fused kernel == pass-split reference, bit for bit, on ordinary
    /// finite pools.
    #[test]
    fn fused_matches_two_pass_reference(
        samples in proptest::collection::vec(-1e6f64..1e6, 0..200)
    ) {
        prop_assert_eq!(bits(&reference_stats(&samples)), bits(&fused(&samples)));
    }

    /// Constant pools: variance cancellation must clamp, never NaN. The
    /// std is non-negative, finite, and tiny relative to the level.
    #[test]
    fn constant_pools_have_clamped_tiny_std(
        v in -1e9f64..1e9,
        n in 1usize..200
    ) {
        let samples = vec![v; n];
        let got = fused(&samples);
        prop_assert_eq!(bits(&reference_stats(&samples)), bits(&got));
        prop_assert!(got[1].is_finite() && got[1] >= 0.0, "std {}", got[1]);
        prop_assert!(got[1] <= v.abs().max(1.0) * 1e-6, "std {} too large for constant pool", got[1]);
        // Every percentile of a constant pool is the constant itself.
        for s in &got[4..] {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    /// Large-offset pools (values near 1e9 with small spread) are the
    /// worst case for the sumsq formula: the clamp must keep sqrt off
    /// negative inputs so no stat is ever NaN.
    #[test]
    fn large_offset_pools_never_produce_nan(
        spread in proptest::collection::vec(0.0f64..1e-3, 2..100),
        offset in 1e9f64..2e9
    ) {
        let samples: Vec<f64> = spread.iter().map(|d| offset + d).collect();
        let got = fused(&samples);
        prop_assert_eq!(bits(&reference_stats(&samples)), bits(&got));
        prop_assert!(got.iter().all(|s| !s.is_nan()), "NaN in {:?}", got);
        prop_assert!(got[1] >= 0.0);
    }

    /// NaN samples: the kernel's defined behavior is deterministic — the
    /// same multiset of samples yields the same min/max/percentile bits
    /// regardless of input order, because ranks come from a canonical
    /// total order (the old partial_cmp-unwrap-to-Equal sort gave NaNs an
    /// order-dependent position). Mean and std are sequential folds, so
    /// only *they* may legitimately vary in the last ulp with order.
    #[test]
    fn nan_pools_have_order_independent_percentiles(
        mut samples in proptest::collection::vec((-100.0f64..100.0, 0u8..5), 1..60)
            .prop_map(|pairs: Vec<(f64, u8)>| {
                // ~1 in 5 samples poisoned to NaN.
                pairs
                    .into_iter()
                    .map(|(v, tag)| if tag == 0 { f64::NAN } else { v })
                    .collect::<Vec<f64>>()
            }),
        rot in 0usize..60
    ) {
        let baseline = fused(&samples);
        prop_assert_eq!(bits(&reference_stats(&samples)), bits(&baseline));
        let len = samples.len();
        samples.rotate_left(rot % len);
        samples.reverse();
        let shuffled = fused(&samples);
        prop_assert_eq!(bits(&baseline[2..]), bits(&shuffled[2..]));
    }
}

/// A single sample has exactly zero variance — not an epsilon, the bit
/// pattern of `0.0` — and every percentile equals the sample.
#[test]
fn single_sample_std_is_exactly_zero() {
    for v in [0.0, -3.5, 1e9, f64::MIN_POSITIVE] {
        let got = fused(&[v]);
        assert_eq!(got[0].to_bits(), v.to_bits());
        assert_eq!(got[1].to_bits(), 0.0f64.to_bits());
        assert_eq!(got[2].to_bits(), v.to_bits());
        assert_eq!(got[3].to_bits(), v.to_bits());
        for s in &got[4..] {
            assert_eq!(s.to_bits(), v.to_bits());
        }
    }
}

/// Empty pools are all-zeros by definition (documented in the kernel).
#[test]
fn empty_pool_is_all_zeros() {
    assert_eq!(fused(&[]), vec![0.0; N_STATS]);
}
