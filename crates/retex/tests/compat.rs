//! A compatibility table: (pattern, haystack, expected leftmost match)
//! triples checked against the engine, mirroring how mainstream engines
//! (RE2, rust-regex) behave on the same inputs.

use retex::Regex;

/// `None` = no match; `Some((start, text))` = leftmost match.
#[allow(clippy::type_complexity)] // a literal test table, not an API
const CASES: &[(&str, &str, Option<(usize, &str)>)] = &[
    // Literals and escapes
    ("abc", "xabcy", Some((1, "abc"))),
    ("abc", "ab", None),
    (r"a\.b", "a.b", Some((0, "a.b"))),
    (r"a\.b", "axb", None),
    (r"\d\d", "a42b", Some((1, "42"))),
    (r"\D+", "12ab34", Some((2, "ab"))),
    (r"\w+", "!!hello!!", Some((2, "hello"))),
    (r"\W", "ab c", Some((2, " "))),
    (r"\s\S", "a b", Some((1, " b"))),
    // Dot
    ("a.c", "abc", Some((0, "abc"))),
    ("a.c", "a\nc", None),
    ("...", "ab", None),
    // Classes
    ("[abc]+", "zzabccbazz", Some((2, "abccba"))),
    ("[^abc]+", "abcxyzabc", Some((3, "xyz"))),
    ("[a-z0-9]+", "A_ab01_Z", Some((2, "ab01"))),
    ("[-a]", "b-c", Some((1, "-"))),
    ("[]a]", "]x", Some((0, "]"))),
    (r"[\d]+", "ab123", Some((2, "123"))),
    // Anchors
    ("^ab", "abab", Some((0, "ab"))),
    ("ab$", "abab", Some((2, "ab"))),
    ("^ab$", "ab", Some((0, "ab"))),
    ("^ab$", "xab", None),
    // Repetition
    ("a*", "b", Some((0, ""))),
    ("a+", "b", None),
    ("ba*", "bbaaa", Some((0, "b"))),
    ("ba+", "bbaaa", Some((1, "baaa"))),
    ("a?b", "b", Some((0, "b"))),
    ("a?b", "ab", Some((0, "ab"))),
    ("a{2}", "aaa", Some((0, "aa"))),
    ("a{2,}", "aaaa", Some((0, "aaaa"))),
    ("a{1,2}", "aaa", Some((0, "aa"))),
    ("(ab){2,3}", "ababab", Some((0, "ababab"))),
    // Laziness
    ("a+?", "aaa", Some((0, "a"))),
    ("a{1,3}?", "aaa", Some((0, "a"))),
    ("<.*?>", "<a><b>", Some((0, "<a>"))),
    // Alternation
    ("cat|dog", "hotdog", Some((3, "dog"))),
    ("cat|dog", "catalog", Some((0, "cat"))),
    ("a|ab", "ab", Some((0, "a"))), // leftmost-first
    ("(a|b)*c", "ababc", Some((0, "ababc"))),
    // Word boundaries
    (r"\bcat\b", "a cat sat", Some((2, "cat"))),
    (r"\bcat\b", "concatenate", None),
    (r"\Bcat\B", "concatenate", Some((3, "cat"))),
    // Groups
    ("(a)(b)(c)", "abc", Some((0, "abc"))),
    ("(?:ab)+", "ababx", Some((0, "abab"))),
    // Realistic component patterns
    (
        r"\bvm-\d+\.c\d+\.dc\d+\b",
        "see vm-12.c3.dc0 now",
        Some((4, "vm-12.c3.dc0")),
    ),
    (r"(tor|agg)-\d+", "agg-7 down", Some((0, "agg-7"))),
    (r"c\d+\.dc\d+", "tor-1.c10.dc3", Some((6, "c10.dc3"))),
];

#[test]
fn compatibility_table() {
    for &(pattern, haystack, expected) in CASES {
        let re = Regex::new(pattern)
            .unwrap_or_else(|e| panic!("pattern '{pattern}' failed to parse: {e}"));
        let found = re.find(haystack).map(|m| (m.start, m.text()));
        assert_eq!(
            found, expected,
            "pattern '{pattern}' on '{haystack}': got {found:?}, want {expected:?}"
        );
    }
}

#[test]
fn is_match_agrees_with_find() {
    for &(pattern, haystack, expected) in CASES {
        let re = Regex::new(pattern).unwrap();
        assert_eq!(
            re.is_match(haystack),
            expected.is_some(),
            "pattern '{pattern}'"
        );
    }
}

#[test]
fn captures_group_zero_agrees_with_find() {
    for &(pattern, haystack, _) in CASES {
        let re = Regex::new(pattern).unwrap();
        let f = re.find(haystack).map(|m| (m.start, m.end));
        let c = re
            .captures(haystack)
            .and_then(|c| c.get(0).map(|m| (m.start, m.end)));
        assert_eq!(f, c, "pattern '{pattern}' on '{haystack}'");
    }
}
