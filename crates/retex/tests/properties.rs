//! Property-based tests for the regex engine.

use proptest::prelude::*;
use retex::Regex;

proptest! {
    /// Any literal string (escaped) must match itself.
    #[test]
    fn literal_matches_itself(s in "[a-zA-Z0-9 _.-]{0,40}") {
        let escaped: String = s.chars().flat_map(|c| {
            if c == '.' || c == '-' { vec!['\\', c] } else { vec![c] }
        }).collect();
        let re = Regex::new(&escaped).unwrap();
        prop_assert!(re.is_match(&s));
        let m = re.find(&s).unwrap();
        prop_assert_eq!(m.text(), s.as_str());
    }

    /// find_iter yields non-overlapping, strictly ordered matches.
    #[test]
    fn find_iter_is_ordered(hay in "[ab0-9 ]{0,60}") {
        let re = Regex::new(r"\d+").unwrap();
        let mut last_end = 0usize;
        for m in re.find_iter(&hay) {
            prop_assert!(m.start >= last_end);
            prop_assert!(m.end > m.start);
            prop_assert!(m.text().chars().all(|c| c.is_ascii_digit()));
            last_end = m.end;
        }
    }

    /// The digit class agrees with char::is_ascii_digit on every char.
    #[test]
    fn digit_class_agrees(c in any::<char>()) {
        let re = Regex::new(r"^\d$").unwrap();
        prop_assert_eq!(re.is_match(&c.to_string()), c.is_ascii_digit() || c.is_numeric() && c.is_ascii());
    }

    /// A match of `find` is always a substring match under `is_match`.
    #[test]
    fn find_consistent_with_is_match(hay in "[a-c]{0,30}") {
        let re = Regex::new("ab+c?").unwrap();
        prop_assert_eq!(re.find(&hay).is_some(), re.is_match(&hay));
    }

    /// Star never fails: `x*` matches every haystack (possibly empty match).
    #[test]
    fn star_always_matches(hay in ".{0,50}") {
        let re = Regex::new("x*").unwrap();
        prop_assert!(re.is_match(&hay));
    }

    /// Capture group 0 always equals the whole match.
    #[test]
    fn group_zero_is_whole_match(hay in "[a-z0-9.]{0,50}") {
        let re = Regex::new(r"([a-z]+)\.([0-9]+)").unwrap();
        if let Some(caps) = re.captures(&hay) {
            let whole = caps.get(0).unwrap();
            let m = re.find(&hay).unwrap();
            prop_assert_eq!(whole.start, m.start);
            prop_assert_eq!(whole.end, m.end);
        }
    }

    /// Matching never panics on arbitrary unicode haystacks.
    #[test]
    fn never_panics_on_unicode(hay in "\\PC{0,80}") {
        for pat in [r"\w+", r"\d{2,4}", "a.b", "^x|y$", r"\bz\b"] {
            let re = Regex::new(pat).unwrap();
            let _ = re.find(&hay);
            let _ = re.find_iter(&hay).count();
        }
    }

    /// Parser never panics on arbitrary pattern strings (errors are fine).
    #[test]
    fn parser_never_panics(pat in ".{0,40}") {
        let _ = Regex::new(&pat);
    }
}
