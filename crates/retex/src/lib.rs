//! `retex` — a small, self-contained regular-expression engine.
//!
//! The Scout configuration language (paper §5.1) is built around operator
//! supplied regular expressions (`let VM = <regex>;`, `EXCLUDE TITLE =
//! <regex>;`). Rather than pulling in an external engine, `retex` implements
//! the subset the framework needs from scratch:
//!
//! * literals, `.`, escapes (`\d \D \w \W \s \S`, punctuation escapes)
//! * character classes `[a-z0-9_]`, negated classes `[^ ...]`
//! * alternation `a|b`, grouping `(..)` and non-capturing `(?:..)`
//! * repetition `* + ?` and bounded `{m}`, `{m,}`, `{m,n}` (greedy and
//!   non-greedy via a trailing `?`)
//! * anchors `^` and `$`, word boundaries `\b` / `\B`
//! * capture groups with sub-match extraction
//!
//! The implementation is a classic Thompson construction executed by a Pike
//! virtual machine: patterns compile to a small instruction program and the
//! VM advances a breadth-first set of threads over the haystack, so matching
//! runs in `O(program × haystack)` with no pathological backtracking. That
//! linear worst case matters here: incident text is untrusted operator /
//! customer input and a Scout must never stall on it.
//!
//! # Example
//!
//! ```
//! use retex::Regex;
//!
//! let re = Regex::new(r"(vm-\d+)\.(c\d+)\.(dc\d+)").unwrap();
//! let caps = re.captures("reboot storm on vm-042.c10.dc3 continues").unwrap();
//! assert_eq!(caps.get(0).unwrap().text(), "vm-042.c10.dc3");
//! assert_eq!(caps.get(2).unwrap().text(), "c10");
//! ```

mod ast;
mod compiler;
mod parser;
mod vm;

pub use ast::{Ast, ClassItem};
pub use parser::ParseError;

use compiler::Program;

/// A compiled regular expression.
///
/// Construction parses and compiles the pattern once; matching never fails.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
    n_captures: usize,
}

/// A single match location within a haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    haystack: &'t str,
    /// Byte offset of the start of the match.
    pub start: usize,
    /// Byte offset one past the end of the match.
    pub end: usize,
}

impl<'t> Match<'t> {
    /// The matched text.
    pub fn text(&self) -> &'t str {
        &self.haystack[self.start..self.end]
    }

    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The set of capture-group matches produced by [`Regex::captures`].
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    haystack: &'t str,
    slots: Vec<Option<usize>>,
}

impl<'t> Captures<'t> {
    /// Group `i` (group 0 is the whole match). `None` if the group did not
    /// participate in the match.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let (s, e) = (*self.slots.get(2 * i)?, *self.slots.get(2 * i + 1)?);
        match (s, e) {
            (Some(start), Some(end)) => Some(Match {
                haystack: self.haystack,
                start,
                end,
            }),
            _ => None,
        }
    }

    /// Number of groups, including group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// True only for a degenerate captures object with no groups at all
    /// (cannot happen through the public API; group 0 always exists).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl Regex {
    /// Parse and compile `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        let ast = parser::parse(pattern)?;
        let (program, n_captures) = compiler::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
            n_captures,
        })
    }

    /// The original pattern string.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including the implicit group 0.
    pub fn capture_count(&self) -> usize {
        self.n_captures
    }

    /// Does the pattern match anywhere in `haystack`?
    pub fn is_match(&self, haystack: &str) -> bool {
        vm::search(&self.program, haystack, 0, self.n_captures).is_some()
    }

    /// Leftmost match, if any.
    pub fn find<'t>(&self, haystack: &'t str) -> Option<Match<'t>> {
        let slots = vm::search(&self.program, haystack, 0, self.n_captures)?;
        Some(Match {
            haystack,
            start: slots[0]?,
            end: slots[1]?,
        })
    }

    /// Leftmost match starting at or after byte offset `from`.
    pub fn find_at<'t>(&self, haystack: &'t str, from: usize) -> Option<Match<'t>> {
        let slots = vm::search(&self.program, haystack, from, self.n_captures)?;
        Some(Match {
            haystack,
            start: slots[0]?,
            end: slots[1]?,
        })
    }

    /// Iterator over all non-overlapping matches, left to right.
    pub fn find_iter<'r, 't>(&'r self, haystack: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    /// Capture groups for the leftmost match.
    pub fn captures<'t>(&self, haystack: &'t str) -> Option<Captures<'t>> {
        let slots = vm::search(&self.program, haystack, 0, self.n_captures)?;
        Some(Captures { haystack, slots })
    }

    /// Capture groups for the leftmost match at or after `from`.
    pub fn captures_at<'t>(&self, haystack: &'t str, from: usize) -> Option<Captures<'t>> {
        let slots = vm::search(&self.program, haystack, from, self.n_captures)?;
        Some(Captures { haystack, slots })
    }
}

/// Iterator returned by [`Regex::find_iter`].
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    haystack: &'t str,
    at: usize,
}

impl<'r, 't> Iterator for FindIter<'r, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = self.re.find_at(self.haystack, self.at)?;
        // Never yield the same empty position twice: step past it.
        self.at = if m.end == m.start {
            next_char_boundary(self.haystack, m.end)
        } else {
            m.end
        };
        Some(m)
    }
}

fn next_char_boundary(s: &str, i: usize) -> usize {
    let mut j = i + 1;
    while j < s.len() && !s.is_char_boundary(j) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("switch").unwrap();
        assert!(re.is_match("tor switch down"));
        assert!(!re.is_match("router down"));
    }

    #[test]
    fn leftmost_semantics() {
        let re = Regex::new("a+").unwrap();
        let m = re.find("bb aaa aa").unwrap();
        assert_eq!((m.start, m.end), (3, 6));
        assert_eq!(m.text(), "aaa");
    }

    #[test]
    fn greedy_vs_lazy() {
        let re = Regex::new("<.+>").unwrap();
        assert_eq!(re.find("<a><b>").unwrap().text(), "<a><b>");
        let re = Regex::new("<.+?>").unwrap();
        assert_eq!(re.find("<a><b>").unwrap().text(), "<a>");
    }

    #[test]
    fn classes_and_escapes() {
        let re = Regex::new(r"[a-f0-9]{4}").unwrap();
        assert_eq!(re.find("id=beef0").unwrap().text(), "beef");
        let re = Regex::new(r"\d+\.\d+").unwrap();
        assert_eq!(re.find("loss 0.25%").unwrap().text(), "0.25");
        let re = Regex::new(r"[^0-9]+").unwrap();
        assert_eq!(re.find("123abc456").unwrap().text(), "abc");
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^srv").unwrap();
        assert!(re.is_match("srv-1 down"));
        assert!(!re.is_match("on srv-1"));
        let re = Regex::new("down$").unwrap();
        assert!(re.is_match("srv-1 down"));
        assert!(!re.is_match("down now"));
        let re = Regex::new("^$").unwrap();
        assert!(re.is_match(""));
        assert!(!re.is_match("x"));
    }

    #[test]
    fn word_boundaries() {
        let re = Regex::new(r"\bdc\d+\b").unwrap();
        assert!(re.is_match("in dc3 now"));
        assert!(!re.is_match("abcdc3x"));
        let re = Regex::new(r"\Bx").unwrap();
        assert!(re.is_match("ax"));
        assert!(!re.is_match("x a"));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(tor|agg|core)-sw").unwrap();
        assert_eq!(re.find("agg-sw7").unwrap().text(), "agg-sw");
        let caps = re.captures("core-sw2").unwrap();
        assert_eq!(caps.get(1).unwrap().text(), "core");
    }

    #[test]
    fn bounded_repetition() {
        let re = Regex::new(r"a{2,3}").unwrap();
        assert!(!re.is_match("a"));
        assert_eq!(re.find("aaaa").unwrap().text(), "aaa");
        let re = Regex::new(r"(ab){2}").unwrap();
        assert!(re.is_match("xababy"));
        assert!(!re.is_match("xaby"));
        let re = Regex::new(r"\d{3,}").unwrap();
        assert!(re.is_match("1234"));
        assert!(!re.is_match("12"));
    }

    #[test]
    fn optional() {
        let re = Regex::new(r"colou?r").unwrap();
        assert!(re.is_match("color"));
        assert!(re.is_match("colour"));
    }

    #[test]
    fn capture_groups_nested() {
        let re = Regex::new(r"((vm|srv)-(\d+))\.(c\d+)").unwrap();
        let caps = re.captures("host srv-17.c4 unreachable").unwrap();
        assert_eq!(caps.get(0).unwrap().text(), "srv-17.c4");
        assert_eq!(caps.get(1).unwrap().text(), "srv-17");
        assert_eq!(caps.get(2).unwrap().text(), "srv");
        assert_eq!(caps.get(3).unwrap().text(), "17");
        assert_eq!(caps.get(4).unwrap().text(), "c4");
    }

    #[test]
    fn non_capturing_group() {
        let re = Regex::new(r"(?:vm|srv)-(\d+)").unwrap();
        let caps = re.captures("vm-9").unwrap();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps.get(1).unwrap().text(), "9");
    }

    #[test]
    fn unmatched_group_is_none() {
        let re = Regex::new(r"(a)|(b)").unwrap();
        let caps = re.captures("b").unwrap();
        assert!(caps.get(1).is_none());
        assert_eq!(caps.get(2).unwrap().text(), "b");
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<&str> = re.find_iter("12 abc 345 x 6").map(|m| m.text()).collect();
        assert_eq!(all, vec!["12", "345", "6"]);
    }

    #[test]
    fn find_iter_empty_matches_progress() {
        let re = Regex::new(r"a*").unwrap();
        // Must terminate and visit every position once.
        let n = re.find_iter("bab").count();
        assert_eq!(n, 4); // "", "a", "", ""
    }

    #[test]
    fn dot_does_not_match_newline() {
        let re = Regex::new("a.b").unwrap();
        assert!(re.is_match("axb"));
        assert!(!re.is_match("a\nb"));
    }

    #[test]
    fn unicode_haystack_is_safe() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.find("温度 42 度").unwrap().text(), "42");
        let re = Regex::new(".").unwrap();
        assert_eq!(re.find("é").unwrap().text(), "é");
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"\").is_err());
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a+)+$ against "aaaa...b" explodes under backtracking engines;
        // the Pike VM must finish promptly.
        let re = Regex::new("(a+)+$").unwrap();
        let hay = format!("{}b", "a".repeat(2000));
        assert!(!re.is_match(&hay));
    }

    #[test]
    fn component_extraction_patterns() {
        // The exact shapes the PhyNet Scout config uses (paper §5.1).
        let vm = Regex::new(r"\bvm-\d+\.c\d+\.dc\d+\b").unwrap();
        let cluster = Regex::new(r"\bc\d+\.dc\d+\b").unwrap();
        let text = "VM vm-3.c10.dc3 in cluster c10.dc3 cannot reach storage cluster c4.dc1";
        assert_eq!(vm.find_iter(text).count(), 1);
        let clusters: Vec<&str> = cluster.find_iter(text).map(|m| m.text()).collect();
        assert_eq!(clusters, vec!["c10.dc3", "c10.dc3", "c4.dc1"]);
    }
}
