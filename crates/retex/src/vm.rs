//! Pike VM: executes a compiled [`Program`] over a haystack, tracking
//! capture slots per thread. Runs in `O(len(program) * len(haystack))`.

use crate::compiler::{Assertion, Inst, Program};

type Slots = Vec<Option<usize>>;

struct ThreadList {
    /// Program counters, in priority order.
    dense: Vec<(usize, Slots)>,
    /// sparse[pc] == generation marks pc as already present.
    sparse: Vec<u64>,
    generation: u64,
}

impl ThreadList {
    fn new(n: usize) -> ThreadList {
        ThreadList {
            dense: Vec::with_capacity(n),
            sparse: vec![0; n],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.generation += 1;
    }

    fn contains(&self, pc: usize) -> bool {
        self.sparse[pc] == self.generation
    }

    fn mark(&mut self, pc: usize) {
        self.sparse[pc] = self.generation;
    }
}

/// Search for the leftmost match of `prog` in `haystack` starting at byte
/// offset `from`. Returns the capture slots (2 per group) on success.
pub fn search(prog: &Program, haystack: &str, from: usize, n_captures: usize) -> Option<Slots> {
    debug_assert!(
        haystack.is_char_boundary(from),
        "search offset must be a char boundary"
    );
    let n_slots = 2 * n_captures;
    let mut clist = ThreadList::new(prog.len());
    let mut nlist = ThreadList::new(prog.len());
    let mut best: Option<Slots> = None;

    // Iterate over char boundaries from `from` to len (inclusive: the final
    // position handles end-of-input assertions and empty matches).
    let mut pos = from;
    let bytes = haystack.as_bytes();
    clist.clear();
    loop {
        let ch = haystack[pos..].chars().next();
        // Unanchored search: seed a new lowest-priority thread at this
        // position unless a match has already been found (leftmost wins).
        if best.is_none() {
            let mut slots = vec![None; n_slots];
            add_thread(prog, 0, pos, haystack, &mut clist, &mut slots);
        }
        if clist.dense.is_empty() && best.is_some() {
            break;
        }

        nlist.clear();
        let mut i = 0;
        while i < clist.dense.len() {
            let (pc, slots) = {
                let (pc, ref slots) = clist.dense[i];
                (pc, slots.clone())
            };
            match &prog[pc] {
                Inst::Char(pred) => {
                    if let Some(c) = ch {
                        if pred.matches(c) {
                            let next_pos = pos + c.len_utf8();
                            let mut s = slots;
                            add_thread(prog, pc + 1, next_pos, haystack, &mut nlist, &mut s);
                        }
                    }
                }
                Inst::Match => {
                    // Highest-priority match at this step: record and cut all
                    // lower-priority threads (they cannot produce a better
                    // match under leftmost-greedy semantics).
                    best = Some(slots);
                    break;
                }
                // Epsilon instructions were resolved in add_thread.
                Inst::Jmp(_) | Inst::Split { .. } | Inst::Save(_) | Inst::Assert(_) => {
                    unreachable!("epsilon instruction in thread list")
                }
            }
            i += 1;
        }

        std::mem::swap(&mut clist, &mut nlist);
        if pos >= bytes.len() {
            break;
        }
        pos += ch.map_or(1, char::len_utf8);
    }
    best
}

/// Follow epsilon transitions from `pc`, adding reachable Char/Match
/// instructions to `list` in priority order.
fn add_thread(
    prog: &Program,
    pc: usize,
    pos: usize,
    haystack: &str,
    list: &mut ThreadList,
    slots: &mut Slots,
) {
    if list.contains(pc) {
        return;
    }
    list.mark(pc);
    match &prog[pc] {
        Inst::Jmp(t) => add_thread(prog, *t, pos, haystack, list, slots),
        Inst::Split { primary, secondary } => {
            add_thread(prog, *primary, pos, haystack, list, slots);
            add_thread(prog, *secondary, pos, haystack, list, slots);
        }
        Inst::Save(slot) => {
            let old = slots[*slot];
            slots[*slot] = Some(pos);
            add_thread(prog, pc + 1, pos, haystack, list, slots);
            slots[*slot] = old;
        }
        Inst::Assert(a) => {
            if assertion_holds(*a, haystack, pos) {
                add_thread(prog, pc + 1, pos, haystack, list, slots);
            }
        }
        Inst::Char(_) | Inst::Match => {
            list.dense.push((pc, slots.clone()));
        }
    }
}

fn assertion_holds(a: Assertion, haystack: &str, pos: usize) -> bool {
    match a {
        Assertion::Start => pos == 0,
        Assertion::End => pos == haystack.len(),
        Assertion::WordBoundary => is_word_boundary(haystack, pos),
        Assertion::NotWordBoundary => !is_word_boundary(haystack, pos),
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_word_boundary(haystack: &str, pos: usize) -> bool {
    let before = haystack[..pos]
        .chars()
        .next_back()
        .map(is_word_char)
        .unwrap_or(false);
    let after = haystack[pos..]
        .chars()
        .next()
        .map(is_word_char)
        .unwrap_or(false);
    before != after
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn alternation_priority_is_left_to_right() {
        // Leftmost-first semantics: "a|ab" on "ab" matches "a".
        let re = Regex::new("a|ab").unwrap();
        assert_eq!(re.find("ab").unwrap().text(), "a");
    }

    #[test]
    fn greedy_star_takes_longest() {
        let re = Regex::new("a*").unwrap();
        assert_eq!(re.find("aaab").unwrap().text(), "aaa");
    }

    #[test]
    fn saves_do_not_leak_between_branches() {
        let re = Regex::new(r"(a)b|(a)c").unwrap();
        let caps = re.captures("ac").unwrap();
        assert!(caps.get(1).is_none());
        assert_eq!(caps.get(2).unwrap().text(), "a");
    }

    #[test]
    fn repeated_group_captures_last_iteration() {
        let re = Regex::new(r"(a|b)+").unwrap();
        let caps = re.captures("abab").unwrap();
        assert_eq!(caps.get(0).unwrap().text(), "abab");
        assert_eq!(caps.get(1).unwrap().text(), "b");
    }

    #[test]
    fn leftmost_beats_longer_later() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.find("a1 22222").unwrap().text(), "1");
    }

    #[test]
    fn anchored_search_from_offset() {
        let re = Regex::new("^b").unwrap();
        assert!(
            re.find_at("ab", 1).is_none(),
            "^ anchors to haystack start, not offset"
        );
    }
}
