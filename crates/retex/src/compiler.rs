//! Thompson construction: [`Ast`] → instruction [`Program`].

use crate::ast::{Ast, ClassItem};

/// A single VM instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match one character satisfying the predicate, advance input.
    Char(CharPred),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork: try `primary` first (higher priority), then `secondary`.
    Split { primary: usize, secondary: usize },
    /// Record the current input position into capture slot `slot`.
    Save(usize),
    /// Zero-width assertion.
    Assert(Assertion),
    /// Accept.
    Match,
}

/// Character predicate for [`Inst::Char`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CharPred {
    /// A single literal character.
    Literal(char),
    /// Any character except `\n`.
    AnyNoNewline,
    /// A (possibly negated) set of items.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
}

impl CharPred {
    /// Evaluate the predicate against `c`.
    pub fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Literal(l) => *l == c,
            CharPred::AnyNoNewline => c != '\n',
            CharPred::Class { negated, items } => {
                let inside = items.iter().any(|it| it.contains(c));
                inside != *negated
            }
        }
    }
}

/// Zero-width assertions for [`Inst::Assert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// `^`
    Start,
    /// `$`
    End,
    /// `\b`
    WordBoundary,
    /// `\B`
    NotWordBoundary,
}

/// A compiled instruction sequence.
pub type Program = Vec<Inst>;

/// Compile `ast`; returns the program and the number of capture groups
/// (including the implicit group 0).
pub fn compile(ast: &Ast) -> (Program, usize) {
    let mut c = Compiler {
        prog: Vec::new(),
        max_group: 0,
    };
    // Group 0 wraps the whole pattern.
    c.prog.push(Inst::Save(0));
    c.emit(ast);
    c.prog.push(Inst::Save(1));
    c.prog.push(Inst::Match);
    let n_captures = c.max_group as usize + 1;
    (c.prog, n_captures)
}

struct Compiler {
    prog: Program,
    max_group: u32,
}

impl Compiler {
    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(ch) => self.prog.push(Inst::Char(CharPred::Literal(*ch))),
            Ast::AnyChar => self.prog.push(Inst::Char(CharPred::AnyNoNewline)),
            Ast::Class { negated, items } => self.prog.push(Inst::Char(CharPred::Class {
                negated: *negated,
                items: items.clone(),
            })),
            Ast::StartAnchor => self.prog.push(Inst::Assert(Assertion::Start)),
            Ast::EndAnchor => self.prog.push(Inst::Assert(Assertion::End)),
            Ast::WordBoundary(true) => self.prog.push(Inst::Assert(Assertion::WordBoundary)),
            Ast::WordBoundary(false) => self.prog.push(Inst::Assert(Assertion::NotWordBoundary)),
            Ast::Concat(parts) => parts.iter().for_each(|p| self.emit(p)),
            Ast::Alternate(parts) => self.emit_alternate(parts),
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.emit_repeat(node, *min, *max, *greedy),
            Ast::Group { index, node } => {
                self.max_group = self.max_group.max(*index);
                self.prog.push(Inst::Save(2 * *index as usize));
                self.emit(node);
                self.prog.push(Inst::Save(2 * *index as usize + 1));
            }
            Ast::NonCapturing(node) => self.emit(node),
        }
    }

    fn emit_alternate(&mut self, parts: &[Ast]) {
        debug_assert!(parts.len() >= 2);
        // split b1, (split b2, (... bn))  with jumps to a common end.
        let mut jmp_fixups = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let last = i == parts.len() - 1;
            if !last {
                let split_at = self.prog.len();
                self.prog.push(Inst::Split {
                    primary: 0,
                    secondary: 0,
                });
                let b_start = self.prog.len();
                self.emit(part);
                let jmp_at = self.prog.len();
                self.prog.push(Inst::Jmp(0));
                jmp_fixups.push(jmp_at);
                let next = self.prog.len();
                self.prog[split_at] = Inst::Split {
                    primary: b_start,
                    secondary: next,
                };
            } else {
                self.emit(part);
            }
        }
        let end = self.prog.len();
        for at in jmp_fixups {
            self.prog[at] = Inst::Jmp(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory copies.
        for _ in 0..min {
            self.emit(node);
        }
        match max {
            Some(max) => {
                // Optional copies: (node (node (...)?)?)?
                let mut split_fixups = Vec::new();
                for _ in min..max {
                    let split_at = self.prog.len();
                    self.prog.push(Inst::Split {
                        primary: 0,
                        secondary: 0,
                    });
                    split_fixups.push(split_at);
                    let body = self.prog.len();
                    self.emit(node);
                    let take_first = greedy;
                    // fix later; record body start in primary temporarily
                    self.prog[split_at] = Inst::Split {
                        primary: if take_first { body } else { usize::MAX },
                        secondary: if take_first { usize::MAX } else { body },
                    };
                }
                let end = self.prog.len();
                for at in split_fixups {
                    if let Inst::Split { primary, secondary } = &mut self.prog[at] {
                        if *primary == usize::MAX {
                            *primary = end;
                        }
                        if *secondary == usize::MAX {
                            *secondary = end;
                        }
                    }
                }
            }
            None => {
                // Kleene star over the remaining copies:
                //   L1: split L2, L3   (greedy: body first)
                //   L2: node; jmp L1
                //   L3:
                let l1 = self.prog.len();
                self.prog.push(Inst::Split {
                    primary: 0,
                    secondary: 0,
                });
                let l2 = self.prog.len();
                self.emit(node);
                self.prog.push(Inst::Jmp(l1));
                let l3 = self.prog.len();
                self.prog[l1] = if greedy {
                    Inst::Split {
                        primary: l2,
                        secondary: l3,
                    }
                } else {
                    Inst::Split {
                        primary: l3,
                        secondary: l2,
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat).unwrap()).0
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        assert_eq!(
            p,
            vec![
                Inst::Save(0),
                Inst::Char(CharPred::Literal('a')),
                Inst::Char(CharPred::Literal('b')),
                Inst::Save(1),
                Inst::Match,
            ]
        );
    }

    #[test]
    fn star_loops_back() {
        let p = prog("a*");
        // Save0, Split, Char, Jmp, Save1, Match
        assert!(matches!(
            p[1],
            Inst::Split {
                primary: 2,
                secondary: 4
            }
        ));
        assert!(matches!(p[3], Inst::Jmp(1)));
    }

    #[test]
    fn capture_count() {
        let (_, n) = compile(&parse("(a)(b(c))").unwrap());
        assert_eq!(n, 4);
        let (_, n) = compile(&parse("abc").unwrap());
        assert_eq!(n, 1);
    }

    #[test]
    fn char_pred_semantics() {
        assert!(CharPred::AnyNoNewline.matches('x'));
        assert!(!CharPred::AnyNoNewline.matches('\n'));
        let cls = CharPred::Class {
            negated: true,
            items: vec![ClassItem::Range('0', '9')],
        };
        assert!(cls.matches('a'));
        assert!(!cls.matches('5'));
    }
}
