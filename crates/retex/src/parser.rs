//! Recursive-descent pattern parser.
//!
//! Grammar (standard POSIX-ish precedence):
//!
//! ```text
//! alternation = concat ('|' concat)*
//! concat      = repeat*
//! repeat      = atom (('*'|'+'|'?'|'{m,n}') '?'?)*
//! atom        = literal | '.' | class | group | anchor | escape
//! ```

use crate::ast::{Ast, ClassItem};
use std::fmt;

/// An error produced while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the pattern where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
        next_group: 1,
    };
    let ast = p.alternation()?;
    if p.pos < p.chars.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: u32,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        let position = self.chars.get(self.pos).map_or_else(
            || self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()),
            |&(i, _)| i,
        );
        ParseError {
            message: msg.to_string(),
            position,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.atom()?;
        loop {
            let (min, max) = match self.peek() {
                Some('*') => {
                    self.bump();
                    (0, None)
                }
                Some('+') => {
                    self.bump();
                    (1, None)
                }
                Some('?') => {
                    self.bump();
                    (0, Some(1))
                }
                // try_bounded consumes through '}' on success.
                Some('{') => match self.try_bounded()? {
                    Some(mm) => mm,
                    None => break, // literal '{'
                },
                _ => break,
            };
            if matches!(
                node,
                Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_) | Ast::Empty
            ) {
                return Err(self.err("repetition operator applied to empty-width atom"));
            }
            let greedy = !self.eat('?');
            node = Ast::Repeat {
                node: Box::new(node),
                min,
                max,
                greedy,
            };
        }
        Ok(node)
    }

    /// Parse `{m}`, `{m,}` or `{m,n}` starting at `{`. Returns `Ok(None)` and
    /// restores the position when the braces are not a valid bound (the `{`
    /// is then treated as a literal, matching common engine behaviour).
    fn try_bounded(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseError> {
        let start = self.pos;
        self.bump(); // '{'
        let min = self.number();
        let min = match min {
            Some(n) => n,
            None => {
                self.pos = start;
                return Ok(None);
            }
        };
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                match self.number() {
                    Some(n) => Some(n),
                    None => {
                        self.pos = start;
                        return Ok(None);
                    }
                }
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            self.pos = start;
            return Ok(None);
        }
        if let Some(mx) = max {
            if mx < min {
                self.pos = start;
                return Err(self.err("invalid repetition bound: max < min"));
            }
            if mx > 1000 {
                self.pos = start;
                return Err(self.err("repetition bound too large (limit 1000)"));
            }
        }
        if min > 1000 {
            self.pos = start;
            return Err(self.err("repetition bound too large (limit 1000)"));
        }
        Ok(Some((min, max)))
    }

    fn number(&mut self) -> Option<u32> {
        let mut saw = false;
        let mut n: u32 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                saw = true;
                n = n.saturating_mul(10).saturating_add(d);
                self.bump();
            } else {
                break;
            }
        }
        saw.then_some(n)
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Err(self.err("expected an atom")),
            Some('(') => self.group(),
            Some('[') => self.class(),
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => {
                let _ = c;
                Err(self.err("repetition operator with nothing to repeat"))
            }
            Some(')') => Err(self.err("unbalanced ')'")),
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    fn group(&mut self) -> Result<Ast, ParseError> {
        self.bump(); // '('
        let non_capturing = if self.peek() == Some('?') {
            let save = self.pos;
            self.bump();
            if self.eat(':') {
                true
            } else {
                self.pos = save;
                return Err(self.err("unsupported group flag (only (?: is supported)"));
            }
        } else {
            false
        };
        let index = if non_capturing {
            0
        } else {
            let i = self.next_group;
            self.next_group += 1;
            i
        };
        let inner = self.alternation()?;
        if !self.eat(')') {
            return Err(self.err("unclosed group"));
        }
        Ok(if non_capturing {
            Ast::NonCapturing(Box::new(inner))
        } else {
            Ast::Group {
                index,
                node: Box::new(inner),
            }
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        self.bump(); // '['
        let negated = self.eat('^');
        let mut items = Vec::new();
        // A ']' immediately after '[' or '[^' is a literal.
        if self.eat(']') {
            items.push(ClassItem::Char(']'));
        }
        loop {
            match self.peek() {
                None => return Err(self.err("unclosed character class")),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    match self.bump() {
                        None => return Err(self.err("dangling escape in class")),
                        Some('d') => items.extend(DIGIT),
                        Some('w') => items.extend(WORD),
                        Some('s') => items.extend(SPACE),
                        Some('n') => items.push(ClassItem::Char('\n')),
                        Some('t') => items.push(ClassItem::Char('\t')),
                        Some('r') => items.push(ClassItem::Char('\r')),
                        Some(c) => items.push(ClassItem::Char(c)),
                    }
                }
                Some(lo) => {
                    self.bump();
                    // Range? Look for '-' not followed by ']'.
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
                    {
                        self.bump(); // '-'
                        let hi = match self.bump() {
                            None => return Err(self.err("unterminated range in class")),
                            Some('\\') => match self.bump() {
                                Some('n') => '\n',
                                Some('t') => '\t',
                                Some('r') => '\r',
                                Some(c) => c,
                                None => return Err(self.err("dangling escape in class")),
                            },
                            Some(c) => c,
                        };
                        if hi < lo {
                            return Err(self.err("invalid range in class (hi < lo)"));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Char(lo));
                    }
                }
            }
        }
        if items.is_empty() && !negated {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class { negated, items })
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        self.bump(); // '\\'
        match self.bump() {
            None => Err(self.err("dangling escape at end of pattern")),
            Some('d') => Ok(Ast::Class {
                negated: false,
                items: DIGIT.to_vec(),
            }),
            Some('D') => Ok(Ast::Class {
                negated: true,
                items: DIGIT.to_vec(),
            }),
            Some('w') => Ok(Ast::Class {
                negated: false,
                items: WORD.to_vec(),
            }),
            Some('W') => Ok(Ast::Class {
                negated: true,
                items: WORD.to_vec(),
            }),
            Some('s') => Ok(Ast::Class {
                negated: false,
                items: SPACE.to_vec(),
            }),
            Some('S') => Ok(Ast::Class {
                negated: true,
                items: SPACE.to_vec(),
            }),
            Some('b') => Ok(Ast::WordBoundary(true)),
            Some('B') => Ok(Ast::WordBoundary(false)),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('r') => Ok(Ast::Literal('\r')),
            Some('0') => Ok(Ast::Literal('\0')),
            Some(c) if c.is_ascii_alphanumeric() => Err(self.err("unsupported escape sequence")),
            Some(c) => Ok(Ast::Literal(c)),
        }
    }
}

const DIGIT: [ClassItem; 1] = [ClassItem::Range('0', '9')];
const WORD: [ClassItem; 4] = [
    ClassItem::Range('a', 'z'),
    ClassItem::Range('A', 'Z'),
    ClassItem::Range('0', '9'),
    ClassItem::Char('_'),
];
const SPACE: [ClassItem; 5] = [
    ClassItem::Char(' '),
    ClassItem::Char('\t'),
    ClassItem::Char('\n'),
    ClassItem::Char('\r'),
    ClassItem::Char('\u{000B}'),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_concat_and_alt() {
        let ast = parse("ab|c").unwrap();
        match ast {
            Ast::Alternate(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn group_indices_are_in_order() {
        let ast = parse("(a)(?:b)(c)").unwrap();
        let mut indices = Vec::new();
        fn walk(a: &Ast, out: &mut Vec<u32>) {
            match a {
                Ast::Group { index, node } => {
                    out.push(*index);
                    walk(node, out);
                }
                Ast::NonCapturing(n) => walk(n, out),
                Ast::Concat(v) | Ast::Alternate(v) => v.iter().for_each(|n| walk(n, out)),
                Ast::Repeat { node, .. } => walk(node, out),
                _ => {}
            }
        }
        walk(&ast, &mut indices);
        assert_eq!(indices, vec![1, 2]);
    }

    #[test]
    fn literal_brace_when_not_a_bound() {
        assert!(parse("a{foo}").is_ok());
        assert!(parse("{").is_ok());
    }

    #[test]
    fn rejects_bad_bounds() {
        assert!(parse("a{3,1}").is_err());
        assert!(parse("a{5000}").is_err());
    }

    #[test]
    fn class_edge_cases() {
        assert!(parse("[]]").is_ok()); // literal ']'
        assert!(parse("[a-]").is_ok()); // trailing '-' is literal
        assert!(parse("[z-a]").is_err());
        assert!(parse("[]").is_err()); // empty positive class
    }

    #[test]
    fn error_positions_point_into_pattern() {
        let e = parse("ab(").unwrap_err();
        assert_eq!(e.position, 3);
        let e = parse("a{3,1}").unwrap_err();
        assert_eq!(e.position, 1);
    }

    #[test]
    fn rejects_unknown_flags_and_escapes() {
        assert!(parse("(?P<x>a)").is_err());
        assert!(parse(r"\q").is_err());
    }
}
