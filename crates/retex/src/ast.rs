//! Abstract syntax for parsed patterns.

/// One element of a character class: a single char or an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character, e.g. the `_` in `[a-z_]`.
    Char(char),
    /// An inclusive range, e.g. `a-z`.
    Range(char, char),
}

impl ClassItem {
    /// Does this item contain `c`?
    pub fn contains(&self, c: char) -> bool {
        match *self {
            ClassItem::Char(x) => x == c,
            ClassItem::Range(lo, hi) => lo <= c && c <= hi,
        }
    }
}

/// Parsed pattern tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A (possibly negated) character class.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// `^` — start of haystack.
    StartAnchor,
    /// `$` — end of haystack.
    EndAnchor,
    /// `\b` (value `true`) or `\B` (value `false`).
    WordBoundary(bool),
    /// Concatenation of sub-patterns.
    Concat(Vec<Ast>),
    /// Alternation `a|b|c`.
    Alternate(Vec<Ast>),
    /// Repetition. `max == None` means unbounded.
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    },
    /// Capturing group; `index` is 1-based.
    Group { index: u32, node: Box<Ast> },
    /// Non-capturing group `(?: .. )`.
    NonCapturing(Box<Ast>),
}

impl Ast {
    /// Can this node match the empty string? Used by the compiler to guard
    /// against infinite loops on `(a*)*`-style patterns.
    pub fn matches_empty(&self) -> bool {
        match self {
            Ast::Empty | Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_) => true,
            Ast::Literal(_) | Ast::AnyChar | Ast::Class { .. } => false,
            Ast::Concat(parts) => parts.iter().all(Ast::matches_empty),
            Ast::Alternate(parts) => parts.iter().any(Ast::matches_empty),
            Ast::Repeat { node, min, .. } => *min == 0 || node.matches_empty(),
            Ast::Group { node, .. } | Ast::NonCapturing(node) => node.matches_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_contains() {
        assert!(ClassItem::Char('x').contains('x'));
        assert!(!ClassItem::Char('x').contains('y'));
        assert!(ClassItem::Range('a', 'f').contains('c'));
        assert!(!ClassItem::Range('a', 'f').contains('g'));
    }

    #[test]
    fn matches_empty() {
        assert!(Ast::Empty.matches_empty());
        assert!(!Ast::Literal('a').matches_empty());
        assert!(Ast::Repeat {
            node: Box::new(Ast::Literal('a')),
            min: 0,
            max: None,
            greedy: true
        }
        .matches_empty());
        assert!(!Ast::Concat(vec![Ast::Literal('a'), Ast::Empty]).matches_empty());
        assert!(Ast::Alternate(vec![Ast::Literal('a'), Ast::Empty]).matches_empty());
    }
}
