//! Closed-loop acceptance tests for the continual-learning controller.
//!
//! These replay `cloudsim`'s scripted drift (PFC storms appear after day
//! 150, overheat faults retire after day 120) against a model frozen
//! before the drift, with the controller in the loop:
//!
//! * `drift_recovery_beats_frozen_model` — the frozen model degrades,
//!   the controller detects it, retrains, shadow-gates, promotes, and
//!   the adaptive chain's post-promotion windowed MCC beats the frozen
//!   model's on the same replayed traffic.
//! * `poisoned_candidate_is_rejected_and_rolled_back` — a candidate
//!   trained on corrupted labels loses the shadow gate; an operator
//!   force-publishing such a model is caught by probation and rolled
//!   back automatically.
//! * `replay_is_bit_identical_across_reruns_and_worker_counts` — the
//!   whole loop is seed-deterministic: identical event logs and
//!   bit-identical MCCs across reruns and worker-pool sizes.

use cloudsim::{SimDuration, SimTime, Team};
use incident::{Incident, Workload, WorkloadConfig};
use lifecycle::{Feedback, LifecycleConfig, LifecycleController, LifecycleEvent};
use ml::forest::ForestConfig;
use ml::metrics::Confusion;
use monitoring::{MonitoringConfig, MonitoringSystem};
use scout::{Example, Scout, ScoutBuildConfig, ScoutConfig};
use serve::ModelRegistry;
use std::sync::{Arc, OnceLock};

/// Day the frozen model's training data ends (well before the drift).
const FROZEN_TRAIN_DAYS: u64 = 100;
/// Replay horizon: long enough to cover both drift switches plus the
/// detection + probation lag.
const HORIZON_DAYS: u64 = 240;

/// The drifting world every test replays.
fn drift_world() -> Arc<Workload> {
    static WORLD: OnceLock<Arc<Workload>> = OnceLock::new();
    WORLD
        .get_or_init(|| {
            let mut config = WorkloadConfig {
                seed: 11,
                ..WorkloadConfig::default()
            };
            config.faults.faults_per_day = 2.5;
            config.faults.horizon = SimDuration::days(HORIZON_DAYS);
            config.faults.drift = true;
            Arc::new(Workload::generate(config))
        })
        .clone()
}

fn build_config() -> ScoutBuildConfig {
    ScoutBuildConfig {
        forest: ForestConfig {
            n_trees: 8,
            ..ForestConfig::default()
        },
        cluster_train_cap: 10,
        ..ScoutBuildConfig::default()
    }
}

fn monitoring(world: &Workload) -> MonitoringSystem<'_> {
    MonitoringSystem::new(&world.topology, &world.faults, MonitoringConfig::default())
}

fn is_phynet(incident: &Incident) -> bool {
    incident.owner == Team::PhyNet
}

/// Train a PhyNet Scout on the incidents created before `before`,
/// labeling each with `label`.
fn train_on_prefix(world: &Workload, before: SimTime, label: fn(&Incident) -> bool) -> Scout {
    let mon = monitoring(world);
    let examples: Vec<Example> = world
        .incidents
        .iter()
        .filter(|i| i.created_at < before)
        .map(|i| Example::new(i.text(), i.created_at, label(i)))
        .collect();
    let config = ScoutConfig::phynet();
    let build = build_config();
    let corpus = Scout::prepare(&config, &build, &examples, &mon);
    let train = corpus.trainable_indices();
    Scout::train_prepared(config, build, &corpus, &train, &mon)
}

/// The frozen pre-drift model, cached as text so every test (and every
/// determinism rerun) mints byte-identical copies.
fn frozen_model_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let world = drift_world();
        train_on_prefix(&world, SimTime::from_days(FROZEN_TRAIN_DAYS), is_phynet).to_text()
    })
}

fn frozen_scout() -> Scout {
    Scout::from_text(frozen_model_text()).expect("cached model text round-trips")
}

fn lifecycle_config() -> LifecycleConfig {
    LifecycleConfig::new("PhyNet", ScoutConfig::phynet(), build_config())
}

/// Everything a drift replay produces that the tests assert on.
struct Replay {
    log: Vec<String>,
    first_promotion: Option<SimTime>,
    final_version: Option<u64>,
    /// Post-promotion confusion of whatever the registry was serving
    /// (the adaptive chain), from the controller's own feedback stream.
    adaptive: Confusion,
    /// The frozen model replayed over the same post-promotion span.
    frozen: Confusion,
}

/// Serve the drifting world with the controller in the loop: predict
/// each tick-interval chunk with the *current* registry model, feed the
/// ground truth back, tick. After the replay, score the frozen model on
/// the same post-promotion traffic for the comparison.
fn drift_replay(workers: Option<Arc<pool::Pool>>) -> Replay {
    let world = drift_world();
    let mon = monitoring(&world);
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register("PhyNet", frozen_scout(), "frozen-pre-drift")
        .expect("fresh registry has no pins");
    let mut controller = LifecycleController::new(lifecycle_config(), Arc::clone(&registry));
    if let Some(w) = workers {
        controller = controller.with_workers(w);
    }

    let end = SimTime::from_days(HORIZON_DAYS);
    let tick = SimDuration::days(5);
    let mut chunk_start = SimTime::from_days(FROZEN_TRAIN_DAYS);
    let mut ordinal = 0u64;
    while chunk_start < end {
        let chunk_end = SimTime((chunk_start.0 + tick.as_minutes()).min(end.0));
        let entry = registry.get("PhyNet").expect("model always registered");
        let batch: Vec<&Incident> = world
            .incidents
            .iter()
            .filter(|i| i.created_at >= chunk_start && i.created_at < chunk_end)
            .collect();
        let texts: Vec<String> = batch.iter().map(|i| i.text()).collect();
        let inputs: Vec<(&str, SimTime)> = texts
            .iter()
            .zip(&batch)
            .map(|(t, i)| (t.as_str(), i.created_at))
            .collect();
        let preds = entry
            .scout
            .predict_many_cached(&inputs, &mon, Some(&entry.feat_cache));
        for ((incident, text), pred) in batch.iter().zip(texts).zip(&preds) {
            ordinal += 1;
            controller.ingest(Feedback {
                incident: ordinal,
                text,
                time: incident.created_at,
                predicted: pred.says_responsible(),
                label: is_phynet(incident),
                model_version: entry.version,
            });
        }
        controller.tick(chunk_end, &mon);
        chunk_start = chunk_end;
    }

    let first_promotion = controller.events().iter().find_map(|e| match e {
        LifecycleEvent::Promoted { at, .. } => Some(*at),
        _ => None,
    });

    let mut frozen_conf = Confusion::default();
    let mut adaptive = Confusion::default();
    if let Some(promoted_at) = first_promotion {
        adaptive = controller.store().confusion_in(promoted_at, end);
        let frozen = frozen_scout();
        let batch: Vec<&Incident> = world
            .incidents
            .iter()
            .filter(|i| i.created_at >= promoted_at && i.created_at < end)
            .collect();
        let texts: Vec<String> = batch.iter().map(|i| i.text()).collect();
        let inputs: Vec<(&str, SimTime)> = texts
            .iter()
            .zip(&batch)
            .map(|(t, i)| (t.as_str(), i.created_at))
            .collect();
        for (incident, pred) in batch
            .iter()
            .zip(frozen.predict_many_cached(&inputs, &mon, None))
        {
            frozen_conf.record(is_phynet(incident), pred.says_responsible());
        }
    }

    Replay {
        log: controller.event_log(),
        first_promotion,
        final_version: registry.version_of("PhyNet"),
        adaptive,
        frozen: frozen_conf,
    }
}

#[test]
fn drift_recovery_beats_frozen_model() {
    let replay = drift_replay(None);
    let log = replay.log.join("\n");

    assert!(
        replay.log.iter().any(|l| l.contains("drift armed")),
        "the monitor must arm on the drift:\n{log}"
    );
    assert!(
        replay.log.iter().any(|l| l.contains("retrain started")),
        "an armed monitor must launch a retrain:\n{log}"
    );
    let promoted_at = replay
        .first_promotion
        .unwrap_or_else(|| panic!("a retrained candidate must win promotion:\n{log}"));
    assert!(
        promoted_at > SimTime::from_days(FROZEN_TRAIN_DAYS),
        "promotion happens during the replay, not before it"
    );
    assert!(
        replay.final_version.unwrap_or(0) > 1,
        "the registry must end up serving a promoted (post-v1) model:\n{log}"
    );

    // The point of the subsystem: on the same replayed traffic, the
    // adaptive chain must beat the model nobody retrained.
    let adaptive = replay.adaptive.mcc();
    let frozen = replay.frozen.mcc();
    assert!(
        replay.adaptive.total() >= 30,
        "need a meaningful post-promotion sample, got {}",
        replay.adaptive.total()
    );
    assert!(
        adaptive > frozen,
        "post-promotion MCC: adaptive {adaptive:.3} must beat frozen {frozen:.3}\n{log}"
    );
}

#[test]
fn replay_is_bit_identical_across_reruns_and_worker_counts() {
    let single = drift_replay(Some(Arc::new(pool::Pool::new(1))));
    let wide = drift_replay(Some(Arc::new(pool::Pool::new(3))));
    let wide_again = drift_replay(Some(Arc::new(pool::Pool::new(3))));

    assert_eq!(
        single.log, wide.log,
        "event log must not depend on worker count"
    );
    assert_eq!(wide.log, wide_again.log, "event log must be rerun-stable");
    assert_eq!(single.final_version, wide.final_version);
    assert_eq!(
        single.adaptive.mcc().to_bits(),
        wide.adaptive.mcc().to_bits(),
        "adaptive MCC must be bit-identical across worker counts"
    );
    assert_eq!(
        wide.adaptive.mcc().to_bits(),
        wide_again.adaptive.mcc().to_bits(),
        "adaptive MCC must be bit-identical across reruns"
    );
    assert_eq!(single.frozen.mcc().to_bits(), wide.frozen.mcc().to_bits());
}

/// Feed `days` of synthetic feedback built from real incidents:
/// `label` chooses the recorded ground truth, `predicted` what the
/// "serving model" supposedly said, `version` who said it.
fn feed_span(
    controller: &mut LifecycleController,
    world: &Workload,
    days: std::ops::Range<u64>,
    version: u64,
    label: fn(&Incident) -> bool,
    predicted: fn(&Incident) -> bool,
    ordinal: &mut u64,
) {
    let from = SimTime::from_days(days.start);
    let to = SimTime::from_days(days.end);
    for incident in world
        .incidents
        .iter()
        .filter(|i| i.created_at >= from && i.created_at < to)
    {
        *ordinal += 1;
        controller.ingest(Feedback {
            incident: *ordinal,
            text: incident.text(),
            time: incident.created_at,
            predicted: predicted(incident),
            label: label(incident),
            model_version: version,
        });
    }
}

#[test]
fn poisoned_candidate_is_rejected_and_rolled_back() {
    let world = drift_world();
    let mon = monitoring(&world);
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry
        .register("PhyNet", frozen_scout(), "good-v1")
        .expect("fresh registry has no pins");
    let mut controller = LifecycleController::new(lifecycle_config(), Arc::clone(&registry));
    let mut ordinal = 0u64;

    // Phase 1 — a poisoned candidate loses the shadow gate. Days 0..50
    // carry label-flipped ground truth (a corrupted feedback pipeline):
    // every record looks mistaken, so the monitor arms, and the retrain
    // trains on garbage. Days 50..60 (the shadow window, held out of
    // training) carry the real labels, so the healthy live model wins
    // the out-of-sample comparison and the candidate is rejected.
    let flipped: fn(&Incident) -> bool = |i| !is_phynet(i);
    feed_span(
        &mut controller,
        &world,
        0..50,
        v1,
        flipped,
        is_phynet,
        &mut ordinal,
    );
    feed_span(
        &mut controller,
        &world,
        50..60,
        v1,
        is_phynet,
        flipped,
        &mut ordinal,
    );
    let events = controller.tick(SimTime::from_days(60), &mon);
    let log = controller.event_log().join("\n");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, LifecycleEvent::DriftArmed { .. })),
        "corrupted stream must arm the monitor:\n{log}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, LifecycleEvent::CandidateRejected { .. })),
        "the poisoned candidate must lose the shadow gate:\n{log}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, LifecycleEvent::Promoted { .. })),
        "nothing may be promoted:\n{log}"
    );
    assert_eq!(
        registry.version_of("PhyNet"),
        Some(v1),
        "the live model must be untouched by a rejected candidate"
    );

    // Phase 2 — an operator force-publishes a poisoned model anyway.
    // First a healthy trailing window (v1 predicting correctly) sets a
    // high probation baseline…
    feed_span(
        &mut controller,
        &world,
        60..70,
        v1,
        is_phynet,
        is_phynet,
        &mut ordinal,
    );
    let poisoned = train_on_prefix(&world, SimTime::from_days(50), |i| !is_phynet(i));
    let v2 = registry
        .register("PhyNet", poisoned, "operator-override")
        .expect("no pins");
    let events = controller.tick(SimTime::from_days(70), &mon);
    assert!(
        events.iter().any(
            |e| matches!(e, LifecycleEvent::ExternalPromotion { version, .. } if *version == v2)
        ),
        "the controller must notice the out-of-band publish: {events:?}"
    );

    // …then the poisoned model's own served feedback is consistently
    // wrong, so probation ends in an automatic rollback to v1.
    feed_span(
        &mut controller,
        &world,
        70..81,
        v2,
        is_phynet,
        flipped,
        &mut ordinal,
    );
    let events = controller.tick(SimTime::from_days(81), &mon);
    let log = controller.event_log().join("\n");
    assert!(
        events.iter().any(
            |e| matches!(e, LifecycleEvent::RolledBack { from, to, .. } if *from == v2 && *to == v1)
        ),
        "probation must roll the poisoned model back:\n{log}"
    );
    assert_eq!(
        registry.version_of("PhyNet"),
        Some(v1),
        "serving must be restored to the good model"
    );
    let restored = registry.get("PhyNet").expect("model registered");
    assert_eq!(restored.source, "good-v1", "rollback restores the v1 entry");
}
