//! Online continual learning for Scouts: the loop that keeps deployed
//! models matched to a drifting incident mix.
//!
//! The paper's Scouts only stay useful because they are retrained as
//! incidents change (§7.3, Fig. 10: sliding-window retraining recovers
//! from "new type of incident" drift that a frozen model never does).
//! The workspace already had both endpoints of that loop — offline
//! retrain policies (`scout::retrain`) and atomic hot-swap
//! (`serve::ModelRegistry`) — but a human had to notice drift, retrain
//! by hand, and `POST /v1/models/reload`. This crate closes the loop:
//!
//! 1. **Feedback ingestion** ([`feedback`]) — ground-truth resolving
//!    teams (from `POST /v1/feedback`) become a bounded, time-ordered
//!    labeled stream.
//! 2. **Drift detection** ([`drift`]) — windowed error rates over that
//!    stream, with change-point detection (`ml::cpd`) for step changes
//!    and a sustained-degradation threshold for slow burns.
//! 3. **Background retrain** ([`controller`]) — reuses the
//!    `scout::retrain` window/weighting policies (sliding window, age
//!    half-life, mistake boost) on the accumulated stream.
//! 4. **Shadow evaluation + gated promotion** ([`shadow`],
//!    [`controller`]) — the candidate must beat the live model
//!    out-of-sample before it is published, and a post-promotion
//!    probation window auto-rolls back regressions.
//!
//! The whole controller is simulation-clock-driven and seed-
//! deterministic: replaying the same feedback stream and tick schedule
//! produces a bit-identical event log at any worker count (see
//! `tests/e2e.rs`). [`handle::LifecycleHandle`] bridges the controller
//! onto a live serve engine as a [`serve::FeedbackHook`] without
//! touching serving latency.

pub mod controller;
pub mod drift;
pub mod feedback;
pub mod handle;
pub mod shadow;

pub use controller::{LifecycleConfig, LifecycleController, LifecycleEvent};
pub use drift::{DriftConfig, DriftMonitor, DriftVerdict};
pub use feedback::{Feedback, FeedbackStore, DEFAULT_STORE_CAP};
pub use handle::LifecycleHandle;
pub use shadow::{evaluate as shadow_evaluate, ShadowReport};
