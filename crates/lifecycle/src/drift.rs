//! Drift detection over the labeled feedback stream.
//!
//! The paper's Fig. 10 motivates the whole subsystem: a frozen model's
//! error rate climbs when the incident mix changes ("new type of
//! incident" drift), and only retraining recovers it. This monitor
//! turns that observation into a deterministic trigger. The stream is
//! bucketed by simulation time; each sufficiently-populated bucket
//! contributes one error-rate sample, and a retrain is **armed** when
//! either
//!
//! * change-point detection (`ml::cpd`, the fast deterministic variant)
//!   finds a shift whose post-change mean error exceeds the pre-change
//!   mean by `regress_margin` — the "step change" signature of a new
//!   fault family; or
//! * the last `sustain_buckets` buckets all sit at or above
//!   `degrade_error` — the "slow burn" a single change-point can miss.
//!
//! Everything here is pure arithmetic over the store — no RNG, no wall
//! clock — so replaying the same stream yields the same alarms.

use crate::feedback::FeedbackStore;
use cloudsim::{SimDuration, SimTime};

/// Drift monitor tuning.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Bucket width for the error-rate series.
    pub bucket: SimDuration,
    /// Buckets with fewer labeled examples than this contribute no
    /// sample (a quiet day is not evidence of health or drift).
    pub min_bucket_samples: usize,
    /// How many trailing buckets must sit at/above `degrade_error` for
    /// the sustained trigger.
    pub sustain_buckets: usize,
    /// Error rate treated as "degraded" by the sustained trigger.
    pub degrade_error: f64,
    /// Minimum post-minus-pre mean error increase for a change point to
    /// arm a retrain.
    pub regress_margin: f64,
    /// Minimum CPD segment length (buckets).
    pub cpd_min_segment: usize,
    /// CPD detection threshold (z-normalized; see `ml::cpd`).
    pub cpd_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            bucket: SimDuration::days(5),
            min_bucket_samples: 5,
            sustain_buckets: 3,
            degrade_error: 0.35,
            regress_margin: 0.10,
            cpd_min_segment: 3,
            cpd_threshold: ml::cpd::FAST_THRESHOLD,
        }
    }
}

/// One evaluation of the monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftVerdict {
    /// Should a retrain be armed?
    pub armed: bool,
    /// Did change-point detection (as opposed to the sustained
    /// threshold) fire?
    pub via_cpd: bool,
    /// Error rate of the most recent populated bucket (0 when none).
    pub recent_error: f64,
    /// Number of populated buckets in the series.
    pub buckets: usize,
}

/// Sliding drift monitor. Stateless apart from `ignore_before`, which a
/// promotion or rollback advances so the alarm doesn't re-fire on the
/// previous model's mistakes.
#[derive(Debug)]
pub struct DriftMonitor {
    config: DriftConfig,
    ignore_before: SimTime,
}

impl DriftMonitor {
    /// A monitor watching the stream from the epoch on.
    pub fn new(config: DriftConfig) -> DriftMonitor {
        DriftMonitor {
            config,
            ignore_before: SimTime::EPOCH,
        }
    }

    /// Forget everything before `at` (called after a promotion or
    /// rollback: the new model starts with a clean record).
    pub fn reset(&mut self, at: SimTime) {
        self.ignore_before = at;
    }

    /// Feedback before this instant is ignored.
    pub fn ignore_before(&self) -> SimTime {
        self.ignore_before
    }

    /// The per-bucket error-rate series over complete buckets in
    /// `[ignore_before, now)`, skipping under-populated buckets.
    pub fn error_series(&self, store: &FeedbackStore, now: SimTime) -> Vec<f64> {
        let bucket = self.config.bucket.as_minutes().max(1);
        let start = self.ignore_before;
        if now <= start {
            return Vec::new();
        }
        let complete = now.since(start).as_minutes() / bucket;
        let mut counts = vec![0usize; complete as usize];
        let mut errors = vec![0usize; complete as usize];
        for f in store.slice(start, SimTime(start.0 + complete * bucket)) {
            let slot = (f.time.since(start).as_minutes() / bucket) as usize;
            counts[slot] += 1;
            if f.mistaken() {
                errors[slot] += 1;
            }
        }
        counts
            .iter()
            .zip(&errors)
            .filter(|(&n, _)| n >= self.config.min_bucket_samples)
            .map(|(&n, &e)| e as f64 / n as f64)
            .collect()
    }

    /// Evaluate the stream as of `now`.
    pub fn evaluate(&self, store: &FeedbackStore, now: SimTime) -> DriftVerdict {
        let series = self.error_series(store, now);
        let recent_error = series.last().copied().unwrap_or(0.0);
        let cfg = &self.config;

        // Trigger 1: a change point whose post-change mean error is
        // materially above the pre-change mean.
        let mut via_cpd = false;
        for cp in
            ml::cpd::detect_change_points_fast(&series, cfg.cpd_min_segment, cfg.cpd_threshold)
        {
            let pre = mean(&series[..cp]);
            let post = mean(&series[cp..]);
            if post - pre >= cfg.regress_margin {
                via_cpd = true;
                break;
            }
        }

        // Trigger 2: sustained degradation.
        let sustained = cfg.sustain_buckets > 0
            && series.len() >= cfg.sustain_buckets
            && series[series.len() - cfg.sustain_buckets..]
                .iter()
                .all(|&e| e >= cfg.degrade_error);

        DriftVerdict {
            armed: via_cpd || sustained,
            via_cpd,
            recent_error,
            buckets: series.len(),
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Feedback;

    /// `per_bucket` examples per day-bucket; `error_from` marks the day
    /// the stream turns bad (every prediction mistaken).
    fn stream(days: u64, per_bucket: usize, error_from: u64) -> FeedbackStore {
        let mut s = FeedbackStore::new(100_000);
        let mut id = 0;
        for day in 0..days {
            for k in 0..per_bucket {
                id += 1;
                let mistaken = day >= error_from;
                s.push(Feedback {
                    incident: id,
                    text: format!("i{id}"),
                    time: SimTime(day * 1440 + k as u64),
                    predicted: !mistaken,
                    label: true,
                    model_version: 1,
                });
            }
        }
        s
    }

    fn daily_config() -> DriftConfig {
        DriftConfig {
            bucket: SimDuration::days(1),
            min_bucket_samples: 4,
            sustain_buckets: 3,
            degrade_error: 0.5,
            regress_margin: 0.2,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn healthy_stream_never_arms() {
        let s = stream(20, 6, u64::MAX);
        let m = DriftMonitor::new(daily_config());
        let v = m.evaluate(&s, SimTime::EPOCH + SimDuration::days(20));
        assert!(!v.armed, "{v:?}");
        assert_eq!(v.buckets, 20);
        assert_eq!(v.recent_error, 0.0);
    }

    #[test]
    fn step_change_arms_via_cpd() {
        let s = stream(20, 6, 12);
        let m = DriftMonitor::new(daily_config());
        let v = m.evaluate(&s, SimTime::EPOCH + SimDuration::days(20));
        assert!(v.armed, "{v:?}");
        assert!(v.via_cpd, "step change should be caught by CPD: {v:?}");
        assert_eq!(v.recent_error, 1.0);
    }

    #[test]
    fn sustained_degradation_arms_without_history() {
        // All-bad from the start: no change point exists, only the
        // sustained trigger can fire.
        let s = stream(4, 6, 0);
        let m = DriftMonitor::new(daily_config());
        let v = m.evaluate(&s, SimTime::EPOCH + SimDuration::days(4));
        assert!(v.armed, "{v:?}");
        assert!(!v.via_cpd);
    }

    #[test]
    fn reset_forgets_the_old_models_mistakes() {
        let s = stream(20, 6, 12);
        let mut m = DriftMonitor::new(daily_config());
        m.reset(SimTime::EPOCH + SimDuration::days(20));
        let v = m.evaluate(&s, SimTime::EPOCH + SimDuration::days(20));
        assert!(!v.armed, "everything pre-reset must be ignored: {v:?}");
        assert_eq!(v.buckets, 0);
    }

    #[test]
    fn sparse_buckets_contribute_no_samples() {
        let s = stream(20, 2, 12); // below min_bucket_samples
        let m = DriftMonitor::new(daily_config());
        let v = m.evaluate(&s, SimTime::EPOCH + SimDuration::days(20));
        assert_eq!(v.buckets, 0);
        assert!(!v.armed);
    }
}
