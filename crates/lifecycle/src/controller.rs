//! The lifecycle controller: the loop that closes feedback → drift →
//! retrain → shadow gate → promotion → probation → rollback.
//!
//! The controller is deliberately a pure state machine over simulation
//! time: `ingest` appends labeled feedback, `tick(now, …)` advances the
//! loop. Nothing reads the wall clock or an unseeded RNG — training
//! seeds come from `ScoutBuildConfig::seed`, preparation fans out on an
//! order-preserving pool, and all internal state is ordered containers —
//! so a replay of the same feedback stream and tick schedule produces a
//! bit-identical event log at any worker count. That is what makes the
//! promotion/rollback behavior testable against `cloudsim`'s scripted
//! drift.
//!
//! Phases:
//!
//! * **Monitoring** — the drift monitor watches the windowed error
//!   series. When it arms (and the cooldown has passed), the controller
//!   retrains on feedback *older* than the shadow window using the
//!   `scout::retrain` window/weight policies, then shadow-evaluates the
//!   candidate out-of-sample. A win by `promote_margin` publishes it
//!   through the registry hot-swap; anything else is rejected.
//! * **Probation** — after a promotion the controller scores only the
//!   promoted version's own served feedback. Falling more than
//!   `rollback_margin` below the shadow baseline rolls back to the
//!   prior version; surviving the window confirms the promotion. Either
//!   way the monitor restarts with a clean record.

use crate::drift::{DriftConfig, DriftMonitor};
use crate::feedback::{Feedback, FeedbackStore, DEFAULT_STORE_CAP};
use crate::shadow::{self, ShadowReport};
use cloudsim::{SimDuration, SimTime};
use featcache::FeatCache;
use monitoring::MonitoringSystem;
use scout::retrain::RetrainConfig;
use scout::{Scout, ScoutBuildConfig, ScoutConfig, WindowPolicy};
use serve::ModelRegistry;
use std::sync::Arc;

/// Controller tuning. Defaults follow the paper's Fig. 10 sliding-window
/// regime, scaled to the feedback volumes of one serving team.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Team whose registry slot this controller manages.
    pub team: String,
    /// Scout domain configuration used for retrains.
    pub scout: ScoutConfig,
    /// Build (forest, seed, lookback) configuration used for retrains.
    pub build: ScoutBuildConfig,
    /// Drift monitor tuning.
    pub drift: DriftConfig,
    /// Retrain window/weighting policy (`interval` is unused — ticks
    /// are externally driven).
    pub retrain: RetrainConfig,
    /// Trailing window held out of training and used for the shadow
    /// comparison.
    pub shadow_window: SimDuration,
    /// Candidate must beat the live model's shadow MCC by this much.
    pub promote_margin: f64,
    /// Minimum labeled examples in the shadow window for a verdict.
    pub min_shadow: usize,
    /// How long a promoted model is on probation.
    pub probation: SimDuration,
    /// Minimum probation-window feedback (for the promoted version)
    /// before judging it.
    pub min_probation_samples: usize,
    /// Probation MCC more than this far below the shadow baseline
    /// triggers rollback.
    pub rollback_margin: f64,
    /// Minimum gap between lifecycle actions (arms are ignored sooner).
    pub cooldown: SimDuration,
    /// Bound on the labeled feedback stream.
    pub store_cap: usize,
    /// Feature-chunk cache budget for retrain featurization (bytes).
    pub feat_cache_bytes: usize,
}

impl LifecycleConfig {
    /// Defaults for `team` with the given Scout configuration.
    pub fn new(team: &str, scout: ScoutConfig, build: ScoutBuildConfig) -> LifecycleConfig {
        LifecycleConfig {
            team: team.to_string(),
            scout,
            build,
            drift: DriftConfig::default(),
            retrain: RetrainConfig {
                window: WindowPolicy::Sliding(SimDuration::days(60)),
                min_train: 30,
                ..RetrainConfig::default()
            },
            shadow_window: SimDuration::days(10),
            promote_margin: 0.0,
            min_shadow: 10,
            probation: SimDuration::days(10),
            min_probation_samples: 10,
            rollback_margin: 0.15,
            cooldown: SimDuration::days(5),
            store_cap: DEFAULT_STORE_CAP,
            feat_cache_bytes: 32 * 1024 * 1024,
        }
    }
}

/// One observable lifecycle action. `Display` renders the grep-able
/// one-line form used by `scoutctl lifecycle` and the smoke script.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// The drift monitor armed a retrain.
    DriftArmed {
        /// Tick time.
        at: SimTime,
        /// Most recent bucket error rate.
        error: f64,
        /// Change-point (vs sustained) trigger.
        via_cpd: bool,
    },
    /// A retrain was launched.
    RetrainStarted {
        /// Tick time.
        at: SimTime,
        /// Training examples in the (weighted) window.
        train_size: usize,
    },
    /// The candidate lost (or tied under the margin) at the shadow gate.
    CandidateRejected {
        /// Tick time.
        at: SimTime,
        /// Candidate MCC on the shadow window.
        candidate_mcc: f64,
        /// Live MCC on the shadow window.
        live_mcc: f64,
        /// Shadow samples.
        samples: usize,
    },
    /// The candidate won the gate and was published.
    Promoted {
        /// Tick time.
        at: SimTime,
        /// Registry version assigned to the candidate.
        version: u64,
        /// Candidate MCC on the shadow window (the probation baseline).
        candidate_mcc: f64,
        /// Live MCC on the shadow window.
        live_mcc: f64,
    },
    /// The registry changed under the controller (operator reload):
    /// the new version is put on probation like any promotion.
    ExternalPromotion {
        /// Tick time.
        at: SimTime,
        /// The externally-published version.
        version: u64,
    },
    /// Probation failed: the registry was rolled back.
    RolledBack {
        /// Tick time.
        at: SimTime,
        /// The demoted version.
        from: u64,
        /// The restored version.
        to: u64,
        /// The promoted model's probation MCC.
        probation_mcc: f64,
        /// The baseline it had to defend.
        baseline_mcc: f64,
    },
    /// Probation passed: the promotion stands.
    Confirmed {
        /// Tick time.
        at: SimTime,
        /// The confirmed version.
        version: u64,
        /// Probation MCC.
        probation_mcc: f64,
    },
}

fn day(t: SimTime) -> f64 {
    t.0 as f64 / 1440.0
}

impl std::fmt::Display for LifecycleEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleEvent::DriftArmed { at, error, via_cpd } => write!(
                f,
                "day {:>6.1}  drift armed (error {:.2}, {})",
                day(*at),
                error,
                if *via_cpd { "change-point" } else { "sustained" }
            ),
            LifecycleEvent::RetrainStarted { at, train_size } => write!(
                f,
                "day {:>6.1}  retrain started on {train_size} examples",
                day(*at)
            ),
            LifecycleEvent::CandidateRejected {
                at,
                candidate_mcc,
                live_mcc,
                samples,
            } => write!(
                f,
                "day {:>6.1}  candidate rejected at gate (mcc {candidate_mcc:.3} vs live {live_mcc:.3}, {samples} shadow samples)",
                day(*at)
            ),
            LifecycleEvent::Promoted {
                at,
                version,
                candidate_mcc,
                live_mcc,
            } => write!(
                f,
                "day {:>6.1}  promoted v{version} (shadow mcc {candidate_mcc:.3} vs live {live_mcc:.3})",
                day(*at)
            ),
            LifecycleEvent::ExternalPromotion { at, version } => write!(
                f,
                "day {:>6.1}  external promotion detected: v{version} on probation",
                day(*at)
            ),
            LifecycleEvent::RolledBack {
                at,
                from,
                to,
                probation_mcc,
                baseline_mcc,
            } => write!(
                f,
                "day {:>6.1}  rolled back to v{to} from v{from} (probation mcc {probation_mcc:.3} < baseline {baseline_mcc:.3})",
                day(*at)
            ),
            LifecycleEvent::Confirmed {
                at,
                version,
                probation_mcc,
            } => write!(
                f,
                "day {:>6.1}  promotion confirmed v{version} (probation mcc {probation_mcc:.3})",
                day(*at)
            ),
        }
    }
}

/// Where the controller is in the loop.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Watching for drift.
    Monitoring,
    /// Watching a fresh promotion.
    Probation {
        version: u64,
        started: SimTime,
        baseline_mcc: f64,
    },
}

/// The continual-learning controller for one team.
pub struct LifecycleController {
    cfg: LifecycleConfig,
    registry: Arc<ModelRegistry>,
    store: FeedbackStore,
    monitor: DriftMonitor,
    phase: Phase,
    last_action: SimTime,
    feat_cache: FeatCache,
    workers: Option<Arc<pool::Pool>>,
    expected_version: Option<u64>,
    events: Vec<LifecycleEvent>,
    wal: Option<Arc<wal::Wal>>,
}

impl LifecycleController {
    /// A controller managing `cfg.team`'s slot in `registry`.
    pub fn new(cfg: LifecycleConfig, registry: Arc<ModelRegistry>) -> LifecycleController {
        let feat_cache = FeatCache::new(cfg.feat_cache_bytes);
        let store = FeedbackStore::new(cfg.store_cap);
        let monitor = DriftMonitor::new(cfg.drift.clone());
        LifecycleController {
            cfg,
            registry,
            store,
            monitor,
            phase: Phase::Monitoring,
            last_action: SimTime::EPOCH,
            feat_cache,
            workers: None,
            expected_version: None,
            events: Vec::new(),
            wal: None,
        }
    }

    /// Run featurization on an explicit pool instead of the global one
    /// (the worker-count determinism tests sweep this).
    pub fn with_workers(mut self, workers: Arc<pool::Pool>) -> LifecycleController {
        self.workers = Some(workers);
        self
    }

    /// Mirror lifecycle decisions into `wal` (log-first durability).
    /// Feedback itself is logged by the serve layer at acceptance time;
    /// the controller contributes the drift/retrain/shadow/probation
    /// trail, and registry mutations arrive through the registry's own
    /// journal.
    pub fn with_wal(mut self, wal: Arc<wal::Wal>) -> LifecycleController {
        self.wal = Some(wal);
        self
    }

    fn log(&self, event: wal::Event) {
        if let Some(w) = self.wal.as_deref() {
            if w.append(&event).is_err() {
                obs::counter("wal.append_errors").inc();
            }
        }
    }

    /// Resume from recovered projections: the labeled stream, phase,
    /// cooldown anchor, and drift-monitor reset point continue exactly
    /// where the crashed process left them. The expected registry
    /// version is re-read from the (already restored) registry, so a
    /// model-directory reload performed *after* this restore is detected
    /// as an external promotion — which an unvetted post-crash reload
    /// genuinely is.
    pub fn restore_from(&mut self, proj: &wal::Projections) {
        let items: Vec<Feedback> = proj
            .feedback
            .items
            .iter()
            .filter(|f| f.team == self.cfg.team)
            .map(|f| Feedback {
                incident: f.incident,
                text: f.text.clone(),
                time: f.time,
                predicted: f.predicted,
                label: f.label,
                model_version: f.model_version,
            })
            .collect();
        // The projection's total is stream-global; it only transfers
        // exactly when this team owns the whole stream.
        let total = if items.len() == proj.feedback.items.len() {
            proj.feedback.total
        } else {
            items.len() as u64
        };
        self.store = FeedbackStore::restore(self.cfg.store_cap, total, items);
        if let Some(lc) = proj.lifecycle.get(&self.cfg.team) {
            self.phase = match &lc.phase {
                wal::PhaseState::Monitoring => Phase::Monitoring,
                wal::PhaseState::Probation {
                    version,
                    started,
                    baseline_mcc,
                } => Phase::Probation {
                    version: *version,
                    started: *started,
                    baseline_mcc: *baseline_mcc,
                },
            };
            self.last_action = lc.last_action;
            self.monitor.reset(lc.ignore_before);
        }
        self.expected_version = self.registry.version_of(&self.cfg.team);
    }

    /// The labeled stream accumulated so far.
    pub fn store(&self) -> &FeedbackStore {
        &self.store
    }

    /// Every event the controller has emitted, in order.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// The event log rendered one line per event (the bit-compared
    /// determinism artifact).
    pub fn event_log(&self) -> Vec<String> {
        self.events.iter().map(|e| e.to_string()).collect()
    }

    /// Append one labeled example to the stream.
    pub fn ingest(&mut self, fb: Feedback) {
        obs::counter("lifecycle.feedback.ingested").inc();
        self.store.push(fb);
    }

    /// Advance the loop to `now`. Returns the events emitted by this
    /// tick (also appended to [`LifecycleController::events`]).
    pub fn tick(&mut self, now: SimTime, monitoring: &MonitoringSystem<'_>) -> Vec<LifecycleEvent> {
        let _span = obs::span!("lifecycle.tick");
        let mut out = Vec::new();

        // An operator reload under our feet means an unvetted model is
        // serving: adopt it and put it on probation against the trailing
        // window's observed quality.
        let current = self.registry.version_of(&self.cfg.team);
        if let (Some(cur), Some(expected)) = (current, self.expected_version) {
            if cur != expected
                && !matches!(self.phase, Phase::Probation { version, .. } if version == cur)
            {
                let baseline = self
                    .store
                    .confusion_in(now.saturating_sub(self.cfg.shadow_window), now)
                    .mcc();
                out.push(LifecycleEvent::ExternalPromotion {
                    at: now,
                    version: cur,
                });
                self.log(wal::Event::ProbationStarted {
                    team: self.cfg.team.clone(),
                    version: cur,
                    baseline_mcc: baseline,
                    external: true,
                    at: now,
                });
                self.phase = Phase::Probation {
                    version: cur,
                    started: now,
                    baseline_mcc: baseline,
                };
                self.monitor.reset(now);
                self.last_action = now;
            }
        }
        self.expected_version = current;

        match self.phase.clone() {
            Phase::Monitoring => self.tick_monitoring(now, monitoring, &mut out),
            Phase::Probation {
                version,
                started,
                baseline_mcc,
            } => self.tick_probation(now, version, started, baseline_mcc, &mut out),
        }

        self.events.extend(out.iter().cloned());
        out
    }

    fn tick_monitoring(
        &mut self,
        now: SimTime,
        monitoring: &MonitoringSystem<'_>,
        out: &mut Vec<LifecycleEvent>,
    ) {
        let verdict = self.monitor.evaluate(&self.store, now);
        if !verdict.armed {
            return;
        }
        if self.last_action > SimTime::EPOCH && now.since(self.last_action) < self.cfg.cooldown {
            obs::counter("lifecycle.drift.cooldown_suppressed").inc();
            return;
        }
        obs::counter("lifecycle.drift.armed").inc();
        out.push(LifecycleEvent::DriftArmed {
            at: now,
            error: verdict.recent_error,
            via_cpd: verdict.via_cpd,
        });
        self.log(wal::Event::DriftArmed {
            team: self.cfg.team.clone(),
            at: now,
            error: verdict.recent_error,
            via_cpd: verdict.via_cpd,
        });

        // Out-of-sample split: train strictly before the shadow window.
        let gate_start = now.saturating_sub(self.cfg.shadow_window);
        let window_start = self.cfg.retrain.window_start(gate_start);
        let (examples, mistaken) = self.store.examples_in(window_start, now);
        let workers: &pool::Pool = match self.workers.as_deref() {
            Some(w) => w,
            None => pool::Pool::global(),
        };
        let corpus = {
            let _span = obs::span!("lifecycle.retrain.prepare");
            Scout::prepare_cached_on(
                workers,
                &self.cfg.scout,
                &self.cfg.build,
                &examples,
                monitoring,
                Some(&self.feat_cache),
            )
        };
        let (weighted, train_idx) = self
            .cfg
            .retrain
            .weighted_window(&corpus, gate_start, &mistaken);
        if train_idx.len() < self.cfg.retrain.min_train.max(4) {
            obs::counter("lifecycle.retrain.skipped_thin").inc();
            self.log(wal::Event::RetrainFinished {
                team: self.cfg.team.clone(),
                at: now,
                outcome: "skipped_thin".into(),
            });
            self.last_action = now;
            return;
        }
        obs::counter("lifecycle.retrains").inc();
        out.push(LifecycleEvent::RetrainStarted {
            at: now,
            train_size: train_idx.len(),
        });
        self.log(wal::Event::RetrainStarted {
            team: self.cfg.team.clone(),
            at: now,
            train_size: train_idx.len() as u64,
        });
        let candidate = {
            let _span = obs::span!("lifecycle.retrain.train");
            let all: Vec<usize> = (0..weighted.items.len()).collect();
            Scout::train_prepared(
                self.cfg.scout.clone(),
                self.cfg.build.clone(),
                &weighted,
                &all,
                monitoring,
            )
        };

        let Some(live) = self.registry.get(&self.cfg.team) else {
            // Cold start: nothing to shadow against, publish directly.
            match self
                .registry
                .register(&self.cfg.team, candidate, "lifecycle-retrain")
            {
                Ok(version) => {
                    obs::counter("lifecycle.promotions").inc();
                    out.push(LifecycleEvent::Promoted {
                        at: now,
                        version,
                        candidate_mcc: 0.0,
                        live_mcc: 0.0,
                    });
                    self.log(wal::Event::RetrainFinished {
                        team: self.cfg.team.clone(),
                        at: now,
                        outcome: "cold_start".into(),
                    });
                    self.log(wal::Event::ProbationStarted {
                        team: self.cfg.team.clone(),
                        version,
                        baseline_mcc: 0.0,
                        external: false,
                        at: now,
                    });
                    self.phase = Phase::Probation {
                        version,
                        started: now,
                        baseline_mcc: 0.0,
                    };
                    self.monitor.reset(now);
                    self.expected_version = Some(version);
                }
                Err(_) => {
                    self.log(wal::Event::RetrainFinished {
                        team: self.cfg.team.clone(),
                        at: now,
                        outcome: "blocked_pinned".into(),
                    });
                }
            }
            self.last_action = now;
            return;
        };

        let shadow_idx: Vec<usize> = (0..corpus.items.len())
            .filter(|&i| corpus.items[i].example.time >= gate_start)
            .collect();
        let report = shadow::evaluate(&candidate, &live.scout, &corpus, &shadow_idx, monitoring);
        let passed = report.passes(self.cfg.promote_margin, self.cfg.min_shadow);
        self.log(wal::Event::ShadowVerdict {
            team: self.cfg.team.clone(),
            at: now,
            candidate_mcc: report.candidate_mcc(),
            live_mcc: report.live_mcc(),
            samples: report.samples as u64,
            passed,
        });
        if !passed {
            obs::counter("lifecycle.rejections").inc();
            out.push(self.rejected(now, &report));
            self.log(wal::Event::RetrainFinished {
                team: self.cfg.team.clone(),
                at: now,
                outcome: "rejected".into(),
            });
            self.last_action = now;
            return;
        }
        match self
            .registry
            .register(&self.cfg.team, candidate, "lifecycle-retrain")
        {
            Ok(version) => {
                obs::counter("lifecycle.promotions").inc();
                out.push(LifecycleEvent::Promoted {
                    at: now,
                    version,
                    candidate_mcc: report.candidate_mcc(),
                    live_mcc: report.live_mcc(),
                });
                self.log(wal::Event::RetrainFinished {
                    team: self.cfg.team.clone(),
                    at: now,
                    outcome: "promoted".into(),
                });
                self.log(wal::Event::ProbationStarted {
                    team: self.cfg.team.clone(),
                    version,
                    baseline_mcc: report.candidate_mcc(),
                    external: false,
                    at: now,
                });
                self.phase = Phase::Probation {
                    version,
                    started: now,
                    baseline_mcc: report.candidate_mcc(),
                };
                self.monitor.reset(now);
                self.expected_version = Some(version);
            }
            Err(_) => {
                // Pinned: the gate verdict stands but publication is
                // blocked; record it as a rejection.
                obs::counter("lifecycle.promotion_blocked_pinned").inc();
                out.push(self.rejected(now, &report));
                self.log(wal::Event::RetrainFinished {
                    team: self.cfg.team.clone(),
                    at: now,
                    outcome: "blocked_pinned".into(),
                });
            }
        }
        self.last_action = now;
    }

    fn rejected(&self, now: SimTime, report: &ShadowReport) -> LifecycleEvent {
        LifecycleEvent::CandidateRejected {
            at: now,
            candidate_mcc: report.candidate_mcc(),
            live_mcc: report.live_mcc(),
            samples: report.samples,
        }
    }

    fn tick_probation(
        &mut self,
        now: SimTime,
        version: u64,
        started: SimTime,
        baseline_mcc: f64,
        out: &mut Vec<LifecycleEvent>,
    ) {
        if now.since(started) < self.cfg.probation {
            return;
        }
        let conf = self.store.confusion_for_version(version, started, now);
        if conf.total() < self.cfg.min_probation_samples {
            // Not enough of the promoted model's own feedback yet; keep
            // waiting rather than judging on noise.
            return;
        }
        let probation_mcc = conf.mcc();
        if probation_mcc < baseline_mcc - self.cfg.rollback_margin {
            match self.registry.rollback(&self.cfg.team) {
                Ok(restored) => {
                    obs::counter("lifecycle.rollbacks").inc();
                    out.push(LifecycleEvent::RolledBack {
                        at: now,
                        from: version,
                        to: restored,
                        probation_mcc,
                        baseline_mcc,
                    });
                    self.expected_version = Some(restored);
                }
                Err(_) => {
                    // History is gone (e.g. a reload consumed it): all we
                    // can do is fall back to monitoring and let the drift
                    // monitor arm a fresh retrain.
                    obs::counter("lifecycle.rollback_unavailable").inc();
                }
            }
            // Logged either way (the `ModelRolledBack` itself arrives
            // through the registry journal when rollback succeeded), so
            // replay reaches Monitoring exactly like the runtime did.
            self.log(wal::Event::ProbationEnded {
                team: self.cfg.team.clone(),
                version,
                probation_mcc,
                confirmed: false,
                at: now,
            });
        } else {
            obs::counter("lifecycle.confirmations").inc();
            out.push(LifecycleEvent::Confirmed {
                at: now,
                version,
                probation_mcc,
            });
            self.log(wal::Event::ProbationEnded {
                team: self.cfg.team.clone(),
                version,
                probation_mcc,
                confirmed: true,
                at: now,
            });
        }
        self.phase = Phase::Monitoring;
        self.monitor.reset(now);
        self.last_action = now;
    }
}
