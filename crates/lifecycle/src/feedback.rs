//! The labeled feedback stream: bounded, time-ordered ground truth.
//!
//! Every resolved incident becomes one [`Feedback`] — the served
//! prediction joined with its ground-truth label. The
//! [`FeedbackStore`] keeps the trailing window of that stream in
//! simulation-time order regardless of arrival order (operators resolve
//! incidents out of order), because everything downstream — drift
//! bucketing, retrain windows, shadow splits — is defined over
//! prediction time, not arrival time.

use cloudsim::SimTime;
use ml::metrics::Confusion;
use scout::Example;
use std::collections::VecDeque;

/// Default bound on retained labeled examples.
pub const DEFAULT_STORE_CAP: usize = 16 * 1024;

/// One labeled example: a served prediction plus its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Feedback {
    /// Server-assigned incident id.
    pub incident: u64,
    /// The incident text that was classified.
    pub text: String,
    /// Simulation time of the prediction.
    pub time: SimTime,
    /// What the model said: "my team is responsible".
    pub predicted: bool,
    /// Ground truth: the team actually was responsible.
    pub label: bool,
    /// Registry version of the model that predicted.
    pub model_version: u64,
}

impl From<serve::FeedbackEvent> for Feedback {
    fn from(e: serve::FeedbackEvent) -> Feedback {
        Feedback {
            incident: e.incident,
            text: e.text,
            time: e.time,
            predicted: e.predicted,
            label: e.label,
            model_version: e.model_version,
        }
    }
}

impl Feedback {
    /// Did the model get this one wrong?
    pub fn mistaken(&self) -> bool {
        self.predicted != self.label
    }
}

/// Bounded, simulation-time-ordered stream of labeled feedback.
#[derive(Debug)]
pub struct FeedbackStore {
    items: VecDeque<Feedback>,
    cap: usize,
    total: u64,
}

impl FeedbackStore {
    /// A store retaining at most `cap` examples (oldest evicted first).
    pub fn new(cap: usize) -> FeedbackStore {
        FeedbackStore {
            items: VecDeque::new(),
            cap: cap.max(1),
            total: 0,
        }
    }

    /// Rebuild a store from recovered state: `items` arrive already
    /// time-ordered, `total` continues the pre-crash ingestion count,
    /// and the stream is re-capped to the current bound (oldest evicted
    /// if the process restarted with a smaller one).
    pub fn restore(cap: usize, total: u64, items: Vec<Feedback>) -> FeedbackStore {
        let cap = cap.max(1);
        let mut queue: VecDeque<Feedback> = items.into();
        while queue.len() > cap {
            queue.pop_front();
        }
        FeedbackStore {
            items: queue,
            cap,
            total,
        }
    }

    /// Insert one labeled example, keeping the store time-ordered
    /// (stable for equal times: later arrivals go after earlier ones).
    /// Evicts the oldest example when full.
    pub fn push(&mut self, fb: Feedback) {
        let pos = self
            .items
            .iter()
            .rposition(|f| f.time <= fb.time)
            .map(|i| i + 1)
            .unwrap_or(0);
        self.items.insert(pos, fb);
        if self.items.len() > self.cap {
            self.items.pop_front();
        }
        self.total += 1;
    }

    /// Number of retained examples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total ever ingested (including evicted).
    pub fn total_ingested(&self) -> u64 {
        self.total
    }

    /// Time-ordered view of the retained stream.
    pub fn iter(&self) -> impl Iterator<Item = &Feedback> {
        self.items.iter()
    }

    /// The retained feedback with `from <= time < to`, time-ordered.
    pub fn slice(&self, from: SimTime, to: SimTime) -> Vec<&Feedback> {
        self.items
            .iter()
            .filter(|f| f.time >= from && f.time < to)
            .collect()
    }

    /// Confusion of recorded predictions against ground truth over
    /// `[from, to)`.
    pub fn confusion_in(&self, from: SimTime, to: SimTime) -> Confusion {
        let mut c = Confusion::default();
        for f in self.slice(from, to) {
            c.record(f.label, f.predicted);
        }
        c
    }

    /// Like [`FeedbackStore::confusion_in`], restricted to predictions
    /// made by model `version` (the probation signal).
    pub fn confusion_for_version(&self, version: u64, from: SimTime, to: SimTime) -> Confusion {
        let mut c = Confusion::default();
        for f in self.slice(from, to) {
            if f.model_version == version {
                c.record(f.label, f.predicted);
            }
        }
        c
    }

    /// Training examples (text, time, ground-truth label) for the
    /// feedback in `[from, to)`, plus the aligned mistake flags.
    pub fn examples_in(&self, from: SimTime, to: SimTime) -> (Vec<Example>, Vec<bool>) {
        let slice = self.slice(from, to);
        let examples = slice
            .iter()
            .map(|f| Example::new(f.text.clone(), f.time, f.label))
            .collect();
        let mistaken = slice.iter().map(|f| f.mistaken()).collect();
        (examples, mistaken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(incident: u64, minute: u64, predicted: bool, label: bool) -> Feedback {
        Feedback {
            incident,
            text: format!("incident {incident}"),
            time: SimTime(minute),
            predicted,
            label,
            model_version: 1,
        }
    }

    #[test]
    fn out_of_order_arrival_is_time_ordered() {
        let mut s = FeedbackStore::new(10);
        s.push(fb(1, 50, true, true));
        s.push(fb(2, 10, false, false));
        s.push(fb(3, 30, true, false));
        let times: Vec<u64> = s.iter().map(|f| f.time.0).collect();
        assert_eq!(times, vec![10, 30, 50]);
    }

    #[test]
    fn capacity_evicts_oldest_by_time() {
        let mut s = FeedbackStore::new(2);
        s.push(fb(1, 50, true, true));
        s.push(fb(2, 10, false, false));
        s.push(fb(3, 30, true, false));
        let times: Vec<u64> = s.iter().map(|f| f.time.0).collect();
        assert_eq!(times, vec![30, 50]);
        assert_eq!(s.total_ingested(), 3);
    }

    #[test]
    fn windowed_confusion_counts_the_right_cells() {
        let mut s = FeedbackStore::new(10);
        s.push(fb(1, 10, true, true)); // tp
        s.push(fb(2, 20, true, false)); // fp
        s.push(fb(3, 30, false, true)); // fn
        s.push(fb(4, 40, false, false)); // tn
        s.push(fb(5, 99, true, true)); // outside window
        let c = s.confusion_in(SimTime(0), SimTime(50));
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        let (examples, mistaken) = s.examples_in(SimTime(0), SimTime(50));
        assert_eq!(examples.len(), 4);
        assert_eq!(mistaken, vec![false, true, true, false]);
        assert!(examples[0].label);
        assert!(!examples[1].label);
    }
}
