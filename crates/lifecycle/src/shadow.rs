//! Shadow evaluation: score a retrained candidate against the live
//! model on held-out labeled traffic before letting it serve.
//!
//! The gate is strictly **out-of-sample**: the controller trains the
//! candidate only on feedback *older* than the shadow window, then both
//! models replay the shadow window's incidents here. Comparing on the
//! candidate's own training data would let any overfit model through;
//! comparing out-of-sample means the candidate must actually generalize
//! to the post-drift mix to win. MCC is the score (see
//! `ml::metrics::Confusion::mcc`) because per-team incident streams are
//! heavily imbalanced.

use ml::metrics::Confusion;
use monitoring::MonitoringSystem;
use scout::scout::PreparedCorpus;
use scout::Scout;

/// Outcome of one shadow evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowReport {
    /// Labeled examples replayed.
    pub samples: usize,
    /// Candidate's confusion on the shadow window.
    pub candidate: Confusion,
    /// Live model's confusion on the same window.
    pub live: Confusion,
}

impl ShadowReport {
    /// Candidate MCC on the shadow window.
    pub fn candidate_mcc(&self) -> f64 {
        self.candidate.mcc()
    }

    /// Live-model MCC on the shadow window.
    pub fn live_mcc(&self) -> f64 {
        self.live.mcc()
    }

    /// Promotion gate: enough samples, and the candidate beats the live
    /// model by at least `margin`.
    pub fn passes(&self, margin: f64, min_samples: usize) -> bool {
        self.samples >= min_samples && self.candidate_mcc() >= self.live_mcc() + margin
    }
}

/// Replay `idx` (indices into `corpus`) through both models and tally
/// confusions against ground truth. Prediction is pure per item, so the
/// report is deterministic for a fixed corpus and index order.
pub fn evaluate(
    candidate: &Scout,
    live: &Scout,
    corpus: &PreparedCorpus,
    idx: &[usize],
    monitoring: &MonitoringSystem<'_>,
) -> ShadowReport {
    let _span = obs::span!("lifecycle.shadow");
    let mut report = ShadowReport {
        samples: idx.len(),
        candidate: Confusion::default(),
        live: Confusion::default(),
    };
    for &i in idx {
        let item = &corpus.items[i];
        let truth = item.example.label;
        report.candidate.record(
            truth,
            candidate
                .predict_prepared(item, monitoring)
                .says_responsible(),
        );
        report.live.record(
            truth,
            live.predict_prepared(item, monitoring).says_responsible(),
        );
    }
    obs::counter("lifecycle.shadow.evals").inc();
    obs::observe("lifecycle.shadow.samples", idx.len() as f64);
    report
}
