//! The serve-side bridge: a background worker that runs the controller
//! off the HTTP path.
//!
//! The serve engine calls [`serve::FeedbackHook::on_feedback`] on its
//! handler threads; this handle forwards each event over a channel to a
//! dedicated `lifecycle` thread, so feedback ingestion costs the server
//! one channel send — retrains and shadow evaluations never touch
//! serving latency. The worker drives the controller's simulation clock
//! with the high-water mark of observed feedback times, preserving the
//! sim-clock contract even in live mode.

use crate::controller::{LifecycleConfig, LifecycleController};
use crate::feedback::Feedback;
use cloudsim::{Fault, SimTime, Topology};
use monitoring::{MonitoringConfig, MonitoringSystem};
use serve::{FeedbackEvent, FeedbackHook, ModelRegistry};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// A running lifecycle worker; implements [`serve::FeedbackHook`].
pub struct LifecycleHandle {
    tx: Mutex<Option<mpsc::Sender<FeedbackEvent>>>,
    events: Arc<Mutex<Vec<String>>>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl LifecycleHandle {
    /// Spawn the worker thread. `topology`/`faults` are the world the
    /// Scouts' monitoring plane reads from (same data the serve engine
    /// uses).
    pub fn start(
        cfg: LifecycleConfig,
        registry: Arc<ModelRegistry>,
        topology: Arc<Topology>,
        faults: Arc<Vec<Fault>>,
        mon_config: MonitoringConfig,
    ) -> Arc<LifecycleHandle> {
        LifecycleHandle::start_with_wal(cfg, registry, topology, faults, mon_config, None)
    }

    /// [`LifecycleHandle::start`] with a durability log: the controller
    /// restores its recovered phase/stream from the WAL's projections
    /// before processing any live feedback, then mirrors every decision
    /// into the log. Pass the same `Arc<wal::Wal>` the serve engine was
    /// attached to, so the event stream stays totally ordered.
    pub fn start_with_wal(
        cfg: LifecycleConfig,
        registry: Arc<ModelRegistry>,
        topology: Arc<Topology>,
        faults: Arc<Vec<Fault>>,
        mon_config: MonitoringConfig,
        wal: Option<Arc<wal::Wal>>,
    ) -> Arc<LifecycleHandle> {
        let (tx, rx) = mpsc::channel::<FeedbackEvent>();
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let worker = std::thread::Builder::new()
            .name("lifecycle".into())
            .spawn(move || {
                let monitoring =
                    MonitoringSystem::new(topology.as_ref(), faults.as_slice(), mon_config);
                let mut controller = LifecycleController::new(cfg, registry);
                if let Some(w) = wal {
                    let proj = w.projections();
                    controller = controller.with_wal(w);
                    controller.restore_from(&proj);
                }
                // Resume the sim clock at the restored stream's high-water
                // mark so post-recovery ticks never run backwards.
                let mut horizon = controller
                    .store()
                    .iter()
                    .last()
                    .map_or(SimTime::EPOCH, |f| f.time);
                while let Ok(event) = rx.recv() {
                    // Continue the reporting request's trace across the
                    // channel hop: ingestion (and any retrain it
                    // triggers) shows up under the feedback request.
                    let _trace = (event.trace_id != 0)
                        .then(|| obs::TraceContext::adopt(event.trace_id).enter());
                    let _span = obs::span!("lifecycle.feedback");
                    if event.time > horizon {
                        horizon = event.time;
                    }
                    controller.ingest(Feedback::from(event));
                    for e in controller.tick(horizon, &monitoring) {
                        sink.lock().unwrap().push(e.to_string());
                    }
                }
            })
            .expect("spawn lifecycle worker");
        Arc::new(LifecycleHandle {
            tx: Mutex::new(Some(tx)),
            events,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Event lines emitted so far (the controller's `Display` forms).
    pub fn events(&self) -> Vec<String> {
        self.events.lock().unwrap().clone()
    }

    /// Close the feedback channel and join the worker. Idempotent.
    pub fn stop(&self) {
        self.tx.lock().unwrap().take();
        if let Some(worker) = self.worker.lock().unwrap().take() {
            worker.join().ok();
        }
    }
}

impl Drop for LifecycleHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl FeedbackHook for LifecycleHandle {
    fn on_feedback(&self, event: FeedbackEvent) {
        if let Some(tx) = self.tx.lock().unwrap().as_ref() {
            let _ = tx.send(event);
        }
    }
}
