//! The [`Strategy`] trait and its combinators.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply draws a value from a deterministic generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` names the filter in
    /// the panic raised if it rejects too often.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Box the strategy (object-safe erasure helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive candidates",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

/// String strategies from a regex-subset pattern (`"[a-z]{0,40}"`,
/// `"\\PC{0,200}"`, `".{0,50}"`, …).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
