//! The case loop behind the [`crate::proptest!`] macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: try other ones.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// An input rejection.
    pub fn reject(condition: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(condition.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(c) => write!(f, "rejected: {c}"),
        }
    }
}

/// Harness configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; overridable via PROPTEST_CASES.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Drives one `proptest!` test: deterministic per-case generators,
/// rejection accounting, failure reporting.
pub struct TestRunner {
    base_seed: u64,
    cases: u32,
    accepted: u32,
    attempts: u32,
    max_attempts: u32,
    test_name: &'static str,
}

impl TestRunner {
    /// A runner for `test_name` (whose hash seeds the generator, so
    /// every run of the same test sees the same cases).
    pub fn new(config: &ProptestConfig, test_name: &'static str) -> TestRunner {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            base_seed: h,
            cases: config.cases,
            accepted: 0,
            attempts: 0,
            max_attempts: config.cases.saturating_mul(16).max(1024),
            test_name,
        }
    }

    /// The next case to run: `(case index, its generator)`, or `None`
    /// when the case budget is met.
    pub fn next_case(&mut self) -> Option<(u32, SmallRng)> {
        if self.accepted >= self.cases {
            return None;
        }
        if self.attempts >= self.max_attempts {
            panic!(
                "{}: gave up after {} attempts ({} accepted of {} wanted) — \
                 prop_assume! rejects too many inputs",
                self.test_name, self.attempts, self.accepted, self.cases
            );
        }
        let case = self.attempts;
        self.attempts += 1;
        Some((
            case,
            SmallRng::seed_from_u64(
                self.base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        ))
    }

    /// Record a case outcome; panics (failing the `#[test]`) on
    /// property violations.
    pub fn record(&mut self, case: u32, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(m)) => {
                panic!(
                    "{} failed at case {case} (deterministic; rerun reproduces it): {m}",
                    self.test_name
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_runs_exactly_the_case_budget() {
        let cfg = ProptestConfig::with_cases(10);
        let mut runner = TestRunner::new(&cfg, "t");
        let mut ran = 0;
        while let Some((case, _rng)) = runner.next_case() {
            runner.record(case, Ok(()));
            ran += 1;
        }
        assert_eq!(ran, 10);
    }

    #[test]
    fn rejections_do_not_consume_the_budget() {
        let cfg = ProptestConfig::with_cases(5);
        let mut runner = TestRunner::new(&cfg, "t");
        let mut accepted = 0;
        let mut total = 0;
        while let Some((case, _rng)) = runner.next_case() {
            total += 1;
            if total % 2 == 0 {
                runner.record(case, Err(TestCaseError::reject("odd")));
            } else {
                runner.record(case, Ok(()));
                accepted += 1;
            }
        }
        assert_eq!(accepted, 5);
        assert!(total > 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_the_case_number() {
        let cfg = ProptestConfig::with_cases(5);
        let mut runner = TestRunner::new(&cfg, "t");
        let (case, _rng) = runner.next_case().unwrap();
        runner.record(case, Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn same_test_name_same_cases() {
        let cfg = ProptestConfig::with_cases(3);
        let mut a = TestRunner::new(&cfg, "x");
        let mut b = TestRunner::new(&cfg, "x");
        use rand::Rng;
        while let (Some((ca, mut ra)), Some((cb, mut rb))) = (a.next_case(), b.next_case()) {
            assert_eq!(ca, cb);
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
            a.record(ca, Ok(()));
            b.record(cb, Ok(()));
        }
    }
}
