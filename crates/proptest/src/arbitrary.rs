//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> char {
        // Bias toward ASCII (boundary-heavy code), with the full scalar
        // space still reachable.
        loop {
            let raw = match rng.gen_range(0u32..4) {
                0 | 1 => rng.gen_range(0u32..0x80),
                2 => rng.gen_range(0x80u32..0x1_0000),
                _ => rng.gen_range(0x1_0000u32..0x11_0000),
            };
            if let Some(c) = char::from_u32(raw) {
                return c;
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        // Finite values spanning many magnitudes, including negatives.
        let mantissa: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-64i32..64);
        mantissa * (exp as f64).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_char_is_valid_scalars() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let c = char::arbitrary(&mut rng);
            assert!(char::from_u32(c as u32).is_some());
        }
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
