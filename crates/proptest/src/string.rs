//! Generation of strings matching a small regex subset.
//!
//! Supported syntax (everything the workspace's tests use, and a little
//! margin): literals, `.` (any scalar except `\n`), `\PC` (any
//! non-control scalar), `\d`, `\w`, `\s`, character classes with ranges
//! (`[a-zA-Z0-9 _.-]`), and the quantifiers `{m,n}`, `{n}`, `{m,}`,
//! `*`, `+`, `?`.

use rand::rngs::SmallRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum CharGen {
    /// A fixed literal.
    Literal(char),
    /// Any Unicode scalar except `\n` (regex `.`).
    AnyNoNewline,
    /// Any non-control Unicode scalar (regex `\PC`).
    Printable,
    /// An explicit set of characters (expanded class).
    OneOf(Vec<char>),
}

#[derive(Debug, Clone)]
struct Atom {
    gen: CharGen,
    min: usize,
    max: usize,
}

/// Generate a string matching `pattern`. Panics on syntax outside the
/// supported subset — the error names the offending position so the
/// pattern (or this module) can be extended.
pub fn generate_matching(pattern: &str, rng: &mut SmallRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = rng.gen_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(sample_char(&atom.gen, rng));
        }
    }
    out
}

fn sample_char(gen: &CharGen, rng: &mut SmallRng) -> char {
    match gen {
        CharGen::Literal(c) => *c,
        CharGen::OneOf(set) => set[rng.gen_range(0..set.len())],
        CharGen::AnyNoNewline => loop {
            let c = sample_scalar(rng);
            if c != '\n' {
                return c;
            }
        },
        CharGen::Printable => loop {
            let c = sample_scalar(rng);
            if !c.is_control() {
                return c;
            }
        },
    }
}

/// A Unicode scalar, biased toward ASCII so boundary-heavy code paths
/// get exercised, with a steady trickle of multi-byte characters.
fn sample_scalar(rng: &mut SmallRng) -> char {
    loop {
        let raw = match rng.gen_range(0u32..10) {
            0..=5 => rng.gen_range(0x20u32..0x7F),
            6 => rng.gen_range(0u32..0x20), // ASCII control (filtered by \PC)
            7 => rng.gen_range(0x80u32..0x800),
            8 => rng.gen_range(0x800u32..0x1_0000),
            _ => rng.gen_range(0x1_0000u32..0x11_0000),
        };
        if let Some(c) = char::from_u32(raw) {
            return c;
        }
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let gen = match chars[i] {
            '.' => {
                i += 1;
                CharGen::AnyNoNewline
            }
            '\\' => {
                i += 1;
                let (gen, used) = parse_escape(&chars[i..], pattern);
                i += used;
                gen
            }
            '[' => {
                i += 1;
                let (gen, used) = parse_class(&chars[i..], pattern);
                i += used;
                gen
            }
            c @ ('*' | '+' | '?' | '{') => {
                panic!("string strategy '{pattern}': dangling quantifier '{c}'")
            }
            c => {
                i += 1;
                CharGen::Literal(c)
            }
        };
        let (min, max, used) = parse_quantifier(&chars[i..], pattern);
        i += used;
        atoms.push(Atom { gen, min, max });
    }
    atoms
}

fn parse_escape(rest: &[char], pattern: &str) -> (CharGen, usize) {
    match rest.first() {
        Some('P') => {
            // Only the `\PC` (non-control) category is supported.
            assert_eq!(
                rest.get(1),
                Some(&'C'),
                "string strategy '{pattern}': unsupported \\P category"
            );
            (CharGen::Printable, 2)
        }
        Some('d') => (CharGen::OneOf(('0'..='9').collect()), 1),
        Some('w') => {
            let mut set: Vec<char> = ('a'..='z').collect();
            set.extend('A'..='Z');
            set.extend('0'..='9');
            set.push('_');
            (CharGen::OneOf(set), 1)
        }
        Some('s') => (CharGen::OneOf(vec![' ', '\t', '\n']), 1),
        Some('n') => (CharGen::Literal('\n'), 1),
        Some('t') => (CharGen::Literal('\t'), 1),
        Some(&c) => (CharGen::Literal(c), 1),
        None => panic!("string strategy '{pattern}': trailing backslash"),
    }
}

fn parse_class(rest: &[char], pattern: &str) -> (CharGen, usize) {
    let mut set = Vec::new();
    let mut i = 0;
    while i < rest.len() && rest[i] != ']' {
        let c = if rest[i] == '\\' {
            i += 1;
            *rest.get(i).unwrap_or_else(|| {
                panic!("string strategy '{pattern}': trailing backslash in class")
            })
        } else {
            rest[i]
        };
        // `a-z` range (a `-` that is last in the class is a literal).
        if rest.get(i + 1) == Some(&'-') && rest.get(i + 2).is_some_and(|&n| n != ']') {
            let end = rest[i + 2];
            assert!(
                c <= end,
                "string strategy '{pattern}': inverted class range {c}-{end}"
            );
            for v in (c as u32)..=(end as u32) {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(
        i < rest.len(),
        "string strategy '{pattern}': unterminated class"
    );
    assert!(!set.is_empty(), "string strategy '{pattern}': empty class");
    (CharGen::OneOf(set), i + 1)
}

/// Returns `(min, max, chars_consumed)`; a missing quantifier is `{1,1}`.
fn parse_quantifier(rest: &[char], pattern: &str) -> (usize, usize, usize) {
    const UNBOUNDED_CAP: usize = 32;
    match rest.first() {
        Some('*') => (0, UNBOUNDED_CAP, 1),
        Some('+') => (1, UNBOUNDED_CAP, 1),
        Some('?') => (0, 1, 1),
        Some('{') => {
            let close = rest
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("string strategy '{pattern}': unterminated {{"));
            let body: String = rest[1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body.parse().unwrap_or_else(|_| {
                        panic!("string strategy '{pattern}': bad quantifier {{{body}}}")
                    });
                    (n, n)
                }
                Some((lo, "")) => {
                    let lo: usize = lo.parse().unwrap_or_else(|_| {
                        panic!("string strategy '{pattern}': bad quantifier {{{body}}}")
                    });
                    (lo, lo + UNBOUNDED_CAP)
                }
                Some((lo, hi)) => {
                    let lo = lo.parse().unwrap_or_else(|_| {
                        panic!("string strategy '{pattern}': bad quantifier {{{body}}}")
                    });
                    let hi = hi.parse().unwrap_or_else(|_| {
                        panic!("string strategy '{pattern}': bad quantifier {{{body}}}")
                    });
                    (lo, hi)
                }
            };
            assert!(
                min <= max,
                "string strategy '{pattern}': {{{body}}} inverted"
            );
            (min, max, close + 1)
        }
        _ => (1, 1, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn class_and_quantifier() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-c]{0,30}", &mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn class_with_literals_and_trailing_dash() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9 _.-]{0,40}", &mut rng);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()
                || c == ' '
                || c == '_'
                || c == '.'
                || c == '-'));
        }
    }

    #[test]
    fn printable_excludes_control() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_matching("\\PC{0,200}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_matching(".{0,50}", &mut rng);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn literals_and_digit_class() {
        let mut rng = rng();
        let s = generate_matching("ab\\d{3}z", &mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("ab") && s.ends_with('z'));
        assert!(s[2..5].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn lengths_cover_the_whole_quantifier_range() {
        let mut rng = rng();
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[generate_matching("x{0,3}", &mut rng).len()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
