//! A self-contained subset of the `proptest` API for offline builds.
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! a minimal property-testing harness with the same surface the tests
//! use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assume!`], [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! regex-subset string strategies, [`collection::vec`] and
//! [`arbitrary::any`].
//!
//! Differences from upstream: no shrinking (failures report the case
//! number of a deterministic, name-seeded generator, so every failure
//! reproduces exactly), and no persistence files.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current test case with a formatted message unless `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fail the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current test case (it does not count toward the case
/// budget) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            loop {
                let (case, mut rng) = match runner.next_case() {
                    Some(next) => next,
                    None => break,
                };
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.record(case, outcome);
            }
        }
    )*};
}
