//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// An element-count specification: a plain `usize`, `a..b` or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.min..=self.size.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_and_element_strategy() {
        let mut rng = SmallRng::seed_from_u64(3);
        let strat = vec(0usize..5, 2..10);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0usize..5, 3..=3).generate(&mut rng);
        assert_eq!(exact.len(), 3);
    }
}
