//! Property tests for the storm-control stages.
//!
//! Three contracts from the issue, each the determinism story of one
//! stage:
//!
//! 1. **Fingerprint stability** — normalization-equivalent renderings
//!    of the same incident (case, punctuation, timestamps, counters)
//!    collide; distinct token streams don't.
//! 2. **Token-bucket determinism** — the admit/deny sequence is a pure
//!    function of the arrival stream: replays agree exactly, and one
//!    source's decisions are independent of every other source's
//!    arrivals.
//! 3. **Breaker totality** — any interleaving of gate/record events at
//!    arbitrary (even non-monotone) timestamps reaches a defined state,
//!    never panics, and replays to the same trip/reject history.

use proptest::prelude::*;
use storm::{
    fingerprint, normalize, BreakerConfig, BreakerSet, Gate, SourceThrottle, ThrottleConfig,
};

/// The splitmix64 finalizer, used here to derive perturbation bits from
/// a generated seed — pure, so every case replays identically.
fn mix(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Render `tokens` as alert text perturbed by `seed`: random case,
/// random punctuation separators, and injected pure-digit noise
/// (timestamps, retry counters) — everything normalization must erase.
fn render_perturbed(tokens: &[String], seed: u64) -> String {
    const SEPS: [&str; 6] = [" ", ", ", "!! ", " - ", "/", ": "];
    let mut out = String::new();
    for (i, token) in tokens.iter().enumerate() {
        if i > 0 {
            let h = mix(seed ^ (i as u64) << 1);
            out.push_str(SEPS[(h % SEPS.len() as u64) as usize]);
            if h & 8 == 0 {
                // Digit debris between tokens: dropped by normalization.
                out.push_str(&format!("{} ", h % 100_000));
            }
        }
        for (j, ch) in token.chars().enumerate() {
            let flip = mix(seed ^ (i as u64) << 20 ^ j as u64) & 1 == 1;
            out.push(if flip { ch.to_ascii_uppercase() } else { ch });
        }
    }
    out
}

/// Lowercase alphabetic tokens of length 2..8 — the survivors of
/// normalization.
fn token_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(proptest::collection::vec(0u8..26, 2..8), 1..8).prop_map(|tokens| {
        tokens
            .iter()
            .map(|letters| letters.iter().map(|&l| (b'a' + l) as char).collect())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalization-equivalent renderings collide; the normalized
    /// stream is exactly the source tokens.
    #[test]
    fn equivalent_renderings_collide(
        tokens in token_strategy(),
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
    ) {
        let a = render_perturbed(&tokens, seed_a);
        let b = render_perturbed(&tokens, seed_b);
        prop_assert_eq!(normalize(&a), tokens.clone(), "rendering {:?}", a);
        prop_assert_eq!(
            fingerprint(&a, "netmon"),
            fingerprint(&b, "netmon"),
            "{:?} vs {:?}", a, b
        );
    }

    /// Distinct token streams (and distinct sources) separate.
    #[test]
    fn distinct_incidents_separate(
        tokens_a in token_strategy(),
        tokens_b in token_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let a = render_perturbed(&tokens_a, seed);
        let b = render_perturbed(&tokens_b, seed);
        if tokens_a != tokens_b {
            prop_assert_ne!(fingerprint(&a, "netmon"), fingerprint(&b, "netmon"));
        }
        // The source must separate fingerprints too.
        prop_assert_ne!(fingerprint(&a, "netmon"), fingerprint(&a, "pagers"));
    }

    /// The token bucket's decision stream is replay-deterministic and
    /// per-source independent: deleting every other source's arrivals
    /// changes nothing for the survivor.
    #[test]
    fn token_bucket_is_deterministic_and_isolated(
        arrivals in proptest::collection::vec((0usize..4, 0u64..5_000), 0..200),
    ) {
        let config = ThrottleConfig { rate_per_sec: 5, burst: 3, max_sources: 8 };
        let sources = ["alpha", "beta", "gamma", "delta"];

        // Replay determinism: two fresh throttles, same stream, same
        // decisions.
        let mut t1 = SourceThrottle::new(config.clone());
        let mut t2 = SourceThrottle::new(config.clone());
        let d1: Vec<bool> = arrivals
            .iter()
            .map(|&(s, at)| t1.try_acquire(sources[s], at).is_ok())
            .collect();
        let d2: Vec<bool> = arrivals
            .iter()
            .map(|&(s, at)| t2.try_acquire(sources[s], at).is_ok())
            .collect();
        prop_assert_eq!(&d1, &d2);
        prop_assert_eq!(t1.dropped_total(), t2.dropped_total());

        // Isolation: replay only source 0's arrivals; its decisions
        // must match the interleaved run's subsequence exactly.
        let mut solo = SourceThrottle::new(config);
        let solo_decisions: Vec<bool> = arrivals
            .iter()
            .filter(|&&(s, _)| s == 0)
            .map(|&(_, at)| solo.try_acquire(sources[0], at).is_ok())
            .collect();
        let interleaved: Vec<bool> = arrivals
            .iter()
            .zip(&d1)
            .filter(|&(&(s, _), _)| s == 0)
            .map(|(_, &ok)| ok)
            .collect();
        prop_assert_eq!(solo_decisions, interleaved);
    }

    /// Breaker totality: arbitrary event sequences (gate, success,
    /// failure) at arbitrary timestamps never panic, keep every team in
    /// a defined state, and replay bit-identically.
    #[test]
    fn breaker_is_total_and_deterministic(
        events in proptest::collection::vec((0usize..3, 0u8..3, 0u64..20_000), 0..300),
        threshold in 1u32..5,
        open_ms in 1u64..5_000,
        probes in 1u32..4,
    ) {
        let config = BreakerConfig {
            failure_threshold: threshold,
            open_ms,
            half_open_probes: probes,
        };
        let teams = ["Net", "Storage", "DNS"];
        let run = |events: &[(usize, u8, u64)]| {
            let mut set = BreakerSet::new(config.clone());
            let mut gates = Vec::new();
            for &(team, kind, at) in events {
                match kind {
                    0 => gates.push(set.gate(teams[team], at) == Gate::Allow),
                    1 => { set.record(teams[team], true, at); }
                    _ => { set.record(teams[team], false, at); }
                }
            }
            (gates, set.trips_total(), set.rejects_total(),
             teams.iter().map(|t| set.state(t)).collect::<Vec<_>>())
        };
        let a = run(&events);
        let b = run(&events);
        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(&a.3, &b.3);

        // Bounds: a set can never reject more than it was asked, nor
        // trip more often than it saw failures.
        let gate_count = events.iter().filter(|e| e.1 == 0).count() as u64;
        let fail_count = events.iter().filter(|e| e.1 == 2).count() as u64;
        prop_assert!(a.2 <= gate_count);
        prop_assert!(a.1 <= fail_count);
    }
}
