//! Stage 4: per-downstream-team circuit breakers.
//!
//! The fleet fan-out (PR 9) already isolates each team's Scout behind
//! `catch_unwind` — but isolation is paid per request: a team whose
//! Scout panics on every incident still costs a panic (and its unwind)
//! on every single fan-out. A breaker remembers: after
//! `failure_threshold` *consecutive* failures the team's circuit opens
//! and the fan-out simply skips it, answering `BreakerOpen` for free.
//! After `open_ms` of cool-down the circuit goes half-open and admits
//! `half_open_probes` trial requests: all-success closes the circuit,
//! any failure re-opens it for another cool-down.
//!
//! The state machine is **total**: any interleaving of `gate`/`record`
//! calls at any timestamps (including reordered ones) transitions to a
//! defined state — the proptests drive it with arbitrary event
//! sequences and assert it never panics and never exceeds its bounds.
//! All transitions are driven by the caller's `now_ms`.

use std::collections::BTreeMap;

/// Breaker tunables, shared by every team.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: u32,
    /// Cool-down before an open circuit admits probes, in milliseconds.
    pub open_ms: u64,
    /// Successful probes required to close a half-open circuit.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    /// Trip after 5 consecutive failures, cool down 10 s, close after 2
    /// successful probes.
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_ms: 10_000,
            half_open_probes: 2,
        }
    }
}

/// Where one team's circuit stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests are refused until the cool-down lapses.
    Open,
    /// Cooling down: a bounded number of probe requests are admitted.
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// Closed: consecutive failures so far.
    failures: u32,
    /// Open: when the circuit tripped.
    opened_ms: u64,
    /// HalfOpen: probes still admitted / successes still required.
    probes_left: u32,
    successes: u32,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            failures: 0,
            opened_ms: 0,
            probes_left: 0,
            successes: 0,
        }
    }
}

/// One team's gate decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Run the Scout.
    Allow,
    /// Circuit open: skip the Scout, answer `BreakerOpen`.
    Reject,
}

/// The per-team breaker table. Teams not yet seen are closed.
#[derive(Debug)]
pub struct BreakerSet {
    config: BreakerConfig,
    breakers: BTreeMap<String, Breaker>,
    trips_total: u64,
    rejects_total: u64,
}

impl BreakerSet {
    pub fn new(config: BreakerConfig) -> BreakerSet {
        BreakerSet {
            config,
            breakers: BTreeMap::new(),
            trips_total: 0,
            rejects_total: 0,
        }
    }

    /// Should `team`'s Scout run at `now_ms`? Drives the open → half-open
    /// transition and consumes a probe slot when half-open.
    pub fn gate(&mut self, team: &str, now_ms: u64) -> Gate {
        let config = self.config.clone();
        let breaker = self
            .breakers
            .entry(team.to_string())
            .or_insert_with(Breaker::new);
        match breaker.state {
            BreakerState::Closed => Gate::Allow,
            BreakerState::Open => {
                if now_ms.saturating_sub(breaker.opened_ms) >= config.open_ms {
                    breaker.state = BreakerState::HalfOpen;
                    breaker.probes_left = config.half_open_probes.max(1);
                    breaker.successes = 0;
                    self.probe(team)
                } else {
                    self.rejects_total += 1;
                    Gate::Reject
                }
            }
            BreakerState::HalfOpen => self.probe(team),
        }
    }

    fn probe(&mut self, team: &str) -> Gate {
        let breaker = self.breakers.get_mut(team).expect("probe on known team");
        if breaker.probes_left > 0 {
            breaker.probes_left -= 1;
            Gate::Allow
        } else {
            // Probes outstanding: hold further traffic until they report.
            self.rejects_total += 1;
            Gate::Reject
        }
    }

    /// Report how `team`'s Scout fared. `trip` callbacks fire exactly
    /// when a circuit transitions closed/half-open → open.
    pub fn record(&mut self, team: &str, ok: bool, now_ms: u64) -> Option<BreakerState> {
        let config = self.config.clone();
        let breaker = self
            .breakers
            .entry(team.to_string())
            .or_insert_with(Breaker::new);
        match breaker.state {
            BreakerState::Closed => {
                if ok {
                    breaker.failures = 0;
                } else {
                    breaker.failures += 1;
                    if breaker.failures >= config.failure_threshold.max(1) {
                        breaker.state = BreakerState::Open;
                        breaker.opened_ms = now_ms;
                        breaker.failures = 0;
                        self.trips_total += 1;
                        return Some(BreakerState::Open);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    breaker.successes += 1;
                    if breaker.successes >= config.half_open_probes.max(1) {
                        breaker.state = BreakerState::Closed;
                        breaker.failures = 0;
                        return Some(BreakerState::Closed);
                    }
                } else {
                    breaker.state = BreakerState::Open;
                    breaker.opened_ms = now_ms;
                    self.trips_total += 1;
                    return Some(BreakerState::Open);
                }
            }
            // A late report against an open circuit (e.g. a Scout that
            // finished after the trip) changes nothing.
            BreakerState::Open => {}
        }
        None
    }

    /// `team`'s current state (teams never seen are closed).
    pub fn state(&self, team: &str) -> BreakerState {
        self.breakers
            .get(team)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// Teams whose circuit is currently open or half-open, sorted.
    pub fn tripped_teams(&self) -> Vec<String> {
        self.breakers
            .iter()
            .filter(|(_, b)| b.state != BreakerState::Closed)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Circuits currently open or half-open.
    pub fn open_count(&self) -> usize {
        self.breakers
            .values()
            .filter(|b| b.state != BreakerState::Closed)
            .count()
    }

    /// Lifetime closed/half-open → open transitions.
    pub fn trips_total(&self) -> u64 {
        self.trips_total
    }

    /// Lifetime gate rejections.
    pub fn rejects_total(&self) -> u64 {
        self.rejects_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(threshold: u32, open_ms: u64, probes: u32) -> BreakerSet {
        BreakerSet::new(BreakerConfig {
            failure_threshold: threshold,
            open_ms,
            half_open_probes: probes,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = set(3, 1000, 1);
        b.record("t", false, 0);
        b.record("t", true, 1); // success resets the streak
        b.record("t", false, 2);
        b.record("t", false, 3);
        assert_eq!(b.state("t"), BreakerState::Closed);
        assert_eq!(b.record("t", false, 4), Some(BreakerState::Open));
        assert_eq!(b.gate("t", 5), Gate::Reject);
        assert_eq!(b.trips_total(), 1);
    }

    #[test]
    fn cooldown_half_open_then_close() {
        let mut b = set(1, 1000, 2);
        b.record("t", false, 0);
        assert_eq!(b.state("t"), BreakerState::Open);
        assert_eq!(b.gate("t", 500), Gate::Reject);
        // Cool-down lapsed: two probes admitted, a third held.
        assert_eq!(b.gate("t", 1000), Gate::Allow);
        assert_eq!(b.gate("t", 1000), Gate::Allow);
        assert_eq!(b.gate("t", 1000), Gate::Reject);
        b.record("t", true, 1001);
        assert_eq!(b.record("t", true, 1002), Some(BreakerState::Closed));
        assert_eq!(b.gate("t", 1003), Gate::Allow);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = set(1, 1000, 1);
        b.record("t", false, 0);
        assert_eq!(b.gate("t", 1000), Gate::Allow);
        assert_eq!(b.record("t", false, 1001), Some(BreakerState::Open));
        // The fresh cool-down starts at the re-open instant.
        assert_eq!(b.gate("t", 1500), Gate::Reject);
        assert_eq!(b.gate("t", 2001), Gate::Allow);
        assert_eq!(b.trips_total(), 2);
    }

    #[test]
    fn teams_are_independent() {
        let mut b = set(1, 1000, 1);
        b.record("sick", false, 0);
        assert_eq!(b.gate("sick", 1), Gate::Reject);
        assert_eq!(b.gate("healthy", 1), Gate::Allow);
        assert_eq!(b.tripped_teams(), vec!["sick".to_string()]);
    }

    #[test]
    fn late_report_on_open_circuit_is_inert() {
        let mut b = set(1, 1000, 1);
        b.record("t", false, 0);
        assert_eq!(b.record("t", true, 1), None);
        assert_eq!(b.state("t"), BreakerState::Open);
    }
}
