//! Stage 2: per-source token-bucket throttling.
//!
//! Each alert source (a monitoring system, a paging integration, a
//! synthetic generator) gets its own bucket, so one misbehaving source
//! flooding the front door cannot starve the others — the paper's
//! retrospective-flood scenario. Buckets are integer fixed-point
//! (millitokens), refilled lazily from the caller's `now_ms`, so the
//! arithmetic is exact and the whole stage is a pure function of the
//! arrival sequence: replaying the same `(source, now_ms)` stream
//! yields the same admit/deny decisions, bit for bit, on any machine.
//!
//! The source map is bounded: when a flood invents more source names
//! than `max_sources`, the least-recently-seen bucket is evicted (ties
//! broken by name, so eviction is deterministic too).

use std::collections::BTreeMap;

/// Millitokens per token: one admitted request costs `SCALE`.
const SCALE: u64 = 1000;

/// Token-bucket tunables, shared by every source.
#[derive(Debug, Clone)]
pub struct ThrottleConfig {
    /// Sustained admit rate per source, tokens per second.
    pub rate_per_sec: u32,
    /// Bucket capacity: how many requests a quiet source may burst.
    pub burst: u32,
    /// Maximum sources tracked at once.
    pub max_sources: usize,
}

impl Default for ThrottleConfig {
    /// 50 incidents/second sustained with a 100-incident burst headroom
    /// per source — far above any human-scale alert flow, low enough
    /// that a 100x storm from one source is mostly refused at the door.
    fn default() -> ThrottleConfig {
        ThrottleConfig {
            rate_per_sec: 50,
            burst: 100,
            max_sources: 1024,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    /// Millitokens currently available.
    millitokens: u64,
    /// Last refill instant.
    refilled_ms: u64,
    /// Last time this source was seen (eviction order).
    seen_ms: u64,
}

/// The per-source bucket table.
#[derive(Debug)]
pub struct SourceThrottle {
    config: ThrottleConfig,
    buckets: BTreeMap<String, Bucket>,
    dropped_total: u64,
}

impl SourceThrottle {
    pub fn new(config: ThrottleConfig) -> SourceThrottle {
        SourceThrottle {
            config,
            buckets: BTreeMap::new(),
            dropped_total: 0,
        }
    }

    /// Admit one request from `source` at `now_ms`, or refuse it with
    /// the number of milliseconds after which a retry would succeed.
    pub fn try_acquire(&mut self, source: &str, now_ms: u64) -> Result<(), u64> {
        let rate = self.config.rate_per_sec.max(1) as u64;
        let capacity = SCALE * self.config.burst.max(1) as u64;
        if !self.buckets.contains_key(source) {
            self.admit_source(source, now_ms, capacity);
        }
        let bucket = self.buckets.get_mut(source).expect("just inserted");
        // Lazy refill: elapsed ms × rate(tokens/s) = elapsed millitokens
        // per second × … — with SCALE=1000 the units line up exactly:
        // one ms contributes `rate` millitokens.
        let elapsed = now_ms.saturating_sub(bucket.refilled_ms);
        bucket.millitokens = (bucket.millitokens + elapsed * rate).min(capacity);
        bucket.refilled_ms = bucket.refilled_ms.max(now_ms);
        bucket.seen_ms = bucket.seen_ms.max(now_ms);
        if bucket.millitokens >= SCALE {
            bucket.millitokens -= SCALE;
            Ok(())
        } else {
            self.dropped_total += 1;
            let deficit = SCALE - bucket.millitokens;
            // Ceiling division: the first ms at which the bucket holds a
            // whole token again.
            Err(deficit.div_ceil(rate).max(1))
        }
    }

    /// Total refusals over this throttle's lifetime.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Sources currently tracked.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    fn admit_source(&mut self, source: &str, now_ms: u64, capacity: u64) {
        while self.buckets.len() >= self.config.max_sources.max(1) {
            // Least-recently-seen evicts first; BTreeMap order makes the
            // tie-break (smallest name) deterministic.
            let victim = self
                .buckets
                .iter()
                .min_by_key(|(name, b)| (b.seen_ms, name.as_str().to_owned()))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => self.buckets.remove(&name),
                None => break,
            };
        }
        self.buckets.insert(
            source.to_string(),
            Bucket {
                millitokens: capacity,
                refilled_ms: now_ms,
                seen_ms: now_ms,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throttle(rate: u32, burst: u32) -> SourceThrottle {
        SourceThrottle::new(ThrottleConfig {
            rate_per_sec: rate,
            burst,
            max_sources: 4,
        })
    }

    #[test]
    fn burst_then_refusal_then_refill() {
        let mut t = throttle(10, 3);
        assert!(t.try_acquire("netmon", 0).is_ok());
        assert!(t.try_acquire("netmon", 0).is_ok());
        assert!(t.try_acquire("netmon", 0).is_ok());
        let retry = t.try_acquire("netmon", 0).unwrap_err();
        assert_eq!(retry, 100, "10/s → a whole token every 100 ms");
        // After the advertised wait, the retry succeeds.
        assert!(t.try_acquire("netmon", retry).is_ok());
        assert_eq!(t.dropped_total(), 1);
    }

    #[test]
    fn sources_are_isolated() {
        let mut t = throttle(10, 1);
        assert!(t.try_acquire("flooder", 0).is_ok());
        assert!(t.try_acquire("flooder", 0).is_err());
        // A different source is untouched by the flooder's empty bucket.
        assert!(t.try_acquire("quiet", 0).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut t = throttle(1000, 2);
        assert!(t.try_acquire("s", 0).is_ok());
        assert!(t.try_acquire("s", 0).is_ok());
        // A long quiet period refills to burst, not beyond.
        for _ in 0..2 {
            assert!(t.try_acquire("s", 100_000).is_ok());
        }
        assert!(t.try_acquire("s", 100_000).is_err());
    }

    #[test]
    fn reordered_arrivals_never_refill_backwards() {
        let mut t = throttle(10, 1);
        assert!(t.try_acquire("s", 1000).is_ok());
        // An arrival stamped in the past neither panics nor mints tokens.
        assert!(t.try_acquire("s", 500).is_err());
    }

    #[test]
    fn source_table_is_bounded_with_deterministic_eviction() {
        let mut t = throttle(10, 1);
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert!(t.try_acquire(name, i as u64).is_ok());
        }
        assert_eq!(t.len(), 4);
        // A fifth source evicts "a" (least recently seen).
        assert!(t.try_acquire("e", 10).is_ok());
        assert_eq!(t.len(), 4);
        // "a" comes back with a full (fresh) bucket: it was evicted.
        assert!(t.try_acquire("a", 10).is_ok());
    }
}
