//! Stage 1: dedup of repeated firings.
//!
//! A bounded, time-windowed table keyed by content fingerprint. The
//! first firing of an alert is **fresh** — it routes normally, and the
//! caller stores the rendered decision back into the table. Every
//! further firing of the same fingerprint inside the window is a
//! **duplicate**: it is answered from the original's cached decision
//! (when the original has finished routing) and only bumps a counter,
//! never touching the fleet. When the window lapses the fingerprint is
//! fresh again — alerts that genuinely re-fire hours later deserve a
//! fresh fan-out against fresher models.
//!
//! Bounded two ways: entries expire by age (the window), and the table
//! holds at most `capacity` fingerprints — when full, the entry with
//! the oldest first-firing evicts first (ties broken by fingerprint, so
//! eviction is deterministic). Everything is driven by the caller's
//! `now_ms`; the table never reads a clock.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Dedup-table tunables.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// How long a fingerprint suppresses repeats, in milliseconds.
    pub window_ms: u64,
    /// Maximum distinct fingerprints tracked at once.
    pub capacity: usize,
}

impl Default for DedupConfig {
    /// A 60-second suppression window over at most 4096 distinct alerts
    /// — sized for "thousands of near-duplicate firings per minute".
    fn default() -> DedupConfig {
        DedupConfig {
            window_ms: 60_000,
            capacity: 4096,
        }
    }
}

/// What the table says about one firing.
#[derive(Debug, Clone)]
pub enum DedupOutcome {
    /// First firing in the window: route it, then
    /// [`store_decision`](DedupTable::store_decision).
    Fresh,
    /// A repeat. `duplicates` counts suppressed firings so far (this one
    /// included); `decision` is the original's cached rendered decision,
    /// or `None` while the original is still in flight.
    Duplicate {
        duplicates: u64,
        decision: Option<Arc<String>>,
    },
}

#[derive(Debug)]
struct Entry {
    first_ms: u64,
    duplicates: u64,
    decision: Option<Arc<String>>,
}

/// The bounded, windowed fingerprint table.
#[derive(Debug)]
pub struct DedupTable {
    config: DedupConfig,
    entries: BTreeMap<u64, Entry>,
    suppressed_total: u64,
}

impl DedupTable {
    pub fn new(config: DedupConfig) -> DedupTable {
        DedupTable {
            config,
            entries: BTreeMap::new(),
            suppressed_total: 0,
        }
    }

    /// Record one firing of `fp` at `now_ms` and classify it.
    pub fn observe(&mut self, fp: u64, now_ms: u64) -> DedupOutcome {
        self.sweep(now_ms);
        match self.entries.get_mut(&fp) {
            Some(entry) => {
                entry.duplicates += 1;
                self.suppressed_total += 1;
                DedupOutcome::Duplicate {
                    duplicates: entry.duplicates,
                    decision: entry.decision.clone(),
                }
            }
            None => {
                if self.entries.len() >= self.config.capacity.max(1) {
                    self.evict_oldest();
                }
                self.entries.insert(
                    fp,
                    Entry {
                        first_ms: now_ms,
                        duplicates: 0,
                        decision: None,
                    },
                );
                DedupOutcome::Fresh
            }
        }
    }

    /// Attach the rendered routing decision to `fp`, so later duplicates
    /// in the window are answered without a fan-out. A no-op if the
    /// entry already expired or was evicted.
    pub fn store_decision(&mut self, fp: u64, decision: String) {
        if let Some(entry) = self.entries.get_mut(&fp) {
            entry.decision = Some(Arc::new(decision));
        }
    }

    /// Fingerprints currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total firings suppressed over this table's lifetime.
    pub fn suppressed_total(&self) -> u64 {
        self.suppressed_total
    }

    /// Drop entries whose window has lapsed. `now_ms` earlier than an
    /// entry's `first_ms` (a reordered arrival) keeps the entry — age
    /// only ever accrues forward.
    fn sweep(&mut self, now_ms: u64) {
        let window = self.config.window_ms;
        self.entries
            .retain(|_, e| now_ms.saturating_sub(e.first_ms) <= window);
    }

    fn evict_oldest(&mut self) {
        // BTreeMap iteration is fingerprint-ordered, so the min_by_key
        // tie-break is the smallest fingerprint — deterministic.
        let victim = self
            .entries
            .iter()
            .min_by_key(|(fp, e)| (e.first_ms, **fp))
            .map(|(fp, _)| *fp);
        if let Some(fp) = victim {
            self.entries.remove(&fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(window_ms: u64, capacity: usize) -> DedupTable {
        DedupTable::new(DedupConfig {
            window_ms,
            capacity,
        })
    }

    #[test]
    fn first_firing_is_fresh_then_duplicates_count_up() {
        let mut t = table(1000, 16);
        assert!(matches!(t.observe(7, 0), DedupOutcome::Fresh));
        t.store_decision(7, "decision-body".into());
        for i in 1..=5u64 {
            match t.observe(7, i * 10) {
                DedupOutcome::Duplicate {
                    duplicates,
                    decision,
                } => {
                    assert_eq!(duplicates, i);
                    assert_eq!(
                        decision.as_deref().map(|s| s.as_str()),
                        Some("decision-body")
                    );
                }
                other => panic!("expected duplicate, got {other:?}"),
            }
        }
        assert_eq!(t.suppressed_total(), 5);
    }

    #[test]
    fn duplicate_before_decision_lands_has_no_body() {
        let mut t = table(1000, 16);
        t.observe(7, 0);
        match t.observe(7, 1) {
            DedupOutcome::Duplicate { decision, .. } => assert!(decision.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn window_lapse_makes_the_alert_fresh_again() {
        let mut t = table(1000, 16);
        t.observe(7, 0);
        assert!(matches!(t.observe(7, 500), DedupOutcome::Duplicate { .. }));
        assert!(matches!(t.observe(7, 1001), DedupOutcome::Fresh));
    }

    #[test]
    fn capacity_evicts_the_oldest_first_firing() {
        let mut t = table(10_000, 2);
        t.observe(1, 0);
        t.observe(2, 10);
        t.observe(3, 20); // evicts fp=1 (oldest)
        assert_eq!(t.len(), 2);
        assert!(matches!(t.observe(1, 30), DedupOutcome::Fresh));
    }

    #[test]
    fn reordered_arrival_does_not_expire_entries() {
        let mut t = table(1000, 16);
        t.observe(7, 500);
        // A firing stamped *earlier* than first sight still suppresses.
        assert!(matches!(t.observe(7, 100), DedupOutcome::Duplicate { .. }));
    }
}
