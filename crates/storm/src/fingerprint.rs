//! Content fingerprints for incident dedup.
//!
//! A storm is thousands of firings that are *almost* the same text: the
//! same alert template stamped with different timestamps, counters, and
//! case. The fingerprint must collide for those and separate genuinely
//! different incidents, so it hashes a *normalized token stream* — not
//! the raw bytes:
//!
//! * ASCII-lowercased, split on every non-alphanumeric byte;
//! * single-character tokens dropped (they are template punctuation and
//!   sequence-number debris, not content);
//! * pure-digit tokens dropped (timestamps, counters, retry ordinals —
//!   the parts that differ between firings of the same alert).
//!
//! Tokens feed FNV-1a with a separator byte (so token *boundaries*
//! matter: `["ab","c"]` ≠ `["a","bc"]`), the source string is mixed in
//! the same way, and the result goes through the splitmix64 finalizer —
//! the same stable, process-independent hashing idiom `featcache` and
//! `serve::fleet` use. No per-process seeding: two servers agree on
//! every fingerprint.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A token-boundary separator outside the normalized alphabet.
const SEP: u8 = 0x1f;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a_byte(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Is this token alert *content* (kept) or firing debris (dropped)?
fn keep_token(token: &[u8]) -> bool {
    token.len() >= 2 && !token.iter().all(|b| b.is_ascii_digit())
}

/// The normalized token stream of `text`, materialized. The fingerprint
/// itself never allocates this; it exists for tests and for callers that
/// want to inspect what two colliding incidents had in common.
pub fn normalize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = Vec::new();
    for &b in text.as_bytes() {
        if b.is_ascii_alphanumeric() {
            current.push(b.to_ascii_lowercase());
        } else if !current.is_empty() {
            if keep_token(&current) {
                tokens.push(String::from_utf8(std::mem::take(&mut current)).unwrap());
            } else {
                current.clear();
            }
        }
    }
    if keep_token(&current) {
        tokens.push(String::from_utf8(current).unwrap());
    }
    tokens
}

/// Fingerprint of `(text, source)`: stable across processes, equal
/// exactly when the normalized token streams and sources are equal.
pub fn fingerprint(text: &str, source: &str) -> u64 {
    let mut h = FNV_OFFSET;
    // Stream the normalized tokens straight into the hash — one pass,
    // no token vector.
    let mut token = [0u8; 64];
    let mut len = 0usize;
    let mut overflow: Vec<u8> = Vec::new();
    let flush = |h: &mut u64, token: &[u8], overflow: &mut Vec<u8>| {
        let full: &[u8] = if overflow.is_empty() {
            token
        } else {
            overflow.extend_from_slice(token);
            overflow
        };
        if keep_token(full) {
            for &b in full {
                *h = fnv1a_byte(*h, b);
            }
            *h = fnv1a_byte(*h, SEP);
        }
        overflow.clear();
    };
    for &b in text.as_bytes() {
        if b.is_ascii_alphanumeric() {
            if len == token.len() {
                overflow.extend_from_slice(&token);
                len = 0;
            }
            token[len] = b.to_ascii_lowercase();
            len += 1;
        } else if len > 0 || !overflow.is_empty() {
            flush(&mut h, &token[..len], &mut overflow);
            len = 0;
        }
    }
    if len > 0 || !overflow.is_empty() {
        flush(&mut h, &token[..len], &mut overflow);
    }
    // Mix the source under a distinct tag byte so ("a", "b") never
    // collides with ("a b", "").
    h = fnv1a_byte(h, 0x02);
    for &b in source.as_bytes() {
        h = fnv1a_byte(h, b.to_ascii_lowercase());
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_drops_case_punctuation_and_counters() {
        assert_eq!(
            normalize("Switch AGG-3 down!! (retry 1718231) at 12:04:55"),
            vec!["switch", "agg", "down", "retry", "at"]
        );
    }

    #[test]
    fn equivalent_firings_collide() {
        let a = fingerprint("Switch agg-3 in c1.dc1 CRC errors, retry 17", "netmon");
        let b = fingerprint("SWITCH   agg-3 in c1/dc1 CRC errors; retry 9821", "NetMon");
        assert_eq!(a, b);
    }

    #[test]
    fn different_content_or_source_separates() {
        let base = fingerprint("Switch agg-3 CRC errors", "netmon");
        assert_ne!(base, fingerprint("Switch agg-4x CRC errors", "netmon"));
        assert_ne!(base, fingerprint("Switch agg-3 CRC errors", "syslog"));
    }

    #[test]
    fn token_boundaries_matter() {
        assert_ne!(fingerprint("ab cd", "s"), fingerprint("abcd", "s"));
    }

    #[test]
    fn long_tokens_hash_like_their_normalized_stream() {
        // Exercise the stack-buffer overflow path (> 64-byte token).
        let long = "x".repeat(200);
        let text = format!("alpha {long} beta");
        let fp1 = fingerprint(&text, "s");
        let fp2 = fingerprint(&format!("ALPHA {} BETA", long.to_uppercase()), "s");
        assert_eq!(fp1, fp2);
        assert_ne!(fp1, fingerprint("alpha beta", "s"));
    }
}
