//! The storm layer's notion of time: milliseconds since an origin.
//!
//! Every stage in this crate is a pure function of its inputs *plus a
//! `now_ms` argument* — none of them read the wall clock themselves.
//! [`Clock`] is how the composed [`StormControl`](crate::StormControl)
//! supplies that argument: production uses [`Clock::wall`] (monotonic
//! milliseconds since construction), tests use [`Clock::manual`] and
//! advance time explicitly, which is what makes suppression windows,
//! bucket refills, and breaker cool-downs reproducible down to the
//! millisecond.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A millisecond clock: monotonic wall time or a hand-cranked counter.
#[derive(Clone)]
pub enum Clock {
    /// Monotonic milliseconds since the clock was created.
    Wall { origin: Instant },
    /// Milliseconds owned by the test: see [`ManualClock`].
    Manual(ManualClock),
}

impl Clock {
    /// A production clock anchored at "now".
    pub fn wall() -> Clock {
        Clock::Wall {
            origin: Instant::now(),
        }
    }

    /// A test clock starting at 0 ms, advanced explicitly.
    pub fn manual() -> (Clock, ManualClock) {
        let handle = ManualClock(Arc::new(AtomicU64::new(0)));
        (Clock::Manual(handle.clone()), handle)
    }

    /// Milliseconds since this clock's origin.
    pub fn now_ms(&self) -> u64 {
        match self {
            Clock::Wall { origin } => origin.elapsed().as_millis() as u64,
            Clock::Manual(m) => m.0.load(Ordering::SeqCst),
        }
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Clock::Wall { .. } => write!(f, "Clock::Wall"),
            Clock::Manual(m) => write!(f, "Clock::Manual({})", m.0.load(Ordering::SeqCst)),
        }
    }
}

/// The advancing end of a manual clock. Cloneable; all clones share the
/// same counter.
#[derive(Clone)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// Move time forward by `ms`.
    pub fn advance(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }

    /// Jump to an absolute millisecond reading (may go backwards; tests
    /// that model reordered arrivals use this deliberately).
    pub fn set(&self, ms: u64) {
        self.0.store(ms, Ordering::SeqCst);
    }

    /// The current reading.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_and_explicit() {
        let (clock, handle) = Clock::manual();
        assert_eq!(clock.now_ms(), 0);
        handle.advance(250);
        assert_eq!(clock.now_ms(), 250);
        handle.set(10);
        assert_eq!(clock.now_ms(), 10);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = Clock::wall();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}
