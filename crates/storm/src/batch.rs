//! Stage 3 policy: which incidents coalesce, and into how much.
//!
//! Low-severity incidents are the bulk of a storm and the least urgent
//! work in it: a Sev3 ticket tolerates a few extra milliseconds of
//! queueing if that buys the fleet one shared `MonitoringSystem` build
//! for a whole batch of incidents (the same economics as the predict
//! micro-batcher). This module is the *policy* half — severity
//! classification and the coalescing knobs; the queue itself lives in
//! `serve`, next to the fleet dispatcher it feeds, because a batch is
//! executed as one multi-incident fan-out.

/// Incident severity as the storm layer sees it. Mirrors cloudsim's
/// `Severity` (Sev1 page → Sev3 ticket) without depending on it: the
/// wire format is a plain `"severity": 1..=3` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Page: outage-grade, never queued.
    Sev1,
    /// Alert: degraded, never queued.
    Sev2,
    /// Ticket: background-grade, eligible for coalescing.
    Sev3,
}

impl Severity {
    /// Parse the wire level (1..=3). Absent/garbage levels are the
    /// caller's problem; `/v1/route` defaults to Sev2 so unannotated
    /// traffic never queues.
    pub fn from_level(level: u64) -> Option<Severity> {
        match level {
            1 => Some(Severity::Sev1),
            2 => Some(Severity::Sev2),
            3 => Some(Severity::Sev3),
            _ => None,
        }
    }

    /// The wire level.
    pub fn level(self) -> u64 {
        match self {
            Severity::Sev1 => 1,
            Severity::Sev2 => 2,
            Severity::Sev3 => 3,
        }
    }
}

/// Coalescing knobs for low-severity routing.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Maximum incidents per coalesced fan-out.
    pub max_batch: usize,
    /// How long an open batch waits for company, in milliseconds.
    pub max_wait_ms: u64,
}

impl Default for BatchPolicy {
    /// Up to 16 Sev3 incidents share a fan-out; none waits more than
    /// 5 ms — small against the 250 ms latency SLO.
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_batch: 16,
            max_wait_ms: 5,
        }
    }
}

impl BatchPolicy {
    /// Does `severity` queue into a coalesced pass?
    pub fn should_batch(&self, severity: Severity) -> bool {
        self.max_batch > 1 && severity == Severity::Sev3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_round_trip() {
        for level in 1..=3 {
            assert_eq!(Severity::from_level(level).unwrap().level(), level);
        }
        assert_eq!(Severity::from_level(0), None);
        assert_eq!(Severity::from_level(4), None);
    }

    #[test]
    fn only_sev3_batches() {
        let policy = BatchPolicy::default();
        assert!(!policy.should_batch(Severity::Sev1));
        assert!(!policy.should_batch(Severity::Sev2));
        assert!(policy.should_batch(Severity::Sev3));
        let off = BatchPolicy {
            max_batch: 1,
            ..BatchPolicy::default()
        };
        assert!(!off.should_batch(Severity::Sev3));
    }
}
