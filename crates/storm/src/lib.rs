//! `storm` — the alert-storm control plane in front of `/v1/route`.
//!
//! An alert storm is the adversarial workload the paper's robustness
//! story (§8) worries about: thousands of near-duplicate firings per
//! minute, correlated gray failures, cascades that page half the fleet
//! at once. Routing every firing through a full fleet fan-out burns the
//! whole serving budget on redundant work and starves the incidents
//! that matter. This crate is the suppression front-end that stands
//! between HTTP admission and the fleet dispatcher, in four stages:
//!
//! 1. **Dedup** ([`DedupTable`]): a content [`fingerprint`] over the
//!    normalized incident text + source collapses repeated firings
//!    within a bounded time window into one routed incident; suppressed
//!    duplicates are answered from the original's cached decision.
//! 2. **Throttling** ([`SourceThrottle`]): per-source token buckets so
//!    one flooding source cannot starve the rest.
//! 3. **Batching policy** ([`BatchPolicy`]): low-severity incidents are
//!    flagged for coalesced fan-out passes (the queue lives in `serve`,
//!    next to the dispatcher it feeds).
//! 4. **Circuit breakers** ([`BreakerSet`]): per-downstream-team
//!    closed/open/half-open circuits over the fan-out's per-team error
//!    outcomes, tripping broken teams out of the fan-out entirely.
//!
//! **Determinism.** No stage reads a clock or a random source: every
//! decision is a pure function of the call sequence and the `now_ms`
//! each call carries, supplied by an injected [`Clock`] (wall for
//! production, [`ManualClock`] for tests). Inside [`StormControl`] each
//! stage sits behind its own mutex, so concurrent requests serialize
//! into *some* arrival order and the decisions are exactly what the
//! sequential replay of that order would produce — the same
//! "bit-identical to the sequential twin" contract the pool, the
//! feature cache, and the sharded fan-out uphold. Non-storm traffic
//! (unique text, within rate, no failing teams) passes every stage
//! untouched, which is what keeps its routing decisions byte-identical
//! with the layer on or off.

mod batch;
mod breaker;
mod clock;
mod dedup;
mod fingerprint;
mod throttle;

pub use batch::{BatchPolicy, Severity};
pub use breaker::{BreakerConfig, BreakerSet, BreakerState, Gate};
pub use clock::{Clock, ManualClock};
pub use dedup::{DedupConfig, DedupOutcome, DedupTable};
pub use fingerprint::{fingerprint, normalize};
pub use throttle::{SourceThrottle, ThrottleConfig};

use std::sync::Mutex;

/// Source name assumed when a request does not declare one.
pub const DEFAULT_SOURCE: &str = "unknown";

/// The composed storm-control configuration.
#[derive(Debug, Clone, Default)]
pub struct StormConfig {
    pub dedup: DedupConfig,
    pub throttle: ThrottleConfig,
    pub batch: BatchPolicy,
    pub breaker: BreakerConfig,
}

/// All four stages behind one façade, metered through `obs`.
///
/// Each stage guards its own state with a mutex; the lock acquisition
/// order *is* the decision order, so a concurrent run is always
/// equivalent to some sequential replay (see the crate docs).
pub struct StormControl {
    config: StormConfig,
    clock: Clock,
    dedup: Mutex<DedupTable>,
    throttle: Mutex<SourceThrottle>,
    breakers: Mutex<BreakerSet>,
}

impl StormControl {
    /// A production control plane on the wall clock.
    pub fn new(config: StormConfig) -> StormControl {
        StormControl::with_clock(config, Clock::wall())
    }

    /// A control plane on an explicit clock (tests).
    pub fn with_clock(config: StormConfig, clock: Clock) -> StormControl {
        StormControl {
            dedup: Mutex::new(DedupTable::new(config.dedup.clone())),
            throttle: Mutex::new(SourceThrottle::new(config.throttle.clone())),
            breakers: Mutex::new(BreakerSet::new(config.breaker.clone())),
            config,
            clock,
        }
    }

    pub fn config(&self) -> &StormConfig {
        &self.config
    }

    /// The injected clock's current reading.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Stage 2: admit one request from `source`, or refuse with the
    /// milliseconds until a retry would succeed.
    pub fn admit(&self, source: &str, now_ms: u64) -> Result<(), u64> {
        let mut throttle = self.throttle.lock().unwrap();
        match throttle.try_acquire(source, now_ms) {
            Ok(()) => Ok(()),
            Err(retry_ms) => {
                let dropped = throttle.dropped_total();
                drop(throttle);
                obs::counter("storm.throttle.dropped").inc();
                // One alert at the first drop, then a deterministic
                // milestone cadence — a 100x flood must not flood the
                // flight ring too.
                if dropped == 1 || dropped.is_multiple_of(1000) {
                    obs::flight().alert(
                        "storm-throttle",
                        &format!("source {source:?} over rate; {dropped} dropped so far"),
                    );
                }
                Err(retry_ms)
            }
        }
    }

    /// Stage 1: classify one firing. Returns the fingerprint (for
    /// [`store_decision`](StormControl::store_decision)) and the
    /// dedup outcome.
    pub fn observe(&self, text: &str, source: &str, now_ms: u64) -> (u64, DedupOutcome) {
        let fp = fingerprint(text, source);
        let mut dedup = self.dedup.lock().unwrap();
        let outcome = dedup.observe(fp, now_ms);
        let suppressed = dedup.suppressed_total();
        drop(dedup);
        match &outcome {
            DedupOutcome::Fresh => obs::counter("storm.dedup.fresh").inc(),
            DedupOutcome::Duplicate { duplicates, .. } => {
                obs::counter("storm.dedup.suppressed").inc();
                // First duplicate of a fingerprint = one alert per storm;
                // then a milestone cadence for scale.
                if *duplicates == 1 || suppressed.is_multiple_of(1000) {
                    obs::flight().alert(
                        "storm-dedup",
                        &format!(
                            "fingerprint {fp:016x} suppressing (dup #{duplicates}, {suppressed} total)"
                        ),
                    );
                }
            }
        }
        (fp, outcome)
    }

    /// Cache the rendered decision for `fp` so later duplicates answer
    /// without a fan-out.
    pub fn store_decision(&self, fp: u64, decision: String) {
        self.dedup.lock().unwrap().store_decision(fp, decision);
    }

    /// Stage 4 gate: should `team`'s Scout run?
    pub fn gate(&self, team: &str, now_ms: u64) -> Gate {
        let gate = self.breakers.lock().unwrap().gate(team, now_ms);
        if gate == Gate::Reject {
            obs::counter("storm.breaker.rejected").inc();
        }
        gate
    }

    /// Stage 4 report: how `team`'s Scout fared.
    pub fn record_outcome(&self, team: &str, ok: bool, now_ms: u64) {
        let mut breakers = self.breakers.lock().unwrap();
        let transition = breakers.record(team, ok, now_ms);
        let open = breakers.open_count();
        drop(breakers);
        obs::gauge("storm.breaker.open_count").set(open as f64);
        match transition {
            Some(BreakerState::Open) => {
                obs::counter("storm.breaker.open").inc();
                obs::flight().alert("storm-breaker-open", &format!("team {team:?} tripped open"));
            }
            Some(BreakerState::Closed) => {
                obs::counter("storm.breaker.closed").inc();
                obs::flight().alert(
                    "storm-breaker-close",
                    &format!("team {team:?} recovered, circuit closed"),
                );
            }
            _ => {}
        }
    }

    /// Teams whose circuit is open or half-open, sorted.
    pub fn tripped_teams(&self) -> Vec<String> {
        self.breakers.lock().unwrap().tripped_teams()
    }

    /// Circuits currently not closed.
    pub fn breakers_open(&self) -> usize {
        self.breakers.lock().unwrap().open_count()
    }

    /// Lifetime suppressed-duplicate count.
    pub fn suppressed_total(&self) -> u64 {
        self.dedup.lock().unwrap().suppressed_total()
    }

    /// Lifetime throttle refusals.
    pub fn dropped_total(&self) -> u64 {
        self.throttle.lock().unwrap().dropped_total()
    }

    /// Low-severity coalescing knobs.
    pub fn batch_policy(&self) -> &BatchPolicy {
        &self.config.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control() -> (StormControl, ManualClock) {
        let (clock, handle) = Clock::manual();
        (
            StormControl::with_clock(StormConfig::default(), clock),
            handle,
        )
    }

    #[test]
    fn stages_compose_behind_one_facade() {
        let (storm, clock) = control();
        assert!(storm.admit("netmon", storm.now_ms()).is_ok());
        let (fp, outcome) = storm.observe("switch agg-3 CRC errors", "netmon", storm.now_ms());
        assert!(matches!(outcome, DedupOutcome::Fresh));
        storm.store_decision(fp, "{\"decision\":\"send_to\"}".into());
        clock.advance(10);
        let (fp2, outcome) = storm.observe("SWITCH agg-3 CRC errors!!", "netmon", storm.now_ms());
        assert_eq!(fp, fp2);
        match outcome {
            DedupOutcome::Duplicate {
                duplicates,
                decision,
            } => {
                assert_eq!(duplicates, 1);
                assert!(decision.unwrap().contains("send_to"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(storm.suppressed_total(), 1);
    }

    #[test]
    fn breaker_facade_trips_and_reports() {
        let (storm, _clock) = control();
        for _ in 0..storm.config().breaker.failure_threshold {
            storm.record_outcome("Flaky", false, storm.now_ms());
        }
        assert_eq!(storm.gate("Flaky", storm.now_ms()), Gate::Reject);
        assert_eq!(storm.gate("Steady", storm.now_ms()), Gate::Allow);
        assert_eq!(storm.tripped_teams(), vec!["Flaky".to_string()]);
        assert_eq!(storm.breakers_open(), 1);
    }
}
