//! The versioned event schema: everything the serving plane does that
//! mutates state, as one flat JSON record per event.
//!
//! Events are the *source of truth* — the in-memory `ServedLog`,
//! `FeedbackStore`, registry timeline, and lifecycle phase are all
//! projections of this stream (see [`crate::projection`]). Each record
//! carries the schema version (`"v"`), its log sequence number
//! (`"seq"`, contiguous from 1), a `"kind"` discriminant, and the
//! event's own fields. Times are `cloudsim` simulation minutes encoded
//! as integers; floats use the exact `{:?}` rendering from
//! `obs::json`, so decode(encode(e)) is identity and replay is
//! bit-deterministic.
//!
//! Decoding is total: any malformed payload decodes to `None` (never a
//! panic), and recovery treats it like a corrupt frame — replay stops
//! at the last well-formed prefix.

use cloudsim::SimTime;
use obs::json::{Obj, Value};

/// Current schema version stamped on every record.
pub const SCHEMA: u64 = 1;

/// One state mutation in the serving plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First record of every log: the projection bounds, so a standalone
    /// replay reproduces eviction behavior without out-of-band config.
    Init {
        /// `ServedLog` capacity in effect for this log.
        served_cap: u64,
        /// `FeedbackStore` capacity in effect for this log.
        feedback_cap: u64,
    },
    /// A prediction was served (assigned `incident`, answered by
    /// `model_version`).
    PredictionServed {
        /// Server-assigned incident id.
        incident: u64,
        /// Team whose Scout answered.
        team: String,
        /// The classified incident text.
        text: String,
        /// Registry version that answered.
        model_version: u64,
        /// Did the Scout say "responsible"?
        predicted: bool,
        /// Prediction confidence.
        confidence: f64,
        /// Simulation time of the prediction.
        time: SimTime,
    },
    /// Ground truth arrived and passed the exactly-once join.
    FeedbackAccepted {
        /// Incident being resolved.
        incident: u64,
        /// Team whose Scout answered.
        team: String,
        /// The classified incident text.
        text: String,
        /// Version that made the prediction.
        model_version: u64,
        /// What the Scout said.
        predicted: bool,
        /// Ground truth.
        label: bool,
        /// Simulation time of the original prediction.
        time: SimTime,
    },
    /// The drift monitor armed a retrain.
    DriftArmed {
        /// Controller team.
        team: String,
        /// Tick time.
        at: SimTime,
        /// Most recent bucket error rate.
        error: f64,
        /// Change-point (vs sustained) trigger.
        via_cpd: bool,
    },
    /// A retrain was launched.
    RetrainStarted {
        /// Controller team.
        team: String,
        /// Tick time.
        at: SimTime,
        /// Training examples in the weighted window.
        train_size: u64,
    },
    /// A retrain concluded. `outcome` is one of `promoted`, `rejected`,
    /// `blocked_pinned`, `skipped_thin`, `cold_start`.
    RetrainFinished {
        /// Controller team.
        team: String,
        /// Tick time.
        at: SimTime,
        /// What happened to the candidate.
        outcome: String,
    },
    /// The shadow gate compared candidate vs live out-of-sample.
    ShadowVerdict {
        /// Controller team.
        team: String,
        /// Tick time.
        at: SimTime,
        /// Candidate MCC on the shadow window.
        candidate_mcc: f64,
        /// Live MCC on the shadow window.
        live_mcc: f64,
        /// Labeled examples in the shadow window.
        samples: u64,
        /// Did the candidate clear the margin?
        passed: bool,
    },
    /// A model was published for `team` (registry hot-swap).
    ModelPromoted {
        /// Registry key.
        team: String,
        /// Version assigned by the registry.
        version: u64,
        /// Where the model came from.
        source: String,
        /// Event time (EPOCH when driven by wall-clock operators).
        at: SimTime,
    },
    /// The registry rolled `team` back to a recorded version.
    ModelRolledBack {
        /// Registry key.
        team: String,
        /// The demoted version.
        from: u64,
        /// The restored version.
        to: u64,
        /// Event time.
        at: SimTime,
    },
    /// A pin was set or cleared.
    ModelPinned {
        /// Registry key.
        team: String,
        /// `true` = pinned, `false` = unpinned.
        pinned: bool,
        /// Event time.
        at: SimTime,
    },
    /// The registry's bulk-reload epoch advanced (one per `load_dir`).
    EpochChanged {
        /// The new epoch.
        epoch: u64,
        /// Event time.
        at: SimTime,
    },
    /// A promotion (own, cold-start, or externally detected) put a
    /// version on probation.
    ProbationStarted {
        /// Controller team.
        team: String,
        /// The version under probation.
        version: u64,
        /// Shadow-window MCC it must defend.
        baseline_mcc: f64,
        /// Promoted outside the controller (operator reload)?
        external: bool,
        /// Tick time.
        at: SimTime,
    },
    /// Probation concluded (confirmed or rolled back).
    ProbationEnded {
        /// Controller team.
        team: String,
        /// The version that was on probation.
        version: u64,
        /// Its MCC over the probation window.
        probation_mcc: f64,
        /// `true` = promotion stands, `false` = rolled back.
        confirmed: bool,
        /// Tick time.
        at: SimTime,
    },
}

impl Event {
    /// The `"kind"` discriminant this event encodes with.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Init { .. } => "init",
            Event::PredictionServed { .. } => "prediction_served",
            Event::FeedbackAccepted { .. } => "feedback_accepted",
            Event::DriftArmed { .. } => "drift_armed",
            Event::RetrainStarted { .. } => "retrain_started",
            Event::RetrainFinished { .. } => "retrain_finished",
            Event::ShadowVerdict { .. } => "shadow_verdict",
            Event::ModelPromoted { .. } => "model_promoted",
            Event::ModelRolledBack { .. } => "model_rolled_back",
            Event::ModelPinned { .. } => "model_pinned",
            Event::EpochChanged { .. } => "epoch_changed",
            Event::ProbationStarted { .. } => "probation_started",
            Event::ProbationEnded { .. } => "probation_ended",
        }
    }

    /// Encode this event as one JSON record carrying `seq`.
    pub fn encode(&self, seq: u64) -> String {
        let obj = Obj::new()
            .uint("v", SCHEMA)
            .uint("seq", seq)
            .str("kind", self.kind());
        match self {
            Event::Init {
                served_cap,
                feedback_cap,
            } => obj
                .uint("served_cap", *served_cap)
                .uint("feedback_cap", *feedback_cap),
            Event::PredictionServed {
                incident,
                team,
                text,
                model_version,
                predicted,
                confidence,
                time,
            } => obj
                .uint("incident", *incident)
                .str("team", team)
                .str("text", text)
                .uint("model_version", *model_version)
                .bool("predicted", *predicted)
                .num("confidence", *confidence)
                .uint("time", time.0),
            Event::FeedbackAccepted {
                incident,
                team,
                text,
                model_version,
                predicted,
                label,
                time,
            } => obj
                .uint("incident", *incident)
                .str("team", team)
                .str("text", text)
                .uint("model_version", *model_version)
                .bool("predicted", *predicted)
                .bool("label", *label)
                .uint("time", time.0),
            Event::DriftArmed {
                team,
                at,
                error,
                via_cpd,
            } => obj
                .str("team", team)
                .uint("at", at.0)
                .num("error", *error)
                .bool("via_cpd", *via_cpd),
            Event::RetrainStarted {
                team,
                at,
                train_size,
            } => obj
                .str("team", team)
                .uint("at", at.0)
                .uint("train_size", *train_size),
            Event::RetrainFinished { team, at, outcome } => obj
                .str("team", team)
                .uint("at", at.0)
                .str("outcome", outcome),
            Event::ShadowVerdict {
                team,
                at,
                candidate_mcc,
                live_mcc,
                samples,
                passed,
            } => obj
                .str("team", team)
                .uint("at", at.0)
                .num("candidate_mcc", *candidate_mcc)
                .num("live_mcc", *live_mcc)
                .uint("samples", *samples)
                .bool("passed", *passed),
            Event::ModelPromoted {
                team,
                version,
                source,
                at,
            } => obj
                .str("team", team)
                .uint("version", *version)
                .str("source", source)
                .uint("at", at.0),
            Event::ModelRolledBack { team, from, to, at } => obj
                .str("team", team)
                .uint("from", *from)
                .uint("to", *to)
                .uint("at", at.0),
            Event::ModelPinned { team, pinned, at } => obj
                .str("team", team)
                .bool("pinned", *pinned)
                .uint("at", at.0),
            Event::EpochChanged { epoch, at } => obj.uint("epoch", *epoch).uint("at", at.0),
            Event::ProbationStarted {
                team,
                version,
                baseline_mcc,
                external,
                at,
            } => obj
                .str("team", team)
                .uint("version", *version)
                .num("baseline_mcc", *baseline_mcc)
                .bool("external", *external)
                .uint("at", at.0),
            Event::ProbationEnded {
                team,
                version,
                probation_mcc,
                confirmed,
                at,
            } => obj
                .str("team", team)
                .uint("version", *version)
                .num("probation_mcc", *probation_mcc)
                .bool("confirmed", *confirmed)
                .uint("at", at.0),
        }
        .finish()
    }

    /// Read the sequence stamp from an encoded record without a full
    /// JSON parse. Every record encodes `v` then `seq` first, so the
    /// prefix shape is fixed; any deviation yields `None` and the
    /// caller falls back to [`Event::decode`]. Recovery uses this to
    /// skip behind-snapshot records without paying a full decode per
    /// record it is about to discard.
    pub fn peek_seq(text: &str) -> Option<u64> {
        let rest = text.strip_prefix("{\"v\":")?;
        let v_end = rest.find(|c: char| !c.is_ascii_digit())?;
        if v_end == 0 || rest[..v_end].parse::<u64>().ok()? != SCHEMA {
            return None;
        }
        let digits = rest[v_end..].strip_prefix(",\"seq\":")?;
        let end = digits.find(|c: char| !c.is_ascii_digit())?;
        if end == 0 {
            return None;
        }
        digits[..end].parse().ok()
    }

    /// Decode one record, returning `(seq, event)`. Total: malformed
    /// input, unknown kinds, and future schema versions all yield
    /// `None`.
    pub fn decode(text: &str) -> Option<(u64, Event)> {
        let v = Value::parse(text)?;
        if get_u64(&v, "v")? != SCHEMA {
            return None;
        }
        let seq = get_u64(&v, "seq")?;
        let event = match v.get("kind")?.as_str()? {
            "init" => Event::Init {
                served_cap: get_u64(&v, "served_cap")?,
                feedback_cap: get_u64(&v, "feedback_cap")?,
            },
            "prediction_served" => Event::PredictionServed {
                incident: get_u64(&v, "incident")?,
                team: get_str(&v, "team")?,
                text: get_str(&v, "text")?,
                model_version: get_u64(&v, "model_version")?,
                predicted: get_bool(&v, "predicted")?,
                confidence: get_f64(&v, "confidence")?,
                time: SimTime(get_u64(&v, "time")?),
            },
            "feedback_accepted" => Event::FeedbackAccepted {
                incident: get_u64(&v, "incident")?,
                team: get_str(&v, "team")?,
                text: get_str(&v, "text")?,
                model_version: get_u64(&v, "model_version")?,
                predicted: get_bool(&v, "predicted")?,
                label: get_bool(&v, "label")?,
                time: SimTime(get_u64(&v, "time")?),
            },
            "drift_armed" => Event::DriftArmed {
                team: get_str(&v, "team")?,
                at: SimTime(get_u64(&v, "at")?),
                error: get_f64(&v, "error")?,
                via_cpd: get_bool(&v, "via_cpd")?,
            },
            "retrain_started" => Event::RetrainStarted {
                team: get_str(&v, "team")?,
                at: SimTime(get_u64(&v, "at")?),
                train_size: get_u64(&v, "train_size")?,
            },
            "retrain_finished" => Event::RetrainFinished {
                team: get_str(&v, "team")?,
                at: SimTime(get_u64(&v, "at")?),
                outcome: get_str(&v, "outcome")?,
            },
            "shadow_verdict" => Event::ShadowVerdict {
                team: get_str(&v, "team")?,
                at: SimTime(get_u64(&v, "at")?),
                candidate_mcc: get_f64(&v, "candidate_mcc")?,
                live_mcc: get_f64(&v, "live_mcc")?,
                samples: get_u64(&v, "samples")?,
                passed: get_bool(&v, "passed")?,
            },
            "model_promoted" => Event::ModelPromoted {
                team: get_str(&v, "team")?,
                version: get_u64(&v, "version")?,
                source: get_str(&v, "source")?,
                at: SimTime(get_u64(&v, "at")?),
            },
            "model_rolled_back" => Event::ModelRolledBack {
                team: get_str(&v, "team")?,
                from: get_u64(&v, "from")?,
                to: get_u64(&v, "to")?,
                at: SimTime(get_u64(&v, "at")?),
            },
            "model_pinned" => Event::ModelPinned {
                team: get_str(&v, "team")?,
                pinned: get_bool(&v, "pinned")?,
                at: SimTime(get_u64(&v, "at")?),
            },
            "epoch_changed" => Event::EpochChanged {
                epoch: get_u64(&v, "epoch")?,
                at: SimTime(get_u64(&v, "at")?),
            },
            "probation_started" => Event::ProbationStarted {
                team: get_str(&v, "team")?,
                version: get_u64(&v, "version")?,
                baseline_mcc: get_f64(&v, "baseline_mcc")?,
                external: get_bool(&v, "external")?,
                at: SimTime(get_u64(&v, "at")?),
            },
            "probation_ended" => Event::ProbationEnded {
                team: get_str(&v, "team")?,
                version: get_u64(&v, "version")?,
                probation_mcc: get_f64(&v, "probation_mcc")?,
                confirmed: get_bool(&v, "confirmed")?,
                at: SimTime(get_u64(&v, "at")?),
            },
            _ => return None,
        };
        Some((seq, event))
    }
}

/// An integer field. `obs::json` parses all numbers as `f64`; every id
/// the plane mints stays far under 2^53, so the conversion is exact —
/// anything negative, fractional, or outside that range is malformed.
fn get_u64(v: &Value, key: &str) -> Option<u64> {
    let n = v.get(key)?.as_f64()?;
    if n.fract() != 0.0 || !(0.0..9.0e15).contains(&n) {
        return None;
    }
    Some(n as u64)
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    // `Obj::num` writes non-finite values as null; map them back to NaN
    // (MCC of an empty confusion, for instance).
    match v.get(key)? {
        Value::Null => Some(f64::NAN),
        other => other.as_f64(),
    }
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::Init {
                served_cap: 8192,
                feedback_cap: 16384,
            },
            Event::PredictionServed {
                incident: 7,
                team: "PhyNet".into(),
                text: "switch \"tor-7\" link flap\n".into(),
                model_version: 3,
                predicted: true,
                confidence: 0.8125,
                time: SimTime(1440),
            },
            Event::FeedbackAccepted {
                incident: 7,
                team: "PhyNet".into(),
                text: "switch \"tor-7\" link flap\n".into(),
                model_version: 3,
                predicted: true,
                label: false,
                time: SimTime(1440),
            },
            Event::DriftArmed {
                team: "PhyNet".into(),
                at: SimTime(2880),
                error: 0.4375,
                via_cpd: true,
            },
            Event::RetrainStarted {
                team: "PhyNet".into(),
                at: SimTime(2880),
                train_size: 120,
            },
            Event::RetrainFinished {
                team: "PhyNet".into(),
                at: SimTime(2880),
                outcome: "promoted".into(),
            },
            Event::ShadowVerdict {
                team: "PhyNet".into(),
                at: SimTime(2880),
                candidate_mcc: 0.625,
                live_mcc: 0.25,
                samples: 48,
                passed: true,
            },
            Event::ModelPromoted {
                team: "PhyNet".into(),
                version: 4,
                source: "lifecycle-retrain".into(),
                at: SimTime(2880),
            },
            Event::ModelRolledBack {
                team: "PhyNet".into(),
                from: 4,
                to: 3,
                at: SimTime(4320),
            },
            Event::ModelPinned {
                team: "PhyNet".into(),
                pinned: true,
                at: SimTime(4320),
            },
            Event::EpochChanged {
                epoch: 2,
                at: SimTime(4320),
            },
            Event::ProbationStarted {
                team: "PhyNet".into(),
                version: 4,
                baseline_mcc: 0.625,
                external: false,
                at: SimTime(2880),
            },
            Event::ProbationEnded {
                team: "PhyNet".into(),
                version: 4,
                probation_mcc: 0.125,
                confirmed: false,
                at: SimTime(4320),
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for (i, event) in samples().into_iter().enumerate() {
            let seq = i as u64 + 1;
            let line = event.encode(seq);
            let (got_seq, got) = Event::decode(&line).unwrap_or_else(|| panic!("decode {line}"));
            assert_eq!(got_seq, seq);
            assert_eq!(got, event, "{line}");
            // Encoding is canonical: re-encoding the decoded event is
            // byte-identical.
            assert_eq!(got.encode(seq), line);
        }
    }

    #[test]
    fn nan_mcc_survives_the_round_trip() {
        let event = Event::ProbationEnded {
            team: "Storage".into(),
            version: 9,
            probation_mcc: f64::NAN,
            confirmed: true,
            at: SimTime(10),
        };
        let line = event.encode(1);
        assert!(line.contains("\"probation_mcc\":null"), "{line}");
        let (_, got) = Event::decode(&line).unwrap();
        match got {
            Event::ProbationEnded { probation_mcc, .. } => assert!(probation_mcc.is_nan()),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn malformed_records_decode_to_none() {
        assert!(Event::decode("").is_none());
        assert!(Event::decode("{}").is_none());
        assert!(Event::decode("{\"v\":1,\"seq\":1,\"kind\":\"nope\"}").is_none());
        assert!(Event::decode("{\"v\":2,\"seq\":1,\"kind\":\"init\"}").is_none());
        // Missing field.
        assert!(Event::decode("{\"v\":1,\"seq\":1,\"kind\":\"init\",\"served_cap\":4}").is_none());
        // Fractional id.
        assert!(Event::decode(
            "{\"v\":1,\"seq\":1.5,\"kind\":\"init\",\"served_cap\":4,\"feedback_cap\":4}"
        )
        .is_none());
    }
}
