//! Deterministic projections: the serving plane's state as a pure fold
//! over the event stream.
//!
//! [`Projections::apply`] must mirror the runtime semantics of the
//! structures it shadows *exactly* — the bounded-FIFO eviction of the
//! serve `ServedLog`, the time-ordered insertion and cap of the
//! lifecycle `FeedbackStore`, the registry's promotion stack — because
//! crash recovery hands these projections back to the runtime as its
//! starting state, and the acceptance bar is bit-identity between
//! "state the process died with" and "state replayed from the log".
//!
//! [`Projections::render`] is the canonical form: a single JSON
//! document with fully deterministic field and element order (BTreeMap
//! iteration, insertion-ordered queues, `{:?}` float formatting via
//! `obs::json`). Snapshots are exactly this rendering, and
//! [`Projections::parse`] inverts it, so
//! `render(parse(render(p))) == render(p)` byte-for-byte.

use crate::event::{Event, SCHEMA};
use cloudsim::SimTime;
use obs::json::{Obj, Value};
use std::collections::{BTreeMap, VecDeque};

/// How many superseded versions a registry slot retains for rollback.
/// Shared by the runtime registry and this projection so both evict the
/// same entry at the same time.
pub const HISTORY_CAP: usize = 16;

/// Default `ServedLog` bound used before an `Init` event is seen.
pub const DEFAULT_SERVED_CAP: u64 = 8192;
/// Default `FeedbackStore` bound used before an `Init` event is seen.
pub const DEFAULT_FEEDBACK_CAP: u64 = 16 * 1024;

/// One served prediction (mirror of `serve::ServedRecord`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedRec {
    /// Server-assigned incident id.
    pub incident: u64,
    /// Team whose Scout answered.
    pub team: String,
    /// The classified incident text.
    pub text: String,
    /// Registry version that answered.
    pub model_version: u64,
    /// Did the Scout say "responsible"?
    pub predicted: bool,
    /// Prediction confidence.
    pub confidence: f64,
    /// Simulation time of the prediction.
    pub time: SimTime,
    /// Has ground truth been recorded?
    pub resolved: bool,
}

/// The served-prediction log projection (bounded FIFO + id counter).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedState {
    /// Next incident id the runtime log will assign.
    pub next_incident: u64,
    /// Retention bound.
    pub cap: usize,
    /// Retained predictions, oldest first.
    pub records: VecDeque<ServedRec>,
}

/// One labeled example (mirror of `lifecycle::Feedback`, plus the team
/// so multi-team recovery can split the stream).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackRec {
    /// Server-assigned incident id.
    pub incident: u64,
    /// Team whose Scout answered.
    pub team: String,
    /// The classified incident text.
    pub text: String,
    /// Registry version that predicted.
    pub model_version: u64,
    /// What the Scout said.
    pub predicted: bool,
    /// Ground truth.
    pub label: bool,
    /// Simulation time of the prediction.
    pub time: SimTime,
}

/// The labeled feedback stream projection (bounded, time-ordered).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackState {
    /// Retention bound.
    pub cap: usize,
    /// Total ever ingested (including evicted).
    pub total: u64,
    /// Retained examples in simulation-time order.
    pub items: VecDeque<FeedbackRec>,
}

/// One registry slot: current version plus the rollback stack.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamModels {
    /// The serving `(version, source)`, if any model is published.
    pub current: Option<(u64, String)>,
    /// Is the team pinned?
    pub pinned: bool,
    /// Superseded `(version, source)` entries, oldest first.
    pub history: Vec<(u64, String)>,
}

/// The registry projection: version numbering, pins, and per-team
/// promotion timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryState {
    /// Next version the runtime registry will assign.
    pub next_version: u64,
    /// Bulk-reload epoch.
    pub epoch: u64,
    /// Slots by team name.
    pub teams: BTreeMap<String, TeamModels>,
}

/// Where a team's lifecycle controller is in its loop.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseState {
    /// Watching for drift.
    Monitoring,
    /// Watching a fresh promotion.
    Probation {
        /// Version under probation.
        version: u64,
        /// When probation started.
        started: SimTime,
        /// Shadow MCC it must defend.
        baseline_mcc: f64,
    },
}

/// One controller's recoverable state.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamLifecycle {
    /// Current phase.
    pub phase: PhaseState,
    /// Last lifecycle action (cooldown anchor).
    pub last_action: SimTime,
    /// Drift-monitor reset point.
    pub ignore_before: SimTime,
}

/// Every projection, folded together: the full recoverable state of the
/// serving plane at one log position.
#[derive(Debug, Clone, PartialEq)]
pub struct Projections {
    /// Sequence number of the last applied event (0 = genesis).
    pub seq: u64,
    /// Served-prediction log.
    pub served: ServedState,
    /// Labeled feedback stream.
    pub feedback: FeedbackState,
    /// Model registry.
    pub registry: RegistryState,
    /// Per-team lifecycle controllers.
    pub lifecycle: BTreeMap<String, TeamLifecycle>,
    /// Events applied so far, by kind.
    pub counts: BTreeMap<String, u64>,
}

impl Default for Projections {
    fn default() -> Self {
        Projections::new()
    }
}

impl Projections {
    /// The genesis state (before any event, default caps).
    pub fn new() -> Projections {
        Projections {
            seq: 0,
            served: ServedState {
                next_incident: 1,
                cap: DEFAULT_SERVED_CAP as usize,
                records: VecDeque::new(),
            },
            feedback: FeedbackState {
                cap: DEFAULT_FEEDBACK_CAP as usize,
                total: 0,
                items: VecDeque::new(),
            },
            registry: RegistryState {
                next_version: 1,
                epoch: 0,
                teams: BTreeMap::new(),
            },
            lifecycle: BTreeMap::new(),
            counts: BTreeMap::new(),
        }
    }

    fn team_lifecycle(&mut self, team: &str) -> &mut TeamLifecycle {
        self.lifecycle
            .entry(team.to_string())
            .or_insert_with(|| TeamLifecycle {
                phase: PhaseState::Monitoring,
                last_action: SimTime::EPOCH,
                ignore_before: SimTime::EPOCH,
            })
    }

    fn team_models(&mut self, team: &str) -> &mut TeamModels {
        self.registry
            .teams
            .entry(team.to_string())
            .or_insert_with(|| TeamModels {
                current: None,
                pinned: false,
                history: Vec::new(),
            })
    }

    /// Fold one event in. `seq` becomes the new log position; events
    /// referencing state the projection no longer holds (an evicted
    /// incident, a rollback target outside the retained history) are
    /// tolerated the same way the runtime tolerates them.
    pub fn apply(&mut self, seq: u64, event: &Event) {
        self.seq = seq;
        *self.counts.entry(event.kind().to_string()).or_insert(0) += 1;
        match event {
            Event::Init {
                served_cap,
                feedback_cap,
            } => {
                self.served.cap = (*served_cap).max(1) as usize;
                self.feedback.cap = (*feedback_cap).max(1) as usize;
            }
            Event::PredictionServed {
                incident,
                team,
                text,
                model_version,
                predicted,
                confidence,
                time,
            } => {
                if self.served.records.len() >= self.served.cap {
                    self.served.records.pop_front();
                }
                self.served.records.push_back(ServedRec {
                    incident: *incident,
                    team: team.clone(),
                    text: text.clone(),
                    model_version: *model_version,
                    predicted: *predicted,
                    confidence: *confidence,
                    time: *time,
                    resolved: false,
                });
                self.served.next_incident = self.served.next_incident.max(incident + 1);
            }
            Event::FeedbackAccepted {
                incident,
                team,
                text,
                model_version,
                predicted,
                label,
                time,
            } => {
                if let Some(rec) = self
                    .served
                    .records
                    .iter_mut()
                    .find(|r| r.incident == *incident)
                {
                    rec.resolved = true;
                }
                // Same ordered insertion as `FeedbackStore::push`:
                // stable by time, oldest evicted when full.
                let fb = FeedbackRec {
                    incident: *incident,
                    team: team.clone(),
                    text: text.clone(),
                    model_version: *model_version,
                    predicted: *predicted,
                    label: *label,
                    time: *time,
                };
                let pos = self
                    .feedback
                    .items
                    .iter()
                    .rposition(|f| f.time <= fb.time)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                self.feedback.items.insert(pos, fb);
                if self.feedback.items.len() > self.feedback.cap {
                    self.feedback.items.pop_front();
                }
                self.feedback.total += 1;
            }
            Event::DriftArmed { .. }
            | Event::RetrainStarted { .. }
            | Event::ShadowVerdict { .. } => {
                // Counted above; these carry forensic detail, not
                // recoverable state (the cooldown anchor moves on
                // RetrainFinished / probation transitions).
            }
            Event::RetrainFinished { team, at, .. } => {
                self.team_lifecycle(team).last_action = *at;
            }
            Event::ModelPromoted {
                team,
                version,
                source,
                ..
            } => {
                let slot = self.team_models(team);
                if let Some(prior) = slot.current.take() {
                    slot.history.push(prior);
                    if slot.history.len() > HISTORY_CAP {
                        slot.history.remove(0);
                    }
                }
                slot.current = Some((*version, source.clone()));
                self.registry.next_version = self.registry.next_version.max(version + 1);
            }
            Event::ModelRolledBack { team, to, .. } => {
                let slot = self.team_models(team);
                if let Some(pos) = slot.history.iter().rposition(|(v, _)| v == to) {
                    let restored = slot.history[pos].clone();
                    slot.history.truncate(pos);
                    slot.current = Some(restored);
                }
            }
            Event::ModelPinned { team, pinned, .. } => {
                self.team_models(team).pinned = *pinned;
            }
            Event::EpochChanged { epoch, .. } => {
                self.registry.epoch = self.registry.epoch.max(*epoch);
            }
            Event::ProbationStarted {
                team,
                version,
                baseline_mcc,
                at,
                ..
            } => {
                let lc = self.team_lifecycle(team);
                lc.phase = PhaseState::Probation {
                    version: *version,
                    started: *at,
                    baseline_mcc: *baseline_mcc,
                };
                lc.ignore_before = *at;
                lc.last_action = *at;
            }
            Event::ProbationEnded { team, at, .. } => {
                let lc = self.team_lifecycle(team);
                lc.phase = PhaseState::Monitoring;
                lc.ignore_before = *at;
                lc.last_action = *at;
            }
        }
    }

    /// The canonical rendering: one JSON document, fully deterministic
    /// byte-for-byte in the projection state. This is the snapshot
    /// format, the `scoutctl wal replay` output, and the artifact the
    /// crash-recovery tests compare.
    pub fn render(&self) -> String {
        let mut records = String::from("[");
        for (i, r) in self.served.records.iter().enumerate() {
            if i > 0 {
                records.push(',');
            }
            records.push_str(
                &Obj::new()
                    .uint("incident", r.incident)
                    .str("team", &r.team)
                    .str("text", &r.text)
                    .uint("model_version", r.model_version)
                    .bool("predicted", r.predicted)
                    .num("confidence", r.confidence)
                    .uint("time", r.time.0)
                    .bool("resolved", r.resolved)
                    .finish(),
            );
        }
        records.push(']');

        let mut items = String::from("[");
        for (i, f) in self.feedback.items.iter().enumerate() {
            if i > 0 {
                items.push(',');
            }
            items.push_str(
                &Obj::new()
                    .uint("incident", f.incident)
                    .str("team", &f.team)
                    .str("text", &f.text)
                    .uint("model_version", f.model_version)
                    .bool("predicted", f.predicted)
                    .bool("label", f.label)
                    .uint("time", f.time.0)
                    .finish(),
            );
        }
        items.push(']');

        let mut teams = String::from("[");
        for (i, (team, slot)) in self.registry.teams.iter().enumerate() {
            if i > 0 {
                teams.push(',');
            }
            let mut history = String::from("[");
            for (j, (v, src)) in slot.history.iter().enumerate() {
                if j > 0 {
                    history.push(',');
                }
                history.push_str(&Obj::new().uint("version", *v).str("source", src).finish());
            }
            history.push(']');
            let current = match &slot.current {
                Some((v, src)) => Obj::new().uint("version", *v).str("source", src).finish(),
                None => "null".to_string(),
            };
            teams.push_str(
                &Obj::new()
                    .str("team", team)
                    .raw("current", &current)
                    .bool("pinned", slot.pinned)
                    .raw("history", &history)
                    .finish(),
            );
        }
        teams.push(']');

        let mut lifecycle = String::from("[");
        for (i, (team, lc)) in self.lifecycle.iter().enumerate() {
            if i > 0 {
                lifecycle.push(',');
            }
            let entry = Obj::new().str("team", team);
            let entry = match &lc.phase {
                PhaseState::Monitoring => entry.str("phase", "monitoring"),
                PhaseState::Probation {
                    version,
                    started,
                    baseline_mcc,
                } => entry
                    .str("phase", "probation")
                    .uint("version", *version)
                    .uint("started", started.0)
                    .num("baseline_mcc", *baseline_mcc),
            };
            lifecycle.push_str(
                &entry
                    .uint("last_action", lc.last_action.0)
                    .uint("ignore_before", lc.ignore_before.0)
                    .finish(),
            );
        }
        lifecycle.push(']');

        let mut counts = Obj::new();
        for (kind, n) in &self.counts {
            counts = counts.uint(kind, *n);
        }

        Obj::new()
            .uint("schema", SCHEMA)
            .uint("seq", self.seq)
            .raw(
                "served",
                &Obj::new()
                    .uint("next", self.served.next_incident)
                    .uint("cap", self.served.cap as u64)
                    .raw("records", &records)
                    .finish(),
            )
            .raw(
                "feedback",
                &Obj::new()
                    .uint("cap", self.feedback.cap as u64)
                    .uint("total", self.feedback.total)
                    .raw("items", &items)
                    .finish(),
            )
            .raw(
                "registry",
                &Obj::new()
                    .uint("next_version", self.registry.next_version)
                    .uint("epoch", self.registry.epoch)
                    .raw("teams", &teams)
                    .finish(),
            )
            .raw("lifecycle", &lifecycle)
            .raw("counts", &counts.finish())
            .finish()
    }

    /// Invert [`Projections::render`]. Total: any malformed or
    /// wrong-schema document yields `None` (a corrupt snapshot falls
    /// back to an older one, then to genesis replay).
    pub fn parse(text: &str) -> Option<Projections> {
        let v = Value::parse(text)?;
        if get_u64(&v, "schema")? != SCHEMA {
            return None;
        }
        let mut p = Projections::new();
        p.seq = get_u64(&v, "seq")?;

        let served = v.get("served")?;
        p.served.next_incident = get_u64(served, "next")?;
        p.served.cap = get_u64(served, "cap")?.max(1) as usize;
        for r in served.get("records")?.as_arr()? {
            p.served.records.push_back(ServedRec {
                incident: get_u64(r, "incident")?,
                team: get_str(r, "team")?,
                text: get_str(r, "text")?,
                model_version: get_u64(r, "model_version")?,
                predicted: get_bool(r, "predicted")?,
                confidence: get_f64(r, "confidence")?,
                time: SimTime(get_u64(r, "time")?),
                resolved: get_bool(r, "resolved")?,
            });
        }

        let feedback = v.get("feedback")?;
        p.feedback.cap = get_u64(feedback, "cap")?.max(1) as usize;
        p.feedback.total = get_u64(feedback, "total")?;
        for f in feedback.get("items")?.as_arr()? {
            p.feedback.items.push_back(FeedbackRec {
                incident: get_u64(f, "incident")?,
                team: get_str(f, "team")?,
                text: get_str(f, "text")?,
                model_version: get_u64(f, "model_version")?,
                predicted: get_bool(f, "predicted")?,
                label: get_bool(f, "label")?,
                time: SimTime(get_u64(f, "time")?),
            });
        }

        let registry = v.get("registry")?;
        p.registry.next_version = get_u64(registry, "next_version")?;
        p.registry.epoch = get_u64(registry, "epoch")?;
        for t in registry.get("teams")?.as_arr()? {
            let current = match t.get("current")? {
                Value::Null => None,
                cur => Some((get_u64(cur, "version")?, get_str(cur, "source")?)),
            };
            let mut history = Vec::new();
            for h in t.get("history")?.as_arr()? {
                history.push((get_u64(h, "version")?, get_str(h, "source")?));
            }
            p.registry.teams.insert(
                get_str(t, "team")?,
                TeamModels {
                    current,
                    pinned: get_bool(t, "pinned")?,
                    history,
                },
            );
        }

        for lc in v.get("lifecycle")?.as_arr()? {
            let phase = match lc.get("phase")?.as_str()? {
                "monitoring" => PhaseState::Monitoring,
                "probation" => PhaseState::Probation {
                    version: get_u64(lc, "version")?,
                    started: SimTime(get_u64(lc, "started")?),
                    baseline_mcc: get_f64(lc, "baseline_mcc")?,
                },
                _ => return None,
            };
            p.lifecycle.insert(
                get_str(lc, "team")?,
                TeamLifecycle {
                    phase,
                    last_action: SimTime(get_u64(lc, "last_action")?),
                    ignore_before: SimTime(get_u64(lc, "ignore_before")?),
                },
            );
        }

        if let Value::Obj(fields) = v.get("counts")? {
            for (kind, n) in fields {
                p.counts.insert(kind.clone(), int_of(n)?);
            }
        } else {
            return None;
        }

        Some(p)
    }
}

fn int_of(n: &Value) -> Option<u64> {
    let n = n.as_f64()?;
    if n.fract() != 0.0 || !(0.0..9.0e15).contains(&n) {
        return None;
    }
    Some(n as u64)
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    int_of(v.get(key)?)
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    match v.get(key)? {
        Value::Null => Some(f64::NAN),
        other => other.as_f64(),
    }
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(events: &[Event]) -> Projections {
        let mut p = Projections::new();
        for (i, e) in events.iter().enumerate() {
            p.apply(i as u64 + 1, e);
        }
        p
    }

    fn served(incident: u64, time: u64) -> Event {
        Event::PredictionServed {
            incident,
            team: "PhyNet".into(),
            text: format!("incident {incident}"),
            model_version: 1,
            predicted: true,
            confidence: 0.75,
            time: SimTime(time),
        }
    }

    fn feedback(incident: u64, time: u64, label: bool) -> Event {
        Event::FeedbackAccepted {
            incident,
            team: "PhyNet".into(),
            text: format!("incident {incident}"),
            model_version: 1,
            predicted: true,
            label,
            time: SimTime(time),
        }
    }

    #[test]
    fn served_log_mirrors_fifo_eviction() {
        let p = fold(&[
            Event::Init {
                served_cap: 2,
                feedback_cap: 4,
            },
            served(1, 10),
            served(2, 20),
            served(3, 30),
            feedback(1, 10, true), // evicted: tolerated, no resolve
            feedback(3, 30, false),
        ]);
        assert_eq!(p.served.next_incident, 4);
        let ids: Vec<u64> = p.served.records.iter().map(|r| r.incident).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(!p.served.records[0].resolved);
        assert!(p.served.records[1].resolved);
        // Both feedbacks still count toward the labeled stream.
        assert_eq!(p.feedback.total, 2);
    }

    #[test]
    fn feedback_is_time_ordered_regardless_of_arrival() {
        let p = fold(&[
            feedback(1, 50, true),
            feedback(2, 10, false),
            feedback(3, 30, true),
        ]);
        let times: Vec<u64> = p.feedback.items.iter().map(|f| f.time.0).collect();
        assert_eq!(times, vec![10, 30, 50]);
    }

    #[test]
    fn registry_timeline_promote_then_rollback_to_any() {
        let promote = |version: u64| Event::ModelPromoted {
            team: "PhyNet".into(),
            version,
            source: format!("src-{version}"),
            at: SimTime(version * 10),
        };
        let mut p = fold(&[promote(1), promote(2), promote(3), promote(4)]);
        assert_eq!(p.registry.next_version, 5);
        let slot = &p.registry.teams["PhyNet"];
        assert_eq!(slot.current, Some((4, "src-4".into())));
        assert_eq!(
            slot.history.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Roll back two steps in one event: straight to v2.
        p.apply(
            5,
            &Event::ModelRolledBack {
                team: "PhyNet".into(),
                from: 4,
                to: 2,
                at: SimTime(99),
            },
        );
        let slot = &p.registry.teams["PhyNet"];
        assert_eq!(slot.current, Some((2, "src-2".into())));
        assert_eq!(
            slot.history.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn lifecycle_phase_tracks_probation() {
        let mut p = fold(&[Event::ProbationStarted {
            team: "PhyNet".into(),
            version: 7,
            baseline_mcc: 0.5,
            external: false,
            at: SimTime(100),
        }]);
        assert_eq!(
            p.lifecycle["PhyNet"].phase,
            PhaseState::Probation {
                version: 7,
                started: SimTime(100),
                baseline_mcc: 0.5
            }
        );
        p.apply(
            2,
            &Event::ProbationEnded {
                team: "PhyNet".into(),
                version: 7,
                probation_mcc: 0.25,
                confirmed: true,
                at: SimTime(200),
            },
        );
        let lc = &p.lifecycle["PhyNet"];
        assert_eq!(lc.phase, PhaseState::Monitoring);
        assert_eq!(lc.ignore_before, SimTime(200));
        assert_eq!(lc.last_action, SimTime(200));
    }

    #[test]
    fn render_parse_render_is_identity() {
        let mut p = fold(&[
            Event::Init {
                served_cap: 4,
                feedback_cap: 4,
            },
            served(1, 10),
            served(2, 20),
            feedback(1, 10, false),
            Event::ModelPromoted {
                team: "PhyNet".into(),
                version: 1,
                source: "startup".into(),
                at: SimTime::EPOCH,
            },
            Event::ModelPromoted {
                team: "PhyNet".into(),
                version: 2,
                source: "lifecycle-retrain".into(),
                at: SimTime(500),
            },
            Event::ModelPinned {
                team: "Storage".into(),
                pinned: true,
                at: SimTime(501),
            },
            Event::ProbationStarted {
                team: "PhyNet".into(),
                version: 2,
                baseline_mcc: f64::NAN,
                external: false,
                at: SimTime(500),
            },
            Event::EpochChanged {
                epoch: 1,
                at: SimTime(502),
            },
        ]);
        let rendered = p.render();
        let parsed = Projections::parse(&rendered).expect("parse own rendering");
        assert_eq!(parsed.render(), rendered);
        // And folding further events after the round-trip stays aligned
        // with the original (NaN baseline aside, states compare equal).
        p.apply(100, &served(3, 30));
        let mut reparsed = parsed;
        reparsed.apply(100, &served(3, 30));
        assert_eq!(reparsed.render(), p.render());
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schema() {
        assert!(Projections::parse("").is_none());
        assert!(Projections::parse("{}").is_none());
        assert!(Projections::parse("not json").is_none());
        let other = Projections::new()
            .render()
            .replace("\"schema\":1", "\"schema\":9");
        assert!(Projections::parse(&other).is_none());
    }
}
